//! Currency-interval dataflow analysis over optimized physical plans.
//!
//! An abstract interpreter that walks a [`PhysicalPlan`] from the scan
//! leaves to the root propagating a *currency lattice*: per-operand
//! staleness intervals `[lo, hi]` (how stale the rows an operator delivers
//! can possibly be) joined across operators, plus consistency-class
//! grouping facts (which operands are guaranteed to come from the same
//! snapshot source). Every plan node receives a [`NodeFlow`] certificate of
//! the delivered-currency bound it can prove, and every currency guard
//! receives a [`GuardCert`] recording the static verdict on its runtime
//! check.
//!
//! # The healthy-replication envelope
//!
//! All certificates are *premised*. A cached view in region `R` with
//! propagation delay `d`, refresh interval `f`, and heartbeat granularity
//! `hb` delivers rows whose staleness under **healthy replication** lies in
//! `[d, d + f + hb]`: the freshest possible content is one propagation
//! delay old, and the heartbeat timestamp a guard compares against can
//! itself trail the replica's true watermark by up to one heartbeat
//! interval. `H(R) = d + f + hb` is the envelope ceiling. A guard with
//! bound `B > H(R)` can never fail while the premises hold
//! ([`GuardVerdict::AlwaysPass`]); a guard with `B == 0` or `B < d` can
//! never pass ([`GuardVerdict::NeverPass`], matching the optimizer's
//! compile-time discard and the verifier's well-formedness boundary);
//! anything in between is [`GuardVerdict::Contingent`] and must survive to
//! runtime.
//!
//! The premises are: (1) replication is healthy — no stalled agent, so the
//! heartbeat ceiling holds; (2) the session imposes no timeline floors;
//! (3) the query is not running in forced-local (serve-stale) degradation.
//! The execution layer only serves an elided plan when (2) and (3) hold,
//! and the runtime cross-check (`rcc_flow_interval_violations_total`)
//! exists precisely to catch (1) breaking.
//!
//! # Certified elision
//!
//! [`elide`] consumes an analysis and rewrites the plan: `AlwaysPass`
//! SwitchUnions collapse to their local branch, `NeverPass` ones to their
//! remote branch, and guarded index-join inners drop their guard in the
//! same way. Each elision carries its [`GuardCert`] so `rcc-verify` can
//! replay the arithmetic from the catalog alone and reject a corrupted
//! analysis ([`Mutation`] enumerates the corruptions the test suite must
//! prove are caught).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use rcc_catalog::{Catalog, CurrencyRegion};
use rcc_common::{Duration, RegionId};
use rcc_optimizer::constraint::OperandId;
use rcc_optimizer::physical::{CurrencyGuard, InnerAccess, PhysicalPlan};
use std::collections::BTreeMap;
use std::fmt;

/// The replication-health envelope of a currency region: the three terms
/// that bound how stale a healthy replica (and its heartbeat) can be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Propagation delay `d`: the freshest content is this old.
    pub update_delay: Duration,
    /// Refresh interval `f`: updates land in batches this far apart.
    pub update_interval: Duration,
    /// Heartbeat granularity `hb`: the guard's timestamp can trail the
    /// replica's true watermark by this much.
    pub heartbeat_interval: Duration,
}

impl Envelope {
    /// The envelope for a catalog region.
    pub fn of(region: &CurrencyRegion) -> Envelope {
        Envelope {
            update_delay: region.update_delay,
            update_interval: region.update_interval,
            heartbeat_interval: region.heartbeat_interval,
        }
    }

    /// `H(R) = d + f + hb` — the worst heartbeat staleness a guard can
    /// observe while replication is healthy.
    pub fn worst_healthy(&self) -> Duration {
        self.update_delay
            .plus(self.update_interval)
            .plus(self.heartbeat_interval)
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d={} f={} hb={} H={}",
            self.update_delay,
            self.update_interval,
            self.heartbeat_interval,
            self.worst_healthy()
        )
    }
}

/// Upper end of a currency interval: finite, or unknown (no envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StalenessBound {
    /// Staleness provably at most this much.
    Finite(Duration),
    /// No static bound (e.g. a region the catalog cannot resolve).
    Unbounded,
}

impl StalenessBound {
    /// Pointwise max (lattice join of upper bounds).
    pub fn join(self, other: StalenessBound) -> StalenessBound {
        match (self, other) {
            (StalenessBound::Finite(a), StalenessBound::Finite(b)) => {
                StalenessBound::Finite(a.max(b))
            }
            _ => StalenessBound::Unbounded,
        }
    }

    /// Pointwise min (used when a runtime guard caps the branch).
    pub fn cap(self, bound: Duration) -> StalenessBound {
        match self {
            StalenessBound::Finite(a) => StalenessBound::Finite(a.min(bound)),
            StalenessBound::Unbounded => StalenessBound::Finite(bound),
        }
    }
}

impl fmt::Display for StalenessBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StalenessBound::Finite(d) => write!(f, "{d}"),
            StalenessBound::Unbounded => write!(f, "∞"),
        }
    }
}

/// A staleness interval `[lo, hi]`: every row the operator delivers is at
/// least `lo` and at most `hi` stale (under the analysis premises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurrencyInterval {
    /// Minimum possible staleness.
    pub lo: Duration,
    /// Maximum possible staleness.
    pub hi: StalenessBound,
}

impl CurrencyInterval {
    /// The backend interval: rows read at the master are exactly current.
    pub fn exact_current() -> CurrencyInterval {
        CurrencyInterval {
            lo: Duration::ZERO,
            hi: StalenessBound::Finite(Duration::ZERO),
        }
    }

    /// The healthy-replica interval `[d, H(R)]`.
    pub fn healthy(env: &Envelope) -> CurrencyInterval {
        CurrencyInterval {
            lo: env.update_delay,
            hi: StalenessBound::Finite(env.worst_healthy()),
        }
    }

    /// Lattice join: the smallest interval containing both.
    pub fn hull(&self, other: &CurrencyInterval) -> CurrencyInterval {
        CurrencyInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.join(other.hi),
        }
    }

    /// Cap the upper end at a runtime-guard bound `B`: when the guard
    /// passed, the heartbeat was newer than `now − B`, so delivered
    /// staleness is below `B`.
    pub fn cap(&self, bound: Duration) -> CurrencyInterval {
        let hi = self.hi.cap(bound);
        let lo = match hi {
            StalenessBound::Finite(h) => self.lo.min(h),
            StalenessBound::Unbounded => self.lo,
        };
        CurrencyInterval { lo, hi }
    }

    /// Does this interval contain `other`? (`self` is at least as wide.)
    /// Containment is the soundness order the verifier replays: a claimed
    /// interval narrower than the honest one is an unsound certificate.
    pub fn contains(&self, other: &CurrencyInterval) -> bool {
        self.lo <= other.lo
            && match (self.hi, other.hi) {
                (StalenessBound::Unbounded, _) => true,
                (StalenessBound::Finite(_), StalenessBound::Unbounded) => false,
                (StalenessBound::Finite(a), StalenessBound::Finite(b)) => a >= b,
            }
    }
}

impl fmt::Display for CurrencyInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Static verdict on a currency guard's runtime check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// The guard can never fail while the premises hold: `B > H(R)`.
    AlwaysPass {
        /// Slack `B − H(R)` — how far the bound clears the envelope.
        margin: Duration,
    },
    /// The guard can never pass: `B == 0` or `B < d` (the replica's
    /// guaranteed minimum staleness already exceeds the bound).
    NeverPass,
    /// The outcome depends on runtime state; the guard must survive.
    Contingent,
}

impl GuardVerdict {
    /// Short lowercase label for EXPLAIN FLOW output and audits.
    pub fn label(&self) -> String {
        match self {
            GuardVerdict::AlwaysPass { margin } => format!("always-pass (margin {margin})"),
            GuardVerdict::NeverPass => "never-pass".to_string(),
            GuardVerdict::Contingent => "contingent".to_string(),
        }
    }
}

/// What the elision transform does with a guard, derived from its verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Drop the guard and keep only the local branch (`AlwaysPass`).
    ElideLocal,
    /// Drop the guard and keep only the remote branch (`NeverPass`).
    CollapseRemote,
    /// Keep the runtime guard (`Contingent`).
    Keep,
}

impl Decision {
    /// Short lowercase label for EXPLAIN FLOW output and audits.
    pub fn label(&self) -> &'static str {
        match self {
            Decision::ElideLocal => "elide-local",
            Decision::CollapseRemote => "collapse-remote",
            Decision::Keep => "keep",
        }
    }

    /// The decision a verdict maps to — the verifier replays this mapping.
    pub fn of(verdict: GuardVerdict) -> Decision {
        match verdict {
            GuardVerdict::AlwaysPass { .. } => Decision::ElideLocal,
            GuardVerdict::NeverPass => Decision::CollapseRemote,
            GuardVerdict::Contingent => Decision::Keep,
        }
    }
}

/// Compute the honest verdict for bound `B` against an envelope.
pub fn verdict_for(env: &Envelope, bound: Duration) -> GuardVerdict {
    if bound.is_zero() || bound < env.update_delay {
        GuardVerdict::NeverPass
    } else if bound > env.worst_healthy() {
        GuardVerdict::AlwaysPass {
            margin: bound.saturating_sub(env.worst_healthy()),
        }
    } else {
        GuardVerdict::Contingent
    }
}

/// Honest verdict for a bound against a catalog region — the single entry
/// point `rcc-lint` (L007) and the verifier's replay arithmetic share.
pub fn region_verdict(region: &CurrencyRegion, bound: Duration) -> GuardVerdict {
    verdict_for(&Envelope::of(region), bound)
}

/// Per-node certificate: the delivered-currency interval a plan node can
/// prove, plus the guard verdict/decision when the node carries a guard.
/// Nodes are listed in pre-order (node 0 is the root; SwitchUnion visits
/// local then remote; joins visit left/outer then right).
#[derive(Debug, Clone)]
pub struct NodeFlow {
    /// Pre-order index of the node in the plan.
    pub node: usize,
    /// Nesting depth (root = 0), for indented rendering.
    pub depth: usize,
    /// The node's one-line operator label.
    pub label: String,
    /// Delivered staleness interval over all operands the node produces.
    pub interval: CurrencyInterval,
    /// Consistency-class grouping fact: operands by snapshot source, e.g.
    /// `CR1:{0} backend:{1}` or `mixed:{0}` below a contingent guard.
    pub groups: String,
    /// Static verdict, for guard-bearing nodes.
    pub verdict: Option<GuardVerdict>,
    /// Elision decision, for guard-bearing nodes.
    pub decision: Option<Decision>,
}

/// Machine-checkable certificate for one currency guard site. The verifier
/// replays `verdict` and `decision` from the catalog alone; any mismatch
/// rejects the analysis.
#[derive(Debug, Clone)]
pub struct GuardCert {
    /// Pre-order index of the guard-bearing node.
    pub node: usize,
    /// Operator label of the guard-bearing node.
    pub label: String,
    /// Region whose staleness the guard checks.
    pub region: RegionId,
    /// Heartbeat table the runtime check reads.
    pub heartbeat_table: String,
    /// The clause bound `B`.
    pub bound: Duration,
    /// The envelope the verdict was computed against (recorded so the
    /// verifier can cross-check it against the catalog).
    pub envelope: Envelope,
    /// The analysis' claimed verdict.
    pub verdict: GuardVerdict,
    /// The analysis' claimed elision decision.
    pub decision: Decision,
}

/// The result of analyzing a plan: one [`NodeFlow`] per plan node in
/// pre-order, and one [`GuardCert`] per guard site in the same order.
#[derive(Debug, Clone)]
pub struct FlowAnalysis {
    /// Per-node certificates, pre-order; `nodes[0]` is the plan root.
    pub nodes: Vec<NodeFlow>,
    /// Per-guard certificates, in pre-order of their bearing nodes.
    pub guards: Vec<GuardCert>,
}

impl FlowAnalysis {
    /// The root node's certificate (every plan has at least one node).
    pub fn root(&self) -> &NodeFlow {
        &self.nodes[0]
    }

    /// Guards whose decision removes the runtime check.
    pub fn elidable(&self) -> usize {
        self.guards
            .iter()
            .filter(|g| g.decision != Decision::Keep)
            .count()
    }
}

/// A deliberate corruption of the analysis, used by mutation tests and
/// `flow-audit` to prove the verifier rejects unsound certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Widen the set of states considered current: leaf intervals collapse
    /// to `[d, d]`, claiming replicas are never staler than the propagation
    /// delay. Rejected by the verifier's interval-containment replay.
    WidenInterval,
    /// Drop the heartbeat term from the envelope join: `H := d + f`,
    /// forgetting that the guard's timestamp trails the watermark. Rejected
    /// by verdict replay for bounds in `(d+f, d+f+hb]`.
    DropHeartbeatJoin,
    /// Elide a falsifiable guard: report `Contingent` sites as
    /// `AlwaysPass` with zero margin. Rejected by verdict replay.
    ElideFalsifiable,
    /// Assume a stale clock: `AlwaysPass` whenever `B ≥ d`, as if the
    /// heartbeat could never age past one propagation delay. Rejected by
    /// verdict replay.
    StaleClock,
}

impl Mutation {
    /// All mutations, for audit sweeps.
    pub const ALL: [Mutation; 4] = [
        Mutation::WidenInterval,
        Mutation::DropHeartbeatJoin,
        Mutation::ElideFalsifiable,
        Mutation::StaleClock,
    ];

    /// Short label for audit output.
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::WidenInterval => "widen-interval",
            Mutation::DropHeartbeatJoin => "drop-heartbeat-join",
            Mutation::ElideFalsifiable => "elide-falsifiable",
            Mutation::StaleClock => "stale-clock",
        }
    }
}

/// Which snapshot source an operand's rows come from — the grouping fact.
/// Operands sharing a single concrete source are mutually consistent (same
/// snapshot family); `Mixed` records that a contingent guard makes the
/// source a runtime choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceFact {
    Backend,
    Region(RegionId),
    Mixed,
}

#[derive(Debug, Clone, Copy)]
struct OpFact {
    source: SourceFact,
    interval: CurrencyInterval,
}

/// Analyze a plan, producing per-node and per-guard certificates.
pub fn analyze(catalog: &Catalog, plan: &PhysicalPlan) -> FlowAnalysis {
    analyze_mutated(catalog, plan, None)
}

/// Analyze with an optional deliberate corruption (`None` = honest). Only
/// audits and mutation tests pass `Some`.
pub fn analyze_mutated(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    mutation: Option<Mutation>,
) -> FlowAnalysis {
    let mut az = Analyzer {
        catalog,
        mutation,
        nodes: Vec::new(),
        guards: Vec::new(),
        next: 0,
    };
    az.visit(plan, 0);
    FlowAnalysis {
        nodes: az.nodes,
        guards: az.guards,
    }
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    mutation: Option<Mutation>,
    nodes: Vec<NodeFlow>,
    guards: Vec<GuardCert>,
    next: usize,
}

impl Analyzer<'_> {
    /// The envelope the mutated analysis *believes* (only the verdict
    /// arithmetic is corrupted; the recorded envelope fields stay honest,
    /// modeling an analysis whose arithmetic — not its inputs — is buggy).
    fn verdict(&self, env: &Envelope, bound: Duration) -> GuardVerdict {
        match self.mutation {
            Some(Mutation::DropHeartbeatJoin) => {
                let worst = env.update_delay.plus(env.update_interval);
                if bound.is_zero() || bound < env.update_delay {
                    GuardVerdict::NeverPass
                } else if bound > worst {
                    GuardVerdict::AlwaysPass {
                        margin: bound.saturating_sub(worst),
                    }
                } else {
                    GuardVerdict::Contingent
                }
            }
            Some(Mutation::ElideFalsifiable) => match verdict_for(env, bound) {
                GuardVerdict::Contingent => GuardVerdict::AlwaysPass {
                    margin: Duration::ZERO,
                },
                v => v,
            },
            Some(Mutation::StaleClock) => {
                if bound.is_zero() || bound < env.update_delay {
                    GuardVerdict::NeverPass
                } else {
                    GuardVerdict::AlwaysPass {
                        margin: bound.saturating_sub(env.update_delay),
                    }
                }
            }
            _ => verdict_for(env, bound),
        }
    }

    fn healthy_leaf(&self, env: &Envelope) -> CurrencyInterval {
        if self.mutation == Some(Mutation::WidenInterval) {
            CurrencyInterval {
                lo: env.update_delay,
                hi: StalenessBound::Finite(env.update_delay),
            }
        } else {
            CurrencyInterval::healthy(env)
        }
    }

    /// Facts for a local read of `object` implementing `operand`.
    fn local_object_facts(&self, object: &str, operand: OperandId) -> BTreeMap<OperandId, OpFact> {
        let mut ops = BTreeMap::new();
        if let Ok(view) = self.catalog.view(object) {
            let fact = match self.catalog.region(view.region) {
                Ok(region) => OpFact {
                    source: SourceFact::Region(region.id),
                    interval: self.healthy_leaf(&Envelope::of(&region)),
                },
                Err(_) => OpFact {
                    source: SourceFact::Region(view.region),
                    interval: CurrencyInterval {
                        lo: Duration::ZERO,
                        hi: StalenessBound::Unbounded,
                    },
                },
            };
            ops.insert(operand, fact);
        } else {
            // A master table scanned in back-end role: exactly current.
            ops.insert(
                operand,
                OpFact {
                    source: SourceFact::Backend,
                    interval: CurrencyInterval::exact_current(),
                },
            );
        }
        ops
    }

    /// Visit a node: reserve its pre-order slot, analyze children, fill in
    /// the certificate, and return the operand facts it delivers.
    fn visit(&mut self, plan: &PhysicalPlan, depth: usize) -> BTreeMap<OperandId, OpFact> {
        let my = self.next;
        self.next += 1;
        // Reserve the slot so children (visited next) land after it.
        self.nodes.push(NodeFlow {
            node: my,
            depth,
            label: plan.node_label(),
            interval: CurrencyInterval::exact_current(),
            groups: String::new(),
            verdict: None,
            decision: None,
        });

        let ops = match plan {
            PhysicalPlan::OneRow => BTreeMap::new(),
            PhysicalPlan::LocalScan(n) => self.local_object_facts(&n.object, n.operand),
            PhysicalPlan::RemoteQuery(n) => n
                .operands
                .iter()
                .map(|op| {
                    (
                        *op,
                        OpFact {
                            source: SourceFact::Backend,
                            interval: CurrencyInterval::exact_current(),
                        },
                    )
                })
                .collect(),
            PhysicalPlan::SwitchUnion {
                guard,
                local,
                remote,
            } => {
                let (verdict, _decision) = self.certify_guard(guard, my, plan);
                let local_ops = self.visit(local, depth + 1);
                let remote_ops = self.visit(remote, depth + 1);
                self.merge_guarded(guard, verdict, local_ops, remote_ops)
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => self.visit(input, depth + 1),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                let mut ops = self.visit(left, depth + 1);
                ops.extend(self.visit(right, depth + 1));
                ops
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                let mut ops = self.visit(outer, depth + 1);
                ops.extend(self.inner_facts(inner, my, plan));
                ops
            }
        };

        // Fill in the node's certificate now that children are known
        // (nodes are pushed in pre-order, so `nodes[my].node == my`).
        self.nodes[my].interval = ops
            .values()
            .map(|f| f.interval)
            .reduce(|a, b| a.hull(&b))
            .unwrap_or_else(CurrencyInterval::exact_current);
        self.nodes[my].groups = render_groups(&ops);
        let guard_facts = self
            .guards
            .iter()
            .find(|g| g.node == my)
            .map(|g| (g.verdict, g.decision));
        if let Some((verdict, decision)) = guard_facts {
            self.nodes[my].verdict = Some(verdict);
            self.nodes[my].decision = Some(decision);
        }
        ops
    }

    /// Compute and record the certificate for a guard at node `node`.
    fn certify_guard(
        &mut self,
        guard: &CurrencyGuard,
        node: usize,
        plan: &PhysicalPlan,
    ) -> (GuardVerdict, Decision) {
        let env = match self.catalog.region(guard.region) {
            Ok(region) => Envelope::of(&region),
            Err(_) => Envelope {
                update_delay: Duration::ZERO,
                update_interval: Duration::ZERO,
                heartbeat_interval: Duration::ZERO,
            },
        };
        let verdict = if self.catalog.region(guard.region).is_err() {
            // Unknown region: never elide.
            GuardVerdict::Contingent
        } else {
            self.verdict(&env, guard.bound)
        };
        let decision = Decision::of(verdict);
        self.guards.push(GuardCert {
            node,
            label: plan.node_label(),
            region: guard.region,
            heartbeat_table: guard.heartbeat_table.clone(),
            bound: guard.bound,
            envelope: env,
            verdict,
            decision,
        });
        (verdict, decision)
    }

    /// Merge the two branches of a guarded choice according to the verdict.
    fn merge_guarded(
        &self,
        guard: &CurrencyGuard,
        verdict: GuardVerdict,
        local: BTreeMap<OperandId, OpFact>,
        remote: BTreeMap<OperandId, OpFact>,
    ) -> BTreeMap<OperandId, OpFact> {
        match verdict {
            GuardVerdict::AlwaysPass { .. } => local,
            GuardVerdict::NeverPass => remote,
            GuardVerdict::Contingent => {
                // Guard passing caps same-region local facts at the bound;
                // the runtime choice makes each operand's source mixed.
                let mut out = BTreeMap::new();
                for (op, lf) in &local {
                    let capped = if lf.source == SourceFact::Region(guard.region) {
                        lf.interval.cap(guard.bound)
                    } else {
                        lf.interval
                    };
                    let fact = match remote.get(op) {
                        Some(rf) => OpFact {
                            source: if rf.source == lf.source {
                                lf.source
                            } else {
                                SourceFact::Mixed
                            },
                            interval: capped.hull(&rf.interval),
                        },
                        None => OpFact {
                            source: SourceFact::Mixed,
                            interval: capped,
                        },
                    };
                    out.insert(*op, fact);
                }
                for (op, rf) in remote {
                    out.entry(op).or_insert(OpFact {
                        source: SourceFact::Mixed,
                        interval: rf.interval,
                    });
                }
                out
            }
        }
    }

    /// Facts for an index-join inner access (part of the join node itself).
    fn inner_facts(
        &mut self,
        inner: &InnerAccess,
        node: usize,
        plan: &PhysicalPlan,
    ) -> BTreeMap<OperandId, OpFact> {
        if inner.force_remote {
            let mut ops = BTreeMap::new();
            ops.insert(
                inner.operand,
                OpFact {
                    source: SourceFact::Backend,
                    interval: CurrencyInterval::exact_current(),
                },
            );
            return ops;
        }
        match &inner.guard {
            None => self.local_object_facts(&inner.object, inner.operand),
            Some(guard) => {
                let (verdict, _decision) = self.certify_guard(guard, node, plan);
                let local = self.local_object_facts(&inner.object, inner.operand);
                let mut remote = BTreeMap::new();
                remote.insert(
                    inner.operand,
                    OpFact {
                        source: SourceFact::Backend,
                        interval: CurrencyInterval::exact_current(),
                    },
                );
                self.merge_guarded(guard, verdict, local, remote)
            }
        }
    }
}

fn render_groups(ops: &BTreeMap<OperandId, OpFact>) -> String {
    if ops.is_empty() {
        return "-".to_string();
    }
    // Group operands by source, rendered in a stable order.
    let mut groups: BTreeMap<String, Vec<OperandId>> = BTreeMap::new();
    for (op, fact) in ops {
        let key = match fact.source {
            SourceFact::Backend => "backend".to_string(),
            SourceFact::Region(r) => format!("region{}", r.0),
            SourceFact::Mixed => "mixed".to_string(),
        };
        groups.entry(key).or_default().push(*op);
    }
    groups
        .into_iter()
        .map(|(src, ops)| {
            let list = ops
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!("{src}:{{{list}}}")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The elided plan plus the certificates that justify each removal.
#[derive(Debug, Clone)]
pub struct Elided {
    /// The transformed plan.
    pub plan: PhysicalPlan,
    /// Certificates of the guards that were removed (decision != Keep).
    pub elided: Vec<GuardCert>,
    /// Number of guards kept.
    pub kept: usize,
}

/// Apply the analysis' elision decisions: collapse `AlwaysPass`
/// SwitchUnions to their local branch, `NeverPass` ones to their remote
/// branch, and strip or harden guarded index-join inners the same way.
/// The transform walks the plan in the analysis' pre-order so certificates
/// pair with their sites by node index.
pub fn elide(plan: &PhysicalPlan, analysis: &FlowAnalysis) -> Elided {
    let by_node: BTreeMap<usize, &GuardCert> =
        analysis.guards.iter().map(|g| (g.node, g)).collect();
    let mut counter = 0usize;
    let mut elided = Vec::new();
    let mut kept = 0usize;
    let plan = rewrite(plan, &by_node, &mut counter, &mut elided, &mut kept);
    Elided { plan, elided, kept }
}

fn rewrite(
    plan: &PhysicalPlan,
    certs: &BTreeMap<usize, &GuardCert>,
    counter: &mut usize,
    elided: &mut Vec<GuardCert>,
    kept: &mut usize,
) -> PhysicalPlan {
    let my = *counter;
    *counter += 1;
    match plan {
        PhysicalPlan::OneRow | PhysicalPlan::LocalScan(_) | PhysicalPlan::RemoteQuery(_) => {
            plan.clone()
        }
        PhysicalPlan::SwitchUnion {
            guard,
            local,
            remote,
        } => match certs.get(&my).map(|c| (*c).clone()) {
            Some(cert) if cert.decision == Decision::ElideLocal => {
                elided.push(cert);
                let out = rewrite(local, certs, counter, elided, kept);
                *counter += remote.node_count();
                out
            }
            Some(cert) if cert.decision == Decision::CollapseRemote => {
                elided.push(cert);
                *counter += local.node_count();
                rewrite(remote, certs, counter, elided, kept)
            }
            _ => {
                *kept += 1;
                PhysicalPlan::SwitchUnion {
                    guard: guard.clone(),
                    local: Box::new(rewrite(local, certs, counter, elided, kept)),
                    remote: Box::new(rewrite(remote, certs, counter, elided, kept)),
                }
            }
        },
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(rewrite(input, certs, counter, elided, kept)),
            predicate: predicate.clone(),
        },
        PhysicalPlan::Project { input, exprs } => PhysicalPlan::Project {
            input: Box::new(rewrite(input, certs, counter, elided, kept)),
            exprs: exprs.clone(),
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => PhysicalPlan::HashJoin {
            left: Box::new(rewrite(left, certs, counter, elided, kept)),
            right: Box::new(rewrite(right, certs, counter, elided, kept)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            kind: *kind,
        },
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => PhysicalPlan::MergeJoin {
            left: Box::new(rewrite(left, certs, counter, elided, kept)),
            right: Box::new(rewrite(right, certs, counter, elided, kept)),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
            kind: *kind,
        },
        PhysicalPlan::IndexNLJoin {
            outer,
            outer_key,
            inner,
            kind,
        } => {
            let new_outer = Box::new(rewrite(outer, certs, counter, elided, kept));
            let mut new_inner = inner.clone();
            if inner.guard.is_some() {
                match certs.get(&my).map(|c| (*c).clone()) {
                    Some(cert) if cert.decision == Decision::ElideLocal => {
                        elided.push(cert);
                        new_inner.guard = None;
                    }
                    Some(cert) if cert.decision == Decision::CollapseRemote => {
                        elided.push(cert);
                        new_inner.guard = None;
                        new_inner.force_remote = true;
                    }
                    _ => {
                        *kept += 1;
                    }
                }
            }
            PhysicalPlan::IndexNLJoin {
                outer: new_outer,
                outer_key: outer_key.clone(),
                inner: new_inner,
                kind: *kind,
            }
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(rewrite(input, certs, counter, elided, kept)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            having: having.clone(),
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(rewrite(input, certs, counter, elided, kept)),
            keys: keys.clone(),
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(rewrite(input, certs, counter, elided, kept)),
            n: *n,
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(rewrite(input, certs, counter, elided, kept)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_catalog::{CachedViewDef, CurrencyRegion, TableMeta};
    use rcc_common::{Column, DataType, Schema};
    use rcc_optimizer::physical::{AccessPath, LocalScanNode, RemoteQueryNode};
    use std::sync::Arc;

    /// CR1: d=5 f=15 hb=2 → H=22; CR2: d=5 f=10 hb=2 → H=17.
    fn catalog() -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());
        let cm = rcc_tpcd::customer_meta(catalog.next_table_id());
        let cm = catalog.register_table(cm).expect("customer");
        let om = rcc_tpcd::orders_meta(catalog.next_table_id());
        let om = catalog.register_table(om).expect("orders");
        let cr1 = catalog
            .register_region(CurrencyRegion::new(
                RegionId(1),
                "CR1",
                Duration::from_secs(15),
                Duration::from_secs(5),
            ))
            .expect("CR1");
        let cr2 = catalog
            .register_region(CurrencyRegion::new(
                RegionId(2),
                "CR2",
                Duration::from_secs(10),
                Duration::from_secs(5),
            ))
            .expect("CR2");
        register_view(&catalog, "cust_prj", cr1.id, &cm);
        register_view(&catalog, "orders_prj", cr2.id, &om);
        catalog
    }

    fn register_view(catalog: &Arc<Catalog>, name: &str, region: RegionId, base: &Arc<TableMeta>) {
        let columns: Vec<String> = base.key.clone();
        let schema = Schema::new(
            columns
                .iter()
                .map(|c| {
                    let ord = base.schema.resolve(None, c).expect("col");
                    let mut col = base.schema.column(ord).clone();
                    col.qualifier = Some(name.to_string());
                    col.source = Some(base.id);
                    col
                })
                .collect(),
        );
        let key_ordinals: Vec<usize> = (0..columns.len()).collect();
        catalog
            .register_view(CachedViewDef {
                id: catalog.next_view_id(),
                name: name.to_string(),
                region,
                base_table: base.id,
                base_table_name: base.name.clone(),
                columns,
                predicate: None,
                schema,
                key_ordinals,
                local_indexes: Vec::new(),
            })
            .expect("view");
    }

    fn scan(object: &str, operand: OperandId) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: object.to_string(),
            schema: Schema::new(vec![Column::new("c", DataType::Int)]),
            access: AccessPath::FullScan,
            residual: None,
            operand,
            est_rows: 10.0,
        })
    }

    fn remote(ops: &[OperandId]) -> PhysicalPlan {
        PhysicalPlan::RemoteQuery(RemoteQueryNode {
            sql: "SELECT 1".into(),
            schema: Schema::new(vec![Column::new("c", DataType::Int)]),
            operands: ops.iter().copied().collect(),
            est_rows: 10.0,
        })
    }

    fn su(
        region: RegionId,
        bound_secs: i64,
        local: PhysicalPlan,
        remote: PhysicalPlan,
    ) -> PhysicalPlan {
        PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region,
                heartbeat_table: format!("heartbeat_cr{}", region.0),
                bound: Duration::from_secs(bound_secs),
            },
            local: Box::new(local),
            remote: Box::new(remote),
        }
    }

    #[test]
    fn envelope_arithmetic() {
        let catalog = catalog();
        let cr1 = catalog.region(RegionId(1)).expect("CR1");
        let env = Envelope::of(&cr1);
        assert_eq!(env.worst_healthy(), Duration::from_secs(22));
        assert_eq!(
            verdict_for(&env, Duration::from_secs(30)),
            GuardVerdict::AlwaysPass {
                margin: Duration::from_secs(8)
            }
        );
        assert_eq!(
            verdict_for(&env, Duration::from_secs(2)),
            GuardVerdict::NeverPass
        );
        assert_eq!(verdict_for(&env, Duration::ZERO), GuardVerdict::NeverPass);
        // The boundary cases stay contingent (conservative).
        assert_eq!(
            verdict_for(&env, Duration::from_secs(5)),
            GuardVerdict::Contingent
        );
        assert_eq!(
            verdict_for(&env, Duration::from_secs(22)),
            GuardVerdict::Contingent
        );
    }

    #[test]
    fn backend_leaf_is_exact_current() {
        let catalog = catalog();
        let analysis = analyze(&catalog, &remote(&[0]));
        assert_eq!(analysis.nodes.len(), 1);
        assert_eq!(analysis.root().interval, CurrencyInterval::exact_current());
        assert_eq!(analysis.root().groups, "backend:{0}");
        assert!(analysis.guards.is_empty());
    }

    #[test]
    fn view_leaf_gets_healthy_interval() {
        let catalog = catalog();
        let analysis = analyze(&catalog, &scan("cust_prj", 0));
        let root = analysis.root();
        assert_eq!(root.interval.lo, Duration::from_secs(5));
        assert_eq!(
            root.interval.hi,
            StalenessBound::Finite(Duration::from_secs(22))
        );
        assert_eq!(root.groups, "region1:{0}");
    }

    #[test]
    fn always_pass_guard_elides_to_local() {
        let catalog = catalog();
        let plan = su(RegionId(1), 30, scan("cust_prj", 0), remote(&[0]));
        let analysis = analyze(&catalog, &plan);
        assert_eq!(analysis.guards.len(), 1);
        assert!(matches!(
            analysis.guards[0].verdict,
            GuardVerdict::AlwaysPass { .. }
        ));
        assert_eq!(analysis.guards[0].decision, Decision::ElideLocal);
        // Node facts: root SU keeps the local branch's facts.
        assert_eq!(analysis.root().interval.lo, Duration::from_secs(5));
        let elided = elide(&plan, &analysis);
        assert_eq!(elided.elided.len(), 1);
        assert_eq!(elided.kept, 0);
        assert!(matches!(elided.plan, PhysicalPlan::LocalScan(_)));
    }

    #[test]
    fn never_pass_guard_collapses_to_remote() {
        let catalog = catalog();
        let plan = su(RegionId(1), 2, scan("cust_prj", 0), remote(&[0]));
        let analysis = analyze(&catalog, &plan);
        assert_eq!(analysis.guards[0].verdict, GuardVerdict::NeverPass);
        let elided = elide(&plan, &analysis);
        assert_eq!(elided.elided.len(), 1);
        assert!(matches!(elided.plan, PhysicalPlan::RemoteQuery(_)));
        assert_eq!(elided.plan.explain(), remote(&[0]).explain());
    }

    #[test]
    fn contingent_guard_is_kept_and_caps_interval() {
        let catalog = catalog();
        let plan = su(RegionId(1), 10, scan("cust_prj", 0), remote(&[0]));
        let analysis = analyze(&catalog, &plan);
        assert_eq!(analysis.guards[0].verdict, GuardVerdict::Contingent);
        assert_eq!(analysis.guards[0].decision, Decision::Keep);
        let root = analysis.root();
        // Hull of capped-local [5, 10] and backend [0, 0] = [0, 10].
        assert_eq!(root.interval.lo, Duration::ZERO);
        assert_eq!(
            root.interval.hi,
            StalenessBound::Finite(Duration::from_secs(10))
        );
        assert_eq!(root.groups, "mixed:{0}");
        let elided = elide(&plan, &analysis);
        assert_eq!(elided.elided.len(), 0);
        assert_eq!(elided.kept, 1);
        assert_eq!(elided.plan.explain(), plan.explain());
    }

    #[test]
    fn join_merges_disjoint_operand_facts() {
        let catalog = catalog();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(su(RegionId(1), 30, scan("cust_prj", 0), remote(&[0]))),
            right: Box::new(remote(&[1])),
            left_keys: vec![],
            right_keys: vec![],
            kind: rcc_optimizer::graph::JoinKind::Inner,
        };
        let analysis = analyze(&catalog, &plan);
        let root = analysis.root();
        // Hull of [5, 22] (view under elided guard) and [0, 0] (backend).
        assert_eq!(root.interval.lo, Duration::ZERO);
        assert_eq!(
            root.interval.hi,
            StalenessBound::Finite(Duration::from_secs(22))
        );
        assert_eq!(root.groups, "backend:{1} region1:{0}");
        // Pre-order: join, SU, local scan, remote, right remote.
        assert_eq!(analysis.nodes.len(), 5);
        assert_eq!(analysis.guards[0].node, 1);
    }

    #[test]
    fn nested_elision_consumes_certs_in_preorder() {
        let catalog = catalog();
        // Two sibling SwitchUnions under a join: first elides local
        // (30s > 22s on CR1), second collapses remote (2s < 5s on CR2).
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(su(RegionId(1), 30, scan("cust_prj", 0), remote(&[0]))),
            right: Box::new(su(RegionId(2), 2, scan("orders_prj", 1), remote(&[1]))),
            left_keys: vec![],
            right_keys: vec![],
            kind: rcc_optimizer::graph::JoinKind::Inner,
        };
        let analysis = analyze(&catalog, &plan);
        assert_eq!(analysis.guards.len(), 2);
        let elided = elide(&plan, &analysis);
        assert_eq!(elided.elided.len(), 2);
        match &elided.plan {
            PhysicalPlan::HashJoin { left, right, .. } => {
                assert!(matches!(**left, PhysicalPlan::LocalScan(_)));
                assert!(matches!(**right, PhysicalPlan::RemoteQuery(_)));
            }
            other => panic!("unexpected plan {}", other.explain()),
        }
    }

    #[test]
    fn mutations_diverge_from_honest_analysis() {
        let catalog = catalog();
        // Bound 16s on CR2 (d+f = 15 < 16 ≤ 17 = H): the dropped-heartbeat
        // mutation wrongly promotes the verdict to always-pass.
        let plan = su(RegionId(2), 16, scan("orders_prj", 0), remote(&[0]));
        let honest = analyze(&catalog, &plan);
        assert_eq!(honest.guards[0].verdict, GuardVerdict::Contingent);
        let m = analyze_mutated(&catalog, &plan, Some(Mutation::DropHeartbeatJoin));
        assert!(matches!(
            m.guards[0].verdict,
            GuardVerdict::AlwaysPass { .. }
        ));
        // Stale clock: any bound ≥ d is promoted.
        let plan10 = su(RegionId(2), 10, scan("orders_prj", 0), remote(&[0]));
        let m = analyze_mutated(&catalog, &plan10, Some(Mutation::StaleClock));
        assert!(matches!(
            m.guards[0].verdict,
            GuardVerdict::AlwaysPass { .. }
        ));
        // Elide-falsifiable: contingent reported as always-pass.
        let m = analyze_mutated(&catalog, &plan10, Some(Mutation::ElideFalsifiable));
        assert_eq!(m.guards[0].decision, Decision::ElideLocal);
        // Widened interval: the leaf claims [d, d] instead of [d, H].
        let m = analyze_mutated(
            &catalog,
            &scan("cust_prj", 0),
            Some(Mutation::WidenInterval),
        );
        assert_eq!(
            m.root().interval.hi,
            StalenessBound::Finite(Duration::from_secs(5))
        );
        let honest_leaf = analyze(&catalog, &scan("cust_prj", 0));
        assert!(!m.root().interval.contains(&honest_leaf.root().interval));
    }

    #[test]
    fn interval_lattice_laws() {
        let a = CurrencyInterval {
            lo: Duration::from_secs(5),
            hi: StalenessBound::Finite(Duration::from_secs(22)),
        };
        let b = CurrencyInterval::exact_current();
        let h = a.hull(&b);
        assert_eq!(h.lo, Duration::ZERO);
        assert_eq!(h.hi, StalenessBound::Finite(Duration::from_secs(22)));
        assert!(h.contains(&a));
        assert!(h.contains(&b));
        assert!(!b.contains(&a));
        let capped = a.cap(Duration::from_secs(10));
        assert_eq!(capped.hi, StalenessBound::Finite(Duration::from_secs(10)));
        assert!(a.contains(&capped));
        let unb = CurrencyInterval {
            lo: Duration::ZERO,
            hi: StalenessBound::Unbounded,
        };
        assert!(unb.contains(&a));
        assert!(!a.contains(&unb));
    }

    #[test]
    fn guarded_inner_access_certifies_on_the_join_node() {
        let catalog = catalog();
        let inner = InnerAccess {
            object: "orders_prj".to_string(),
            schema: Schema::new(vec![Column::new("o", DataType::Int)]),
            seek_col: "o_custkey".to_string(),
            use_index: None,
            residual: None,
            guard: Some(CurrencyGuard {
                region: RegionId(2),
                heartbeat_table: "heartbeat_cr2".to_string(),
                bound: Duration::from_secs(30),
            }),
            remote_sql: Some("SELECT 1".to_string()),
            operand: 1,
            est_rows_per_probe: 1.0,
            force_remote: false,
        };
        let plan = PhysicalPlan::IndexNLJoin {
            outer: Box::new(remote(&[0])),
            outer_key: rcc_optimizer::expr::BoundExpr::Literal(rcc_common::Value::Int(1)),
            inner,
            kind: rcc_optimizer::graph::JoinKind::Inner,
        };
        let analysis = analyze(&catalog, &plan);
        assert_eq!(analysis.guards.len(), 1);
        assert_eq!(analysis.guards[0].node, 0);
        assert_eq!(analysis.guards[0].decision, Decision::ElideLocal);
        let elided = elide(&plan, &analysis);
        assert_eq!(elided.elided.len(), 1);
        match &elided.plan {
            PhysicalPlan::IndexNLJoin { inner, .. } => {
                assert!(inner.guard.is_none());
                assert!(!inner.force_remote);
            }
            other => panic!("unexpected plan {}", other.explain()),
        }
    }
}
