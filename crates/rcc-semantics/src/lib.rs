#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Executable formal semantics of C&C constraints (paper Sec. 8, Appendix).
//!
//! The paper defines the meaning of currency and consistency constraints in
//! terms of *histories*: transactions commit on the master database with
//! increasing integer timestamps, copies are synchronized by
//! copy-transactions, and notions like staleness, currency and
//! Δ-consistency are defined over the resulting timeline. This crate makes
//! those definitions executable so they can serve as a **test oracle**: the
//! integration suite replays what the system actually did (commits,
//! propagations, reads) into a [`History`] and asks the oracle whether every
//! answer honoured its constraints.
//!
//! Correspondence to the paper:
//!
//! | Paper (Sec. 8)                     | Here                               |
//! |------------------------------------|------------------------------------|
//! | history `Hn = T1 ∘ … ∘ Tn`         | [`History`] (ordered commits)      |
//! | `xtime(O, Hn)` for master objects  | [`History::master_xtime`]          |
//! | copy timestamp (sync-time xtime)   | [`Copy::synced`]                   |
//! | `stale(C, Hn)` stale point         | [`History::stale_point`]           |
//! | `currency(C, Hn)`                  | [`History::currency`]              |
//! | snapshot consistency of a set K    | [`History::snapshot_consistent`]   |
//! | `distance(A, B, Hn)` / Δ-consistency | [`History::distance`], [`History::delta_consistent`] |
//! | timeline consistency (Sec. 8.7)    | [`timeline_consistent`]            |

pub mod history;
pub mod oracle;
pub mod templates;

pub use history::{Copy, History, ObjectId, TxnEvent};
pub use oracle::{timeline_consistent, GroupObservation};
pub use templates::{
    summarize_template, AccessMode, KeySpec, KeyTerm, TemplateAccess, TemplateSummary,
};
