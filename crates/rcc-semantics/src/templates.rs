#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Binding transaction templates to read/write summaries.
//!
//! A [`rcc_sql::ast::TemplateDecl`] is a parameterized statement sequence.
//! The robustness analyzer (`rcc-robust`) does not look at raw ASTs: it
//! consumes per-template **summaries** — for every statement, the set of
//! (table, key-class) objects it reads or writes, together with each read's
//! currency bound and its *consistency position* inside the template. This
//! module performs that binding against a [`rcc_catalog::Catalog`]:
//!
//! * FROM items resolve to base tables (cached views resolve through to the
//!   table they replicate, so a view read conflicts with base-table writes);
//! * WHERE conjuncts of the form `key_col = $param` / `key_col = literal`
//!   over the table's full primary key yield a [`KeySpec::Point`] — anything
//!   less precise is a conservative [`KeySpec::Range`];
//! * currency specs assign each read its bound and its consistency class;
//!   reads in the same statement, same spec and same BY-group share one
//!   position (the paper guarantees them one snapshot, so no interleaving
//!   can split them), everything else gets a distinct position.
//!
//! The summary language is deliberately name-free where it matters: key
//! terms compare parameters by within-template identity only, so verdicts
//! downstream are invariant under template renaming and parameter
//! reordering (alpha-equivalence).

use rcc_catalog::Catalog;
use rcc_common::{Duration, Error, Result, Value};
use rcc_sql::ast::{BinaryOp, CurrencySpec, Expr, SelectStmt, Statement, TableRef, TemplateDecl};

/// One side of a primary-key equality conjunct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyTerm {
    /// `col = $p` — a template parameter. Two [`KeyTerm::Param`]s from
    /// *different* template instances never provably collide or provably
    /// differ; within one instance, equal names mean equal values.
    Param(String),
    /// `col = 42` — a literal, rendered canonically.
    Lit(String),
}

/// The key class a statement touches on one table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeySpec {
    /// Full-primary-key equality binding, terms in key-column order.
    /// Two points are provably disjoint only when some position holds two
    /// distinct literals.
    Point(Vec<KeyTerm>),
    /// Anything else — conservatively overlaps every key class.
    Range,
}

impl KeySpec {
    /// May two key classes on the same table touch a common row?
    ///
    /// This is deliberately one-sided: `false` is a proof of disjointness,
    /// `true` merely fails to prove it.
    pub fn overlaps(&self, other: &KeySpec) -> bool {
        match (self, other) {
            (KeySpec::Point(a), KeySpec::Point(b)) => {
                if a.len() != b.len() {
                    return true;
                }
                !a.iter()
                    .zip(b)
                    .any(|(x, y)| matches!((x, y), (KeyTerm::Lit(l), KeyTerm::Lit(r)) if l != r))
            }
            _ => true,
        }
    }
}

/// How a statement touches a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// A read with its currency bound; `bound.is_zero()` means the strict
    /// (serializable, master) path, a positive bound means the read may be
    /// served from a cache that lags the master by up to `bound`.
    Read {
        /// Maximum acceptable staleness.
        bound: Duration,
    },
    /// An INSERT/UPDATE/DELETE write. Writes always run on the master under
    /// strict isolation.
    Write,
}

impl AccessMode {
    /// Is this a read whose currency bound admits stale data?
    pub fn is_relaxed_read(&self) -> bool {
        matches!(self, AccessMode::Read { bound } if !bound.is_zero())
    }

    /// Is this a write?
    pub fn is_write(&self) -> bool {
        matches!(self, AccessMode::Write)
    }
}

/// One (table, key-class) access of one template statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateAccess {
    /// Resolved **base table** name (view reads resolve through).
    pub table: String,
    /// Read (with bound) or write.
    pub mode: AccessMode,
    /// Key class touched.
    pub key: KeySpec,
    /// 0-based statement index within the template (program order).
    pub stmt: usize,
    /// Consistency position within the statement: accesses sharing a
    /// position are guaranteed one snapshot and can never be separated by
    /// an interleaved writer; distinct positions within one statement are
    /// mutually unordered and *can* be split.
    pub pos: u32,
    /// 1-based source line of the owning statement (0 if synthesized).
    pub line: u32,
}

impl TemplateAccess {
    /// Do two accesses conflict (same table, overlapping keys, at least one
    /// write)?
    pub fn conflicts_with(&self, other: &TemplateAccess) -> bool {
        self.table == other.table
            && (self.mode.is_write() || other.mode.is_write())
            && self.key.overlaps(&other.key)
    }
}

/// The bound read/write summary of one template.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSummary {
    /// Template name.
    pub name: String,
    /// 1-based source line of the declaration (0 if synthesized).
    pub line: u32,
    /// Declared parameter names (declaration order; informational only).
    pub params: Vec<String>,
    /// Number of statements in the template body.
    pub statements: usize,
    /// Every (table, key-class) access, in program order.
    pub accesses: Vec<TemplateAccess>,
}

impl TemplateSummary {
    /// Does the template write anything?
    pub fn has_writes(&self) -> bool {
        self.accesses.iter().any(|a| a.mode.is_write())
    }

    /// Does the template perform any relaxed (bound > 0) read?
    pub fn has_relaxed_reads(&self) -> bool {
        self.accesses.iter().any(|a| a.mode.is_relaxed_read())
    }
}

/// Bind `decl` against `catalog`, producing its read/write summary.
///
/// Fails with [`Error::Analysis`] when the template uses an undeclared
/// parameter, references an unknown table, or uses a construct the
/// analysis cannot summarize soundly (subqueries / derived tables).
pub fn summarize_template(catalog: &Catalog, decl: &TemplateDecl) -> Result<TemplateSummary> {
    let mut accesses = Vec::new();
    for (idx, (stmt, line)) in decl.statements.iter().enumerate() {
        match stmt {
            Statement::Select(s) => {
                summarize_select(catalog, decl, s, idx, *line, &mut accesses)?;
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let meta = resolve_base(catalog, decl, table)?;
                for row in rows {
                    for e in row {
                        check_expr(decl, e)?;
                    }
                }
                let key = insert_key(&meta, columns, rows);
                accesses.push(TemplateAccess {
                    table: meta.name.clone(),
                    mode: AccessMode::Write,
                    key,
                    stmt: idx,
                    pos: 0,
                    line: *line,
                });
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                let meta = resolve_base(catalog, decl, table)?;
                for (_, e) in assignments {
                    check_expr(decl, e)?;
                }
                if let Some(f) = filter {
                    check_expr(decl, f)?;
                }
                let key = filter_key(&meta, table, filter.as_ref());
                accesses.push(TemplateAccess {
                    table: meta.name.clone(),
                    mode: AccessMode::Write,
                    key,
                    stmt: idx,
                    pos: 0,
                    line: *line,
                });
            }
            Statement::Delete { table, filter } => {
                let meta = resolve_base(catalog, decl, table)?;
                if let Some(f) = filter {
                    check_expr(decl, f)?;
                }
                let key = filter_key(&meta, table, filter.as_ref());
                accesses.push(TemplateAccess {
                    table: meta.name.clone(),
                    mode: AccessMode::Write,
                    key,
                    stmt: idx,
                    pos: 0,
                    line: *line,
                });
            }
            other => {
                return Err(Error::Analysis(format!(
                    "template {}: unsupported statement kind {:?}",
                    decl.name,
                    std::mem::discriminant(other)
                )));
            }
        }
    }
    Ok(TemplateSummary {
        name: decl.name.clone(),
        line: decl.line,
        params: decl.params.clone(),
        statements: decl.statements.len(),
        accesses,
    })
}

/// A resolved table, with key columns, behind a FROM binding.
struct Binding {
    binding: String,
    meta: std::sync::Arc<rcc_catalog::TableMeta>,
}

fn summarize_select(
    catalog: &Catalog,
    decl: &TemplateDecl,
    s: &SelectStmt,
    idx: usize,
    line: u32,
    accesses: &mut Vec<TemplateAccess>,
) -> Result<()> {
    if let Some(f) = &s.filter {
        check_expr(decl, f)?;
    }
    for item in &s.projections {
        if let rcc_sql::ast::SelectItem::Expr { expr, .. } = item {
            check_expr(decl, expr)?;
        }
    }
    let mut bindings = Vec::new();
    collect_bindings(catalog, decl, &s.from, &mut bindings)?;
    let specs: &[CurrencySpec] = s
        .currency
        .as_ref()
        .map(|c| c.specs.as_slice())
        .unwrap_or(&[]);

    // Consistency-position assignment: accesses sharing (class, BY-group)
    // share a position; everything else is distinct. `None` as the group of
    // a BY spec whose columns are unbound is made unique via the running
    // counter so it never coalesces (conservative: splittable).
    let mut seen: Vec<(usize, Option<Vec<KeyTerm>>)> = Vec::new();
    for (bix, b) in bindings.iter().enumerate() {
        let spec_ix = specs
            .iter()
            .position(|sp| sp.tables.iter().any(|t| t.eq_ignore_ascii_case(&b.binding)));
        let (bound, class) = match spec_ix {
            Some(i) => (specs[i].bound, i),
            // Uncovered reads are strict and each their own class.
            None => (Duration::ZERO, specs.len() + bix),
        };
        let group = match spec_ix {
            Some(i) if !specs[i].by.is_empty() => {
                match by_group(&specs[i], b, s.filter.as_ref()) {
                    Some(terms) => Some(terms),
                    // Unbound BY columns: force a unique position.
                    None => Some(vec![KeyTerm::Lit(format!("\u{0}uniq{bix}"))]),
                }
            }
            _ => None,
        };
        let class_key = (class, group);
        let pos = match seen.iter().position(|k| *k == class_key) {
            Some(p) => p as u32,
            None => {
                seen.push(class_key);
                (seen.len() - 1) as u32
            }
        };
        let key = binding_key(&b.meta, &b.binding, s.filter.as_ref());
        accesses.push(TemplateAccess {
            table: b.meta.name.clone(),
            mode: AccessMode::Read { bound },
            key,
            stmt: idx,
            pos,
            line,
        });
    }
    Ok(())
}

/// Flatten the FROM clause into named bindings, resolving views to their
/// base tables. Derived tables are rejected: their reads would be invisible
/// to the summary and the analysis would be unsound.
fn collect_bindings(
    catalog: &Catalog,
    decl: &TemplateDecl,
    from: &[TableRef],
    out: &mut Vec<Binding>,
) -> Result<()> {
    for item in from {
        match item {
            TableRef::Named { name, alias } => {
                let meta = resolve_base(catalog, decl, name)?;
                out.push(Binding {
                    binding: alias.clone().unwrap_or_else(|| name.clone()),
                    meta,
                });
            }
            TableRef::Subquery { .. } => {
                return Err(Error::Analysis(format!(
                    "template {}: derived tables are not supported in templates",
                    decl.name
                )));
            }
            TableRef::Join { left, right, on } => {
                check_expr(decl, on)?;
                collect_bindings(catalog, decl, std::slice::from_ref(left), out)?;
                collect_bindings(catalog, decl, std::slice::from_ref(right), out)?;
            }
        }
    }
    Ok(())
}

/// Resolve a FROM/DML table name to its base-table metadata (views resolve
/// through to the replicated table).
fn resolve_base(
    catalog: &Catalog,
    decl: &TemplateDecl,
    name: &str,
) -> Result<std::sync::Arc<rcc_catalog::TableMeta>> {
    if let Ok(meta) = catalog.table(name) {
        return Ok(meta);
    }
    if let Ok(view) = catalog.view(name) {
        return catalog.table_by_id(view.base_table);
    }
    Err(Error::Analysis(format!(
        "template {}: unknown table or view '{name}'",
        decl.name
    )))
}

/// Reject undeclared parameters and subqueries anywhere in an expression.
fn check_expr(decl: &TemplateDecl, e: &Expr) -> Result<()> {
    let mut err = None;
    e.visit(&mut |x| {
        if err.is_some() {
            return;
        }
        match x {
            Expr::Parameter(p) if !decl.params.contains(p) => {
                err = Some(format!("template {}: undeclared parameter ${p}", decl.name));
            }
            Expr::Exists { .. } | Expr::InSubquery { .. } => {
                err = Some(format!(
                    "template {}: subqueries are not supported in templates",
                    decl.name
                ));
            }
            _ => {}
        }
    });
    match err {
        Some(m) => Err(Error::Analysis(m)),
        None => Ok(()),
    }
}

/// Extract `col = term` equality conjuncts for one binding from a WHERE
/// predicate (top-level AND tree only — anything under OR/NOT is ignored,
/// which is conservative).
fn eq_conjuncts(
    meta: &rcc_catalog::TableMeta,
    binding: &str,
    filter: Option<&Expr>,
    out: &mut Vec<(String, KeyTerm)>,
) {
    fn term_of(e: &Expr) -> Option<KeyTerm> {
        match e {
            Expr::Parameter(p) => Some(KeyTerm::Param(p.clone())),
            Expr::Literal(v) => Some(KeyTerm::Lit(render_value(v))),
            _ => None,
        }
    }
    fn walk(
        meta: &rcc_catalog::TableMeta,
        binding: &str,
        e: &Expr,
        out: &mut Vec<(String, KeyTerm)>,
    ) {
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                walk(meta, binding, left, out);
                walk(meta, binding, right, out);
            }
            Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } => {
                for (col_side, term_side) in [(left, right), (right, left)] {
                    if let Expr::Column { qualifier, name } = col_side.as_ref() {
                        let qualifier_ok = match qualifier {
                            Some(q) => q.eq_ignore_ascii_case(binding),
                            None => meta.schema.resolve(None, name).is_ok(),
                        };
                        if qualifier_ok {
                            if let Some(t) = term_of(term_side) {
                                out.push((name.to_ascii_lowercase(), t));
                                break;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(f) = filter {
        walk(meta, binding, f, out);
    }
}

/// Canonical literal rendering for key comparison.
fn render_value(v: &Value) -> String {
    format!("{v:?}")
}

/// Key class of a read/write over `binding`: Point when the WHERE clause
/// pins every primary-key column by equality, Range otherwise.
fn binding_key(meta: &rcc_catalog::TableMeta, binding: &str, filter: Option<&Expr>) -> KeySpec {
    let mut eqs = Vec::new();
    eq_conjuncts(meta, binding, filter, &mut eqs);
    let mut terms = Vec::with_capacity(meta.key.len());
    for kc in &meta.key {
        match eqs.iter().find(|(c, _)| c.eq_ignore_ascii_case(kc)) {
            Some((_, t)) => terms.push(t.clone()),
            None => return KeySpec::Range,
        }
    }
    if terms.is_empty() {
        KeySpec::Range
    } else {
        KeySpec::Point(terms)
    }
}

/// Key class of a DML filter (table referenced by its own name).
fn filter_key(meta: &rcc_catalog::TableMeta, table: &str, filter: Option<&Expr>) -> KeySpec {
    binding_key(meta, table, filter)
}

/// Key class of an INSERT: Point when a single row binds the full primary
/// key to parameters/literals.
fn insert_key(meta: &rcc_catalog::TableMeta, columns: &[String], rows: &[Vec<Expr>]) -> KeySpec {
    if rows.len() != 1 {
        return KeySpec::Range;
    }
    let row = &rows[0];
    let names: Vec<String> = if columns.is_empty() {
        meta.schema
            .columns()
            .iter()
            .map(|c| c.name.to_ascii_lowercase())
            .collect()
    } else {
        columns.iter().map(|c| c.to_ascii_lowercase()).collect()
    };
    let mut terms = Vec::with_capacity(meta.key.len());
    for kc in &meta.key {
        let Some(ix) = names.iter().position(|n| n.eq_ignore_ascii_case(kc)) else {
            return KeySpec::Range;
        };
        match row.get(ix) {
            Some(Expr::Parameter(p)) => terms.push(KeyTerm::Param(p.clone())),
            Some(Expr::Literal(v)) => terms.push(KeyTerm::Lit(render_value(v))),
            _ => return KeySpec::Range,
        }
    }
    if terms.is_empty() {
        KeySpec::Range
    } else {
        KeySpec::Point(terms)
    }
}

/// BY-group terms of one binding under a spec: the equality bindings of the
/// spec's BY columns that belong to this table. `None` when any is unbound.
fn by_group(spec: &CurrencySpec, b: &Binding, filter: Option<&Expr>) -> Option<Vec<KeyTerm>> {
    let mut eqs = Vec::new();
    eq_conjuncts(&b.meta, &b.binding, filter, &mut eqs);
    let mut terms = Vec::new();
    for (q, col) in &spec.by {
        let relevant = match q {
            Some(q) => q.eq_ignore_ascii_case(&b.binding),
            None => b.meta.schema.resolve(None, col).is_ok(),
        };
        if !relevant {
            continue;
        }
        match eqs.iter().find(|(c, _)| c.eq_ignore_ascii_case(col)) {
            Some((_, t)) => terms.push(t.clone()),
            None => return None,
        }
    }
    Some(terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_catalog::TableMeta;
    use rcc_common::{Column, DataType, Schema, TableId};
    use rcc_sql::parse_statement;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_acctbal", DataType::Float),
        ]);
        let meta =
            TableMeta::new(TableId(1), "customer", schema, vec!["c_custkey".into()]).unwrap();
        cat.register_table(meta).unwrap();
        let schema = Schema::new(vec![
            Column::new("o_orderkey", DataType::Int),
            Column::new("o_custkey", DataType::Int),
            Column::new("o_totalprice", DataType::Float),
        ]);
        let meta = TableMeta::new(TableId(2), "orders", schema, vec!["o_orderkey".into()]).unwrap();
        cat.register_table(meta).unwrap();
        cat
    }

    fn template(sql: &str) -> TemplateDecl {
        match parse_statement(sql).expect("parse") {
            Statement::CreateTemplate(t) => *t,
            other => panic!("not a template: {other:?}"),
        }
    }

    #[test]
    fn point_read_and_write_summary() {
        let cat = catalog();
        let t = template(
            "CREATE TEMPLATE pay ($c, $amt) AS \
             SELECT c_acctbal FROM customer WHERE c_custkey = $c \
               CURRENCY BOUND 10 SEC ON (customer); \
             UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END",
        );
        let s = summarize_template(&cat, &t).expect("summary");
        assert_eq!(s.statements, 2);
        assert_eq!(s.accesses.len(), 2);
        let read = &s.accesses[0];
        assert_eq!(read.table, "customer");
        assert!(read.mode.is_relaxed_read());
        assert_eq!(read.key, KeySpec::Point(vec![KeyTerm::Param("c".into())]));
        let write = &s.accesses[1];
        assert!(write.mode.is_write());
        assert_eq!(write.stmt, 1);
        assert!(s.has_writes());
        assert!(s.has_relaxed_reads());
    }

    #[test]
    fn uncovered_read_is_strict_and_range_without_key() {
        let cat = catalog();
        let t = template(
            "CREATE TEMPLATE scan () AS SELECT c_name FROM customer WHERE c_acctbal > 10; END",
        );
        let s = summarize_template(&cat, &t).expect("summary");
        assert_eq!(s.accesses.len(), 1);
        assert_eq!(
            s.accesses[0].mode,
            AccessMode::Read {
                bound: Duration::ZERO
            }
        );
        assert_eq!(s.accesses[0].key, KeySpec::Range);
        assert!(!s.has_relaxed_reads());
    }

    #[test]
    fn same_class_shares_position_distinct_classes_do_not() {
        let cat = catalog();
        let t = template(
            "CREATE TEMPLATE j ($c) AS \
             SELECT c_name, o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = $c AND o.o_custkey = $c \
             CURRENCY BOUND 10 SEC ON (c, o); END",
        );
        let s = summarize_template(&cat, &t).expect("summary");
        assert_eq!(s.accesses.len(), 2);
        assert_eq!(s.accesses[0].pos, s.accesses[1].pos);

        let t = template(
            "CREATE TEMPLATE j2 ($c) AS \
             SELECT c_name, o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = $c AND o.o_custkey = $c \
             CURRENCY BOUND 10 SEC ON (c), 5 SEC ON (o); END",
        );
        let s = summarize_template(&cat, &t).expect("summary");
        assert_ne!(s.accesses[0].pos, s.accesses[1].pos);
    }

    #[test]
    fn undeclared_parameter_rejected() {
        let cat = catalog();
        let t = template(
            "CREATE TEMPLATE bad ($c) AS SELECT c_name FROM customer WHERE c_custkey = $x; END",
        );
        let err = summarize_template(&cat, &t).expect_err("must fail");
        assert!(err.to_string().contains("undeclared parameter $x"), "{err}");
    }

    #[test]
    fn unknown_table_rejected() {
        let cat = catalog();
        let t = template("CREATE TEMPLATE bad () AS SELECT x FROM nowhere; END");
        let err = summarize_template(&cat, &t).expect_err("must fail");
        assert!(err.to_string().contains("unknown table"), "{err}");
    }

    #[test]
    fn literal_points_disjoint_param_points_overlap() {
        let a = KeySpec::Point(vec![KeyTerm::Lit("Int(1)".into())]);
        let b = KeySpec::Point(vec![KeyTerm::Lit("Int(2)".into())]);
        let p = KeySpec::Point(vec![KeyTerm::Param("c".into())]);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&a));
        assert!(a.overlaps(&p));
        assert!(p.overlaps(&p));
        assert!(KeySpec::Range.overlaps(&a));
        assert!(a.overlaps(&KeySpec::Range));
    }

    #[test]
    fn insert_with_full_key_is_point() {
        let cat = catalog();
        let t = template(
            "CREATE TEMPLATE ins ($o, $c) AS \
             INSERT INTO orders (o_orderkey, o_custkey, o_totalprice) VALUES ($o, $c, 0.0); END",
        );
        let s = summarize_template(&cat, &t).expect("summary");
        assert_eq!(
            s.accesses[0].key,
            KeySpec::Point(vec![KeyTerm::Param("o".into())])
        );
        assert!(s.accesses[0].mode.is_write());
    }
}
