//! Histories, staleness, currency and Δ-consistency.

use rcc_common::{Duration, Timestamp, TxnId};
use std::collections::HashMap;

/// Identity of a master database object. Granularity is caller-chosen —
/// "the granularity of an object may be a view, a table, a column, a row or
/// even a single cell" (paper Sec. 8.1). The prototype (and our system)
/// reasons at table granularity, so tests typically use table names.
pub type ObjectId = String;

/// One committed update transaction: its integer timestamp (id), its commit
/// time on the master clock, and the objects it modified.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnEvent {
    /// Increasing integer transaction id (the appendix's timestamp).
    pub id: TxnId,
    /// Wall/simulated commit time.
    pub time: Timestamp,
    /// Objects modified by this transaction.
    pub objects: Vec<ObjectId>,
}

/// A cached copy of a master object, as of the snapshot it was last
/// synchronized with: `synced` is the id of the last master transaction the
/// copy reflects (the copy-transaction copied the master state as of that
/// snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct Copy {
    /// The master object this is a copy of (`master(C)` in the paper).
    pub object: ObjectId,
    /// The snapshot the copy reflects.
    pub synced: TxnId,
}

impl Copy {
    /// Convenience constructor.
    pub fn new(object: impl Into<String>, synced: TxnId) -> Copy {
        Copy {
            object: object.into(),
            synced,
        }
    }
}

/// A history `Hn`: the ordered list of committed update transactions.
#[derive(Debug, Clone, Default)]
pub struct History {
    txns: Vec<TxnEvent>,
    /// Per-object list of (txn id, commit time) modifications, in order.
    by_object: HashMap<ObjectId, Vec<(TxnId, Timestamp)>>,
}

impl History {
    /// The empty history `H0`.
    pub fn new() -> History {
        History::default()
    }

    /// Append a committed transaction. Ids must be strictly increasing.
    ///
    /// # Panics
    /// Panics if `id` does not exceed the previous transaction's id or time
    /// moves backwards — both would make the history ill-formed.
    pub fn record(&mut self, event: TxnEvent) {
        if let Some(last) = self.txns.last() {
            assert!(event.id > last.id, "txn ids must increase");
            assert!(
                event.time >= last.time,
                "commit times must not go backwards"
            );
        }
        for obj in &event.objects {
            self.by_object
                .entry(obj.clone())
                .or_default()
                .push((event.id, event.time));
        }
        self.txns.push(event);
    }

    /// Number of committed transactions (`n` of `Hn`).
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True for the empty history.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Commit time of transaction `id`, if it exists.
    pub fn time_of(&self, id: TxnId) -> Option<Timestamp> {
        self.txns.iter().find(|t| t.id == id).map(|t| t.time)
    }

    /// `xtime(O, Hn)`: id of the latest transaction modifying `object`
    /// (TxnId::ZERO if never modified — the initial load).
    pub fn master_xtime(&self, object: &str) -> TxnId {
        self.by_object
            .get(object)
            .and_then(|mods| mods.last())
            .map(|(id, _)| *id)
            .unwrap_or(TxnId::ZERO)
    }

    /// `stale(C, Hn)`: the first transaction modifying `master(C)` after
    /// the copy's sync point — the moment the copy became stale. `None` if
    /// the copy is not stale.
    pub fn stale_point(&self, copy: &Copy) -> Option<(TxnId, Timestamp)> {
        self.by_object
            .get(&copy.object)?
            .iter()
            .find(|(id, _)| *id > copy.synced)
            .copied()
    }

    /// `currency(C, Hn) = xtime(Tn) − stale(C, Hn)`: how long the copy has
    /// been stale as of time `now`. Zero when the copy is current.
    pub fn currency(&self, copy: &Copy, now: Timestamp) -> Duration {
        match self.stale_point(copy) {
            Some((_, stale_time)) => now.since(stale_time),
            None => Duration::ZERO,
        }
    }

    /// Snapshot consistency of a set of copies (paper Sec. 8.5): does a
    /// snapshot `Hm` exist with respect to which *every* copy in `K` is
    /// snapshot consistent?
    ///
    /// A copy synced at `s` equals the master at snapshot `m ≥ s` iff its
    /// object is unmodified in `(s, m]`. Taking `m` = the maximum sync
    /// point over the set is optimal (any larger `m` only adds
    /// modification-freedom requirements), so the check reduces to: for
    /// every copy, no modification of its object in `(synced, max_synced]`.
    pub fn snapshot_consistent(&self, copies: &[Copy]) -> bool {
        let Some(m) = copies.iter().map(|c| c.synced).max() else {
            return true; // the empty set is vacuously consistent
        };
        copies.iter().all(|c| match self.stale_point(c) {
            None => true,
            Some((first_stale, _)) => first_stale > m,
        })
    }

    /// `distance(A, B, Hn)` (paper Sec. 8.5): with `xtime(A) ≤ xtime(B) =
    /// Tm`, the distance is `currency(A, Hm)` — how stale A already was at
    /// the moment B was current. Symmetric in the call (we order
    /// internally).
    pub fn distance(&self, a: &Copy, b: &Copy) -> Duration {
        let (older, newer) = if a.synced <= b.synced { (a, b) } else { (b, a) };
        let m_time = self.time_of(newer.synced).unwrap_or(Timestamp::ZERO);
        // currency of `older` evaluated at snapshot Hm (time of newer's sync)
        match self.stale_point(older) {
            Some((id, stale_time)) if id <= newer.synced => m_time.since(stale_time),
            _ => Duration::ZERO,
        }
    }

    /// Δ-consistency of a set with bound `t`: maximum pairwise distance
    /// does not exceed `t` (paper: "we extend the notion of Δ-consistency
    /// for a set of objects K by defining the bound t to be the maximum
    /// distance between any pair of objects in K").
    pub fn delta_consistent(&self, copies: &[Copy], bound: Duration) -> bool {
        for (i, a) in copies.iter().enumerate() {
            for b in &copies[i + 1..] {
                if self.distance(a, b) > bound {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// t1@10s touches x; t2@20s touches y; t3@30s touches x.
    fn h() -> History {
        let mut h = History::new();
        h.record(TxnEvent {
            id: TxnId(1),
            time: Timestamp(10_000),
            objects: vec!["x".into()],
        });
        h.record(TxnEvent {
            id: TxnId(2),
            time: Timestamp(20_000),
            objects: vec!["y".into()],
        });
        h.record(TxnEvent {
            id: TxnId(3),
            time: Timestamp(30_000),
            objects: vec!["x".into()],
        });
        h
    }

    #[test]
    fn master_xtime_tracks_latest_modification() {
        let h = h();
        assert_eq!(h.master_xtime("x"), TxnId(3));
        assert_eq!(h.master_xtime("y"), TxnId(2));
        assert_eq!(h.master_xtime("never"), TxnId::ZERO);
    }

    #[test]
    fn stale_point_is_first_modification_after_sync() {
        let h = h();
        let c = Copy::new("x", TxnId(1));
        assert_eq!(h.stale_point(&c), Some((TxnId(3), Timestamp(30_000))));
        let current = Copy::new("x", TxnId(3));
        assert_eq!(h.stale_point(&current), None);
        let never_synced = Copy::new("x", TxnId::ZERO);
        assert_eq!(
            h.stale_point(&never_synced),
            Some((TxnId(1), Timestamp(10_000)))
        );
    }

    #[test]
    fn currency_measures_time_since_stale() {
        let h = h();
        let c = Copy::new("x", TxnId(1));
        // stale since t=30s; at t=45s it has been stale 15s
        assert_eq!(h.currency(&c, Timestamp(45_000)), Duration::from_secs(15));
        let fresh = Copy::new("x", TxnId(3));
        assert_eq!(h.currency(&fresh, Timestamp(45_000)), Duration::ZERO);
    }

    #[test]
    fn snapshot_consistency_requires_gap_free_interval() {
        let h = h();
        // x@1 and y@2: max sync = 2; x modified at txn 3 > 2 → consistent.
        assert!(h.snapshot_consistent(&[Copy::new("x", TxnId(1)), Copy::new("y", TxnId(2))]));
        // x@0 and y@2: x modified at txn 1 ∈ (0, 2] → inconsistent.
        assert!(!h.snapshot_consistent(&[Copy::new("x", TxnId(0)), Copy::new("y", TxnId(2))]));
        // singleton and empty sets always consistent
        assert!(h.snapshot_consistent(&[Copy::new("x", TxnId(0))]));
        assert!(h.snapshot_consistent(&[]));
    }

    #[test]
    fn distance_matches_paper_definition() {
        let h = h();
        // A = x synced@1, B = y synced@2 (time 20s). x becomes stale at
        // txn 3 (30s) which is AFTER B's snapshot → A still current at Hm →
        // distance 0.
        assert_eq!(
            h.distance(&Copy::new("x", TxnId(1)), &Copy::new("y", TxnId(2))),
            Duration::ZERO
        );
        // A = x synced@0 (stale at txn1, 10s), B = y synced@2 (20s):
        // distance = 20s - 10s = 10s. Order of args must not matter.
        let a = Copy::new("x", TxnId(0));
        let b = Copy::new("y", TxnId(2));
        assert_eq!(h.distance(&a, &b), Duration::from_secs(10));
        assert_eq!(h.distance(&b, &a), Duration::from_secs(10));
    }

    #[test]
    fn delta_consistency_uses_max_pairwise_distance() {
        let h = h();
        let copies = vec![
            Copy::new("x", TxnId(0)),
            Copy::new("y", TxnId(2)),
            Copy::new("x", TxnId(3)),
        ];
        // pairwise distances include 10s (x@0 vs y@2) and 20s (x@0 vs x@3)
        assert!(h.delta_consistent(&copies, Duration::from_secs(20)));
        assert!(!h.delta_consistent(&copies, Duration::from_secs(15)));
        // Δ-consistency with bound 0 == snapshot consistency here
        let consistent = vec![Copy::new("x", TxnId(1)), Copy::new("y", TxnId(2))];
        assert!(h.delta_consistent(&consistent, Duration::ZERO));
    }

    #[test]
    #[should_panic(expected = "txn ids must increase")]
    fn non_monotonic_ids_rejected() {
        let mut h = h();
        h.record(TxnEvent {
            id: TxnId(2),
            time: Timestamp(40_000),
            objects: vec![],
        });
    }

    #[test]
    fn empty_history_behaviour() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(
            h.currency(&Copy::new("x", TxnId::ZERO), Timestamp(5)),
            Duration::ZERO
        );
        assert!(h.snapshot_consistent(&[Copy::new("x", TxnId::ZERO)]));
    }
}
