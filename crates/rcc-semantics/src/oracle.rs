//! Inter-group and timeline consistency checks (paper Sec. 8.7).

use crate::history::Copy;
use rcc_common::TxnId;

/// What one statement in a session observed: the copies (with their sync
/// snapshots) its answer was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupObservation {
    /// Label for diagnostics (e.g. the query text or an index).
    pub label: String,
    /// Copies read by the statement.
    pub copies: Vec<Copy>,
}

impl GroupObservation {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, copies: Vec<Copy>) -> GroupObservation {
        GroupObservation {
            label: label.into(),
            copies,
        }
    }

    /// The newest snapshot this group observed.
    pub fn max_synced(&self) -> TxnId {
        self.copies
            .iter()
            .map(|c| c.synced)
            .max()
            .unwrap_or(TxnId::ZERO)
    }

    /// The oldest snapshot this group observed.
    pub fn min_synced(&self) -> TxnId {
        self.copies
            .iter()
            .map(|c| c.synced)
            .min()
            .unwrap_or(TxnId::ZERO)
    }
}

/// Timeline consistency across an ordered sequence of groups: "for any
/// i < j, any objects A ∈ Gi, B ∈ Gj: xtime(A, Hn) ≤ xtime(B, Hn)" — time
/// always moves forward (paper Sec. 8.7; surface syntax `BEGIN TIMEORDERED`
/// / `END TIMEORDERED`, Sec. 2.3).
///
/// Returns `Ok(())` or the pair of group labels that violate the ordering.
pub fn timeline_consistent(groups: &[GroupObservation]) -> Result<(), (String, String)> {
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            let newest_earlier = groups[i].max_synced();
            let oldest_later = groups[j].min_synced();
            if oldest_later < newest_earlier {
                return Err((groups[i].label.clone(), groups[j].label.clone()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(label: &str, syncs: &[u64]) -> GroupObservation {
        GroupObservation::new(
            label,
            syncs.iter().map(|&s| Copy::new("obj", TxnId(s))).collect(),
        )
    }

    #[test]
    fn forward_moving_sequence_passes() {
        let groups = vec![g("q1", &[1, 2]), g("q2", &[2, 3]), g("q3", &[5])];
        assert!(timeline_consistent(&groups).is_ok());
    }

    #[test]
    fn backwards_read_detected() {
        // q1 saw snapshot 5, q2 saw snapshot 3: user's perceived time moved
        // backwards — exactly the anomaly Sec. 2.3 warns about.
        let groups = vec![g("q1", &[5]), g("q2", &[3])];
        assert_eq!(
            timeline_consistent(&groups),
            Err(("q1".to_string(), "q2".to_string()))
        );
    }

    #[test]
    fn non_adjacent_violation_detected() {
        let groups = vec![g("q1", &[4]), g("q2", &[4]), g("q3", &[2])];
        assert_eq!(
            timeline_consistent(&groups),
            Err(("q1".to_string(), "q3".to_string()))
        );
    }

    #[test]
    fn equal_snapshots_are_fine() {
        let groups = vec![g("q1", &[3]), g("q2", &[3])];
        assert!(timeline_consistent(&groups).is_ok());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(timeline_consistent(&[]).is_ok());
        assert!(timeline_consistent(&[g("q", &[9])]).is_ok());
        assert_eq!(g("q", &[]).max_synced(), TxnId::ZERO);
    }

    #[test]
    fn min_max_synced() {
        let group = g("q", &[3, 7, 5]);
        assert_eq!(group.max_synced(), TxnId(7));
        assert_eq!(group.min_synced(), TxnId(3));
    }
}
