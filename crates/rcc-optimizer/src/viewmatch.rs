//! View matching (paper Sec. 3.2.3, after Goldstein & Larson, SIGMOD'01).
//!
//! "Logical plans making use of a local view are always created through
//! view matching: the view matching algorithm finds an expression that can
//! be computed from a local view and produces a new substitute exploiting
//! the view." Our cached views are projections (with optional single-column
//! range selections) of one base table, so matching an operand reduces to:
//!
//! 1. the view is over the operand's base table;
//! 2. the view **covers** every column the query needs from the operand;
//! 3. the view's selection range **subsumes** the query's range on that
//!    column (the substitute re-applies the query predicate as a residual,
//!    so a wider view is always safe — a narrower one never is).
//!
//! The substitute is a [`LocalScanNode`]; the optimizer wraps it in a
//! SwitchUnion with a currency guard.

use crate::constraint::OperandId;
use crate::cost::{column_ranges, filter_selectivity};
use crate::expr::BoundExpr;
use crate::graph::QueryGraph;
use crate::physical::{AccessPath, LocalScanNode};
use rcc_catalog::{CachedViewDef, Catalog, CurrencyRegion};
use rcc_common::Schema;
use rcc_storage::KeyRange;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A successful view match for one operand.
#[derive(Debug, Clone)]
pub struct ViewMatch {
    /// The matched view.
    pub view: Arc<CachedViewDef>,
    /// The view's currency region.
    pub region: Arc<CurrencyRegion>,
    /// Ready-to-use scan substitute.
    pub scan: LocalScanNode,
}

/// Find every cached view that can substitute for `operand`.
pub fn match_views(catalog: &Catalog, graph: &QueryGraph, operand: OperandId) -> Vec<ViewMatch> {
    let op = graph.operand(operand);
    let required = graph.required_columns(operand);
    let ranges = column_ranges(&op.filters);
    let mut out = Vec::new();

    for view in catalog.views_over(op.table.id) {
        if !required.iter().all(|c| view.covers_column(c)) {
            continue;
        }
        if let Some(pred) = &view.predicate {
            let query_range = ranges
                .get(&pred.column.to_ascii_lowercase())
                .cloned()
                .unwrap_or_else(KeyRange::all);
            if !pred.range.contains_range(&query_range) {
                continue;
            }
        }
        let Ok(region) = catalog.region(view.region) else {
            continue;
        };

        let view_key_lead = view
            .key_ordinals
            .first()
            .map(|&k| view.columns[k].clone())
            .unwrap_or_default();
        let access = pick_access(&ranges, &view_key_lead, |col| {
            view.local_index_on(col).map(str::to_string)
        });

        let stats = {
            let s = catalog.stats(&view.name);
            if s.row_count > 0 {
                s
            } else {
                catalog.stats(&op.table.name)
            }
        };
        let est_rows = stats.row_count as f64 * filter_selectivity(&op.filters, &stats);

        out.push(ViewMatch {
            region,
            scan: LocalScanNode {
                object: view.name.clone(),
                schema: operand_schema(graph, operand, &required),
                access,
                residual: BoundExpr::and_all(op.filters.clone()),
                operand,
                est_rows,
            },
            view,
        });
    }
    out
}

/// Scan substitute over the *master* table itself — used when planning in
/// back-end role, and to estimate the back-end's cost of serving a remote
/// fetch. Uses the back-end's clustered layout and secondary indexes.
pub fn master_scan(catalog: &Catalog, graph: &QueryGraph, operand: OperandId) -> LocalScanNode {
    let op = graph.operand(operand);
    let required = graph.required_columns(operand);
    let ranges = column_ranges(&op.filters);
    let leading = op.table.key.first().cloned().unwrap_or_default();
    let access = pick_access(&ranges, &leading, |col| {
        op.table.index_on(col).map(|ix| ix.name.clone())
    });
    let stats = catalog.stats(&op.table.name);
    let est_rows = stats.row_count as f64 * filter_selectivity(&op.filters, &stats);
    LocalScanNode {
        object: op.table.name.clone(),
        schema: operand_schema(graph, operand, &required),
        access,
        residual: BoundExpr::and_all(op.filters.clone()),
        operand,
        est_rows,
    }
}

/// Output schema for an operand scan: the required columns (sorted for
/// determinism), typed from the base table and qualified by the operand
/// binding.
pub fn operand_schema(
    graph: &QueryGraph,
    operand: OperandId,
    required: &BTreeSet<String>,
) -> Schema {
    let op = graph.operand(operand);
    Schema::new(
        required
            .iter()
            .map(|c| {
                let ord = op
                    .table
                    .schema
                    .resolve(None, c)
                    .expect("required column exists");
                let mut col = op.table.schema.column(ord).clone();
                col.qualifier = Some(op.binding.clone());
                col.source = Some(op.table.id);
                col
            })
            .collect(),
    )
}

/// Choose the best access path given the filter-implied ranges: leading
/// clustered-key range beats a secondary index beats a full scan.
fn pick_access(
    ranges: &HashMap<String, KeyRange>,
    leading_key: &str,
    index_on: impl Fn(&str) -> Option<String>,
) -> AccessPath {
    if !leading_key.is_empty() {
        if let Some(r) = ranges.get(&leading_key.to_ascii_lowercase()) {
            if !r.is_full() {
                return AccessPath::ClusteredRange {
                    column: leading_key.to_string(),
                    range: r.clone(),
                };
            }
        }
    }
    for (col, r) in ranges {
        if r.is_full() {
            continue;
        }
        if let Some(index) = index_on(col) {
            return AccessPath::IndexRange {
                index,
                column: col.clone(),
                range: r.clone(),
            };
        }
    }
    AccessPath::FullScan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bind_select;
    use rcc_catalog::{TableMeta, ViewPredicate};
    use rcc_common::{Column, DataType, Duration, RegionId, TableId, Value, ViewId};
    use rcc_sql::parse_statement;

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let customer = Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_nationkey", DataType::Int),
            Column::new("c_acctbal", DataType::Float),
        ]);
        let mut meta =
            TableMeta::new(TableId(1), "customer", customer, vec!["c_custkey".into()]).unwrap();
        meta.add_index(
            rcc_common::IndexId(1),
            "ix_acctbal",
            vec!["c_acctbal".into()],
        )
        .unwrap();
        cat.register_table(meta).unwrap();
        cat.register_region(CurrencyRegion::new(
            RegionId(1),
            "CR1",
            Duration::from_secs(15),
            Duration::from_secs(5),
        ))
        .unwrap();
        // cust_prj: projection of customer WITHOUT c_nationkey, no indexes
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int).with_source(TableId(1)),
            Column::new("c_name", DataType::Str).with_source(TableId(1)),
            Column::new("c_acctbal", DataType::Float).with_source(TableId(1)),
        ])
        .with_qualifier("cust_prj");
        cat.register_view(CachedViewDef {
            id: ViewId(1),
            name: "cust_prj".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "customer".into(),
            columns: vec!["c_custkey".into(), "c_name".into(), "c_acctbal".into()],
            predicate: None,
            schema,
            key_ordinals: vec![0],
            local_indexes: vec![],
        })
        .unwrap();
        cat
    }

    fn graph(cat: &Catalog, sql: &str) -> QueryGraph {
        let stmt = match parse_statement(sql).unwrap() {
            rcc_sql::Statement::Select(s) => *s,
            other => panic!("{other:?}"),
        };
        bind_select(cat, &stmt, &HashMap::new()).unwrap()
    }

    #[test]
    fn covering_view_matches() {
        let cat = setup();
        let g = graph(&cat, "SELECT c_name FROM customer WHERE c_custkey <= 10");
        let ms = match_views(&cat, &g, 0);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].view.name, "cust_prj");
        assert!(matches!(
            ms[0].scan.access,
            AccessPath::ClusteredRange { ref column, .. } if column == "c_custkey"
        ));
    }

    #[test]
    fn uncovered_column_rejects_view() {
        let cat = setup();
        let g = graph(&cat, "SELECT c_nationkey FROM customer");
        assert!(match_views(&cat, &g, 0).is_empty());
    }

    #[test]
    fn no_local_index_means_full_scan() {
        let cat = setup();
        let g = graph(
            &cat,
            "SELECT c_name FROM customer WHERE c_acctbal BETWEEN 1.0 AND 2.0",
        );
        let ms = match_views(&cat, &g, 0);
        assert_eq!(ms.len(), 1);
        assert!(
            matches!(ms[0].scan.access, AccessPath::FullScan),
            "view has no ix_acctbal"
        );
        // but the master table does
        let m = master_scan(&cat, &g, 0);
        assert!(matches!(
            m.access,
            AccessPath::IndexRange { ref index, .. } if index == "ix_acctbal"
        ));
    }

    #[test]
    fn selection_view_subsumption() {
        let cat = setup();
        // add a selection view keeping only c_custkey <= 100
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int).with_source(TableId(1)),
            Column::new("c_name", DataType::Str).with_source(TableId(1)),
            Column::new("c_acctbal", DataType::Float).with_source(TableId(1)),
        ])
        .with_qualifier("cust_top");
        cat.register_view(CachedViewDef {
            id: ViewId(2),
            name: "cust_top".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "customer".into(),
            columns: vec!["c_custkey".into(), "c_name".into(), "c_acctbal".into()],
            predicate: Some(ViewPredicate {
                column: "c_custkey".into(),
                range: KeyRange::at_most(Value::Int(100)),
            }),
            schema,
            key_ordinals: vec![0],
            local_indexes: vec![],
        })
        .unwrap();

        // narrow query: both views match
        let g = graph(&cat, "SELECT c_name FROM customer WHERE c_custkey <= 50");
        let names: Vec<String> = match_views(&cat, &g, 0)
            .into_iter()
            .map(|m| m.view.name.clone())
            .collect();
        assert!(names.contains(&"cust_prj".to_string()));
        assert!(names.contains(&"cust_top".to_string()));

        // wide query: only the full projection matches
        let g = graph(&cat, "SELECT c_name FROM customer WHERE c_custkey <= 500");
        let names: Vec<String> = match_views(&cat, &g, 0)
            .into_iter()
            .map(|m| m.view.name.clone())
            .collect();
        assert_eq!(names, vec!["cust_prj".to_string()]);

        // unrestricted query: selection view cannot serve it
        let g = graph(&cat, "SELECT c_name FROM customer");
        let names: Vec<String> = match_views(&cat, &g, 0)
            .into_iter()
            .map(|m| m.view.name.clone())
            .collect();
        assert_eq!(names, vec!["cust_prj".to_string()]);
    }

    #[test]
    fn scan_schema_qualified_by_binding() {
        let cat = setup();
        let g = graph(
            &cat,
            "SELECT c.c_name FROM customer c WHERE c.c_custkey = 5",
        );
        let ms = match_views(&cat, &g, 0);
        let schema = &ms[0].scan.schema;
        assert!(schema.resolve(Some("c"), "c_name").is_ok());
        assert!(
            schema.resolve(Some("c"), "c_custkey").is_ok(),
            "key always carried"
        );
    }

    #[test]
    fn local_index_used_when_present() {
        let cat = setup();
        // register a second view WITH a local index on c_acctbal
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int).with_source(TableId(1)),
            Column::new("c_acctbal", DataType::Float).with_source(TableId(1)),
            Column::new("c_name", DataType::Str).with_source(TableId(1)),
        ])
        .with_qualifier("cust_ix");
        cat.register_view(CachedViewDef {
            id: ViewId(3),
            name: "cust_ix".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "customer".into(),
            columns: vec!["c_custkey".into(), "c_acctbal".into(), "c_name".into()],
            predicate: None,
            schema,
            key_ordinals: vec![0],
            local_indexes: vec![("ix_bal_local".into(), "c_acctbal".into())],
        })
        .unwrap();
        let g = graph(
            &cat,
            "SELECT c_name FROM customer WHERE c_acctbal BETWEEN 1.0 AND 2.0",
        );
        let ms = match_views(&cat, &g, 0);
        let with_ix = ms.iter().find(|m| m.view.name == "cust_ix").unwrap();
        assert!(matches!(
            with_ix.scan.access,
            AccessPath::IndexRange { ref index, .. } if index == "ix_bal_local"
        ));
    }
}
