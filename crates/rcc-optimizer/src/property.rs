//! Required and delivered consistency plan properties (paper Sec. 3.2.2).
//!
//! The *required* property is the normalized [`crate::CCConstraint`]
//! attached to the query root. The *delivered* property is computed
//! bottom-up per physical operator:
//!
//! * **leaves** — a local view scan delivers its base-table operand tagged
//!   with the view's currency region; a remote query delivers its operands
//!   tagged [`RegionTag::Backend`] (the latest snapshot);
//! * **unary operators** (filter, project, aggregate, sort) copy their
//!   input's property;
//! * **joins** union the two child properties, merging groups with the same
//!   region tag ("if they have two tuples with the same region id, the
//!   input sets of the two tuples are merged");
//! * **SwitchUnion** keeps two operands together only if they are together
//!   in *every* child ("we can only guarantee that two input operands are
//!   consistent if they are consistent in all children"); a group whose
//!   children disagree on the source is tagged [`RegionTag::Mixed`].
//!
//! The paper's three rules are implemented verbatim, with one documented
//! refinement: the early-violation rule (2) exempts
//! [`RegionTag::Backend`] groups, because back-end data reflects the
//! latest snapshot and therefore satisfies *any* combination of consistency
//! classes — pruning remote plans would contradict the satisfaction rule
//! under which they are always admissible.

use crate::constraint::{CCConstraint, OperandId};
use rcc_common::RegionId;
use std::collections::BTreeSet;
use std::fmt;

/// Where a group of operands was sourced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionTag {
    /// Fetched from the back-end server: the latest committed snapshot,
    /// mutually consistent with any other back-end fetch in the plan (the
    /// prototype's model of remote data).
    Backend,
    /// Served by a cached view in this currency region.
    Region(RegionId),
    /// A SwitchUnion whose branches source the operands differently; the
    /// operands in the group are mutually consistent, but the group can
    /// never merge with another.
    Mixed,
}

impl RegionTag {
    /// Can two groups with these tags merge into one consistency group?
    pub fn mergeable(self, other: RegionTag) -> bool {
        match (self, other) {
            (RegionTag::Backend, RegionTag::Backend) => true,
            (RegionTag::Region(a), RegionTag::Region(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for RegionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionTag::Backend => f.write_str("backend"),
            RegionTag::Region(r) => write!(f, "{r}"),
            RegionTag::Mixed => f.write_str("mixed"),
        }
    }
}

/// One delivered consistency group: a set of operands guaranteed mutually
/// consistent, with the region they are sourced from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredGroup {
    /// Source tag.
    pub tag: RegionTag,
    /// Mutually consistent operands.
    pub operands: BTreeSet<OperandId>,
}

/// The delivered consistency property of a (partial) plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeliveredProperty {
    /// Consistency groups; operands appear in at most one group in
    /// properties built by this module.
    pub groups: Vec<DeliveredGroup>,
}

impl DeliveredProperty {
    /// Property of a local view scan leaf.
    pub fn local_leaf(region: RegionId, operand: OperandId) -> DeliveredProperty {
        DeliveredProperty {
            groups: vec![DeliveredGroup {
                tag: RegionTag::Region(region),
                operands: [operand].into_iter().collect(),
            }],
        }
    }

    /// Property of a remote-query leaf covering `operands`.
    pub fn remote_leaf(operands: impl IntoIterator<Item = OperandId>) -> DeliveredProperty {
        DeliveredProperty {
            groups: vec![DeliveredGroup {
                tag: RegionTag::Backend,
                operands: operands.into_iter().collect(),
            }],
        }
    }

    /// All operands covered.
    pub fn operands(&self) -> BTreeSet<OperandId> {
        self.groups
            .iter()
            .flat_map(|g| g.operands.iter().copied())
            .collect()
    }

    /// Join rule: union the groups, merging groups with mergeable tags.
    pub fn join(&self, other: &DeliveredProperty) -> DeliveredProperty {
        let mut groups = self.groups.clone();
        for g in &other.groups {
            if let Some(existing) = groups.iter_mut().find(|e| e.tag.mergeable(g.tag)) {
                existing.operands.extend(g.operands.iter().copied());
            } else {
                groups.push(g.clone());
            }
        }
        DeliveredProperty { groups }
    }

    /// SwitchUnion rule: operands stay together only if together in every
    /// child; the tag survives only if every child agrees on it.
    pub fn switch_union(children: &[DeliveredProperty]) -> DeliveredProperty {
        let Some(first) = children.first() else {
            return DeliveredProperty::default();
        };
        let mut groups: Vec<DeliveredGroup> = first.groups.clone();
        for child in &children[1..] {
            let mut refined = Vec::new();
            for g in &groups {
                // split g by the child's grouping
                for cg in &child.groups {
                    let inter: BTreeSet<OperandId> =
                        g.operands.intersection(&cg.operands).copied().collect();
                    if inter.is_empty() {
                        continue;
                    }
                    let tag = if g.tag == cg.tag {
                        g.tag
                    } else {
                        RegionTag::Mixed
                    };
                    refined.push(DeliveredGroup {
                        tag,
                        operands: inter,
                    });
                }
            }
            groups = refined;
        }
        DeliveredProperty { groups }
    }

    /// Conflicting-property rule: "there exist two tuples <Ri, Si> and
    /// <Rj, Sj> such that Si ∩ Sj ≠ ∅ and Ri ≠ Rj" — the same operand
    /// claimed from two different regions.
    pub fn is_conflicting(&self) -> bool {
        for i in 0..self.groups.len() {
            for j in (i + 1)..self.groups.len() {
                if self.groups[i].tag != self.groups[j].tag
                    && !self.groups[i]
                        .operands
                        .is_disjoint(&self.groups[j].operands)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Early violation rule for partial plans: the property is conflicting,
    /// or some *cache-region* group straddles two required consistency
    /// classes (it can then never be teased apart by operators above).
    ///
    /// Backend and Mixed groups are exempt: both deliver consistency that
    /// is *at least* as strong as any combination of classes they span —
    /// back-end data is the latest snapshot, and a Mixed group certifies
    /// mutual consistency across every branch of its SwitchUnion — so
    /// flagging them would prune plans the satisfaction rule accepts
    /// (verified by the `satisfaction_implies_no_violation` property test).
    pub fn violates(&self, required: &CCConstraint) -> bool {
        if self.is_conflicting() {
            return true;
        }
        for g in &self.groups {
            if matches!(g.tag, RegionTag::Backend | RegionTag::Mixed) {
                continue;
            }
            let classes_hit = required
                .classes
                .iter()
                .filter(|c| !c.operands.is_disjoint(&g.operands))
                .count();
            if classes_hit > 1 {
                return true;
            }
        }
        false
    }

    /// Satisfaction rule for complete plans: not conflicting, and every
    /// required class is fully contained in some delivered group.
    pub fn satisfies(&self, required: &CCConstraint) -> bool {
        if self.is_conflicting() {
            return false;
        }
        required.classes.iter().all(|c| {
            self.groups
                .iter()
                .any(|g| c.operands.is_subset(&g.operands))
        })
    }
}

impl fmt::Display for DeliveredProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let ops: Vec<String> = g.operands.iter().map(|o| format!("#{o}")).collect();
            write!(f, "<{}: {}>", g.tag, ops.join(","))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::Duration;

    fn required(classes: &[(&[u32], i64)]) -> CCConstraint {
        CCConstraint::normalize(
            classes
                .iter()
                .map(|(ops, secs)| {
                    (
                        Duration::from_secs(*secs),
                        ops.iter().copied().collect::<BTreeSet<u32>>(),
                        vec![],
                    )
                })
                .collect(),
            classes.iter().flat_map(|(ops, _)| ops.iter().copied()),
        )
    }

    #[test]
    fn join_merges_same_region() {
        let a = DeliveredProperty::local_leaf(RegionId(1), 0);
        let b = DeliveredProperty::local_leaf(RegionId(1), 1);
        let j = a.join(&b);
        assert_eq!(j.groups.len(), 1);
        assert_eq!(j.groups[0].operands.len(), 2);
    }

    #[test]
    fn join_keeps_different_regions_apart() {
        let a = DeliveredProperty::local_leaf(RegionId(1), 0);
        let b = DeliveredProperty::local_leaf(RegionId(2), 1);
        let j = a.join(&b);
        assert_eq!(j.groups.len(), 2);
    }

    #[test]
    fn backend_fetches_merge() {
        let a = DeliveredProperty::remote_leaf([0]);
        let b = DeliveredProperty::remote_leaf([1]);
        let j = a.join(&b);
        assert_eq!(j.groups.len(), 1);
        assert_eq!(j.groups[0].tag, RegionTag::Backend);
    }

    #[test]
    fn switch_union_intersects_children() {
        // local branch: (CR1, {0}); remote branch: (backend, {0})
        let su = DeliveredProperty::switch_union(&[
            DeliveredProperty::local_leaf(RegionId(1), 0),
            DeliveredProperty::remote_leaf([0]),
        ]);
        assert_eq!(su.groups.len(), 1);
        assert_eq!(su.groups[0].tag, RegionTag::Mixed);
        assert_eq!(su.groups[0].operands, [0].into_iter().collect());
    }

    #[test]
    fn switch_union_splits_groups_children_disagree_on() {
        // child 1 groups {0,1} together (same region); child 2 splits them
        let c1 = DeliveredProperty {
            groups: vec![DeliveredGroup {
                tag: RegionTag::Region(RegionId(1)),
                operands: [0, 1].into_iter().collect(),
            }],
        };
        let c2 = DeliveredProperty {
            groups: vec![
                DeliveredGroup {
                    tag: RegionTag::Backend,
                    operands: [0].into_iter().collect(),
                },
                DeliveredGroup {
                    tag: RegionTag::Region(RegionId(2)),
                    operands: [1].into_iter().collect(),
                },
            ],
        };
        let su = DeliveredProperty::switch_union(&[c1, c2]);
        assert_eq!(
            su.groups.len(),
            2,
            "0 and 1 no longer guaranteed consistent"
        );
        assert!(su.groups.iter().all(|g| g.tag == RegionTag::Mixed));
    }

    #[test]
    fn switch_union_preserves_agreeing_tag() {
        let c1 = DeliveredProperty::local_leaf(RegionId(1), 0);
        let c2 = DeliveredProperty::local_leaf(RegionId(1), 0);
        let su = DeliveredProperty::switch_union(&[c1, c2]);
        assert_eq!(su.groups[0].tag, RegionTag::Region(RegionId(1)));
    }

    #[test]
    fn conflict_detection() {
        // the paper's example: two projection views of T in different
        // regions joined — operand 0 claimed by CR1 and CR2
        let p = DeliveredProperty {
            groups: vec![
                DeliveredGroup {
                    tag: RegionTag::Region(RegionId(1)),
                    operands: [0].into_iter().collect(),
                },
                DeliveredGroup {
                    tag: RegionTag::Region(RegionId(2)),
                    operands: [0].into_iter().collect(),
                },
            ],
        };
        assert!(p.is_conflicting());
        assert!(!p.satisfies(&required(&[(&[0], 10)])));
        assert!(p.violates(&required(&[(&[0], 10)])));
    }

    #[test]
    fn satisfaction_requires_class_containment() {
        let req = required(&[(&[0, 1], 10)]);
        // both operands from the same region: satisfied
        let ok = DeliveredProperty::local_leaf(RegionId(1), 0)
            .join(&DeliveredProperty::local_leaf(RegionId(1), 1));
        assert!(ok.satisfies(&req));
        // different regions: Q3's failure mode
        let bad = DeliveredProperty::local_leaf(RegionId(1), 0)
            .join(&DeliveredProperty::local_leaf(RegionId(2), 1));
        assert!(!bad.satisfies(&req));
        // all-remote always satisfies
        let remote = DeliveredProperty::remote_leaf([0, 1]);
        assert!(remote.satisfies(&req));
    }

    #[test]
    fn mixed_singletons_satisfy_singleton_classes() {
        // Q5's shape: two guarded views, classes {0} and {1}
        let req = required(&[(&[0], 10), (&[1], 15)]);
        let su0 = DeliveredProperty::switch_union(&[
            DeliveredProperty::local_leaf(RegionId(1), 0),
            DeliveredProperty::remote_leaf([0]),
        ]);
        let su1 = DeliveredProperty::switch_union(&[
            DeliveredProperty::local_leaf(RegionId(2), 1),
            DeliveredProperty::remote_leaf([1]),
        ]);
        let plan = su0.join(&su1);
        assert!(plan.satisfies(&req));
    }

    #[test]
    fn leaf_level_guards_cannot_satisfy_multi_table_class() {
        // both views in the same region, but independent guards: the
        // branches may disagree at run time, so {0,1} is NOT delivered —
        // exactly why the paper leaves SwitchUnion pull-up as future work.
        let req = required(&[(&[0, 1], 10)]);
        let su0 = DeliveredProperty::switch_union(&[
            DeliveredProperty::local_leaf(RegionId(1), 0),
            DeliveredProperty::remote_leaf([0]),
        ]);
        let su1 = DeliveredProperty::switch_union(&[
            DeliveredProperty::local_leaf(RegionId(1), 1),
            DeliveredProperty::remote_leaf([1]),
        ]);
        assert!(!su0.join(&su1).satisfies(&req));
    }

    #[test]
    fn violation_rule_prunes_cross_class_region_groups() {
        let req = required(&[(&[0], 10), (&[1], 30)]);
        // a single region group spanning both classes: early violation
        let p = DeliveredProperty {
            groups: vec![DeliveredGroup {
                tag: RegionTag::Region(RegionId(1)),
                operands: [0, 1].into_iter().collect(),
            }],
        };
        assert!(p.violates(&req));
        // the Backend exemption: a remote fetch spanning classes is fine
        let remote = DeliveredProperty::remote_leaf([0, 1]);
        assert!(!remote.violates(&req));
        assert!(remote.satisfies(&req));
    }

    #[test]
    fn empty_property_and_constraint() {
        let p = DeliveredProperty::default();
        assert!(!p.is_conflicting());
        assert!(p.satisfies(&CCConstraint::default()));
        assert_eq!(DeliveredProperty::switch_union(&[]), p);
    }

    #[test]
    fn display_formats() {
        let p = DeliveredProperty::local_leaf(RegionId(1), 0);
        assert_eq!(p.to_string(), "{<CR1: #0>}");
    }
}
