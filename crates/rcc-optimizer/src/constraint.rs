//! Normalized currency & consistency constraints (paper Sec. 3.2.1).

use rcc_common::Duration;
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one *input operand*: a particular instance of a base table in
/// the query (the same table referenced twice yields two operands). After
/// binding, every operand references a base table, which is what the
/// normalized-form definition requires.
pub type OperandId = u32;

/// One consistency class of a normalized constraint: a currency bound, the
/// operand set that must be mutually consistent, and optional grouping
/// columns (the `BY` phrase — rows grouped on these columns must come from
/// one snapshot, different groups may differ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CCClass {
    /// Maximum acceptable staleness for the operands in this class.
    pub bound: Duration,
    /// Operands that must originate from the same database snapshot.
    pub operands: BTreeSet<OperandId>,
    /// Grouping columns (empty ⇒ whole-table consistency, the strictest
    /// granularity and the one the runtime enforces; finer granularity is
    /// recorded for the semantic checker).
    pub by: Vec<(String, String)>,
}

impl fmt::Display for CCClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops: Vec<String> = self.operands.iter().map(|o| format!("#{o}")).collect();
        write!(f, "{} ON ({})", self.bound, ops.join(", "))?;
        if !self.by.is_empty() {
            let cols: Vec<String> = self.by.iter().map(|(q, c)| format!("{q}.{c}")).collect();
            write!(f, " BY {}", cols.join(", "))?;
        }
        Ok(())
    }
}

/// A normalized C&C constraint: disjoint consistency classes covering every
/// operand of the query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CCConstraint {
    /// The disjoint classes.
    pub classes: Vec<CCClass>,
}

impl CCConstraint {
    /// The paper's default for queries without a currency clause: "the
    /// tightest requirements, namely, that the input operands must be
    /// mutually consistent and from the latest snapshots" — bound zero, one
    /// class containing every operand. Queries without a clause thus retain
    /// their traditional semantics (computed at the back-end).
    pub fn tight_default(operands: impl IntoIterator<Item = OperandId>) -> CCConstraint {
        let set: BTreeSet<OperandId> = operands.into_iter().collect();
        if set.is_empty() {
            return CCConstraint::default();
        }
        CCConstraint {
            classes: vec![CCClass {
                bound: Duration::ZERO,
                operands: set,
                by: vec![],
            }],
        }
    }

    /// Normalize a union of raw (bound, operand-set, by) tuples collected
    /// from every block of the query:
    ///
    /// 1. operands not covered by any tuple get tight singleton classes
    ///    (bound 0), preserving traditional semantics for unmentioned
    ///    inputs;
    /// 2. tuples with overlapping operand sets are merged repeatedly, the
    ///    merged bound being the min of the two ("if two different tuples
    ///    have any input operands in common, they must all be from the same
    ///    snapshot, and the snapshot must satisfy the tighter of the two
    ///    bounds");
    /// 3. merging continues until all classes are disjoint.
    ///
    /// Grouping columns survive a merge only when both sides agree —
    /// otherwise the merged class falls back to whole-table granularity
    /// (the strictest interpretation, hence always safe).
    #[allow(clippy::type_complexity)]
    pub fn normalize(
        raw: Vec<(Duration, BTreeSet<OperandId>, Vec<(String, String)>)>,
        all_operands: impl IntoIterator<Item = OperandId>,
    ) -> CCConstraint {
        let mut classes: Vec<CCClass> = raw
            .into_iter()
            .filter(|(_, ops, _)| !ops.is_empty())
            .map(|(bound, operands, by)| CCClass {
                bound,
                operands,
                by,
            })
            .collect();

        // Step 1: uncovered operands get tight singletons.
        let covered: BTreeSet<OperandId> = classes
            .iter()
            .flat_map(|c| c.operands.iter().copied())
            .collect();
        for op in all_operands {
            if !covered.contains(&op) {
                classes.push(CCClass {
                    bound: Duration::ZERO,
                    operands: [op].into_iter().collect(),
                    by: vec![],
                });
            }
        }

        // Steps 2-3: merge until disjoint (fixpoint).
        loop {
            let mut merged_any = false;
            'outer: for i in 0..classes.len() {
                for j in (i + 1)..classes.len() {
                    if !classes[i].operands.is_disjoint(&classes[j].operands) {
                        let b = classes.swap_remove(j);
                        let a = &mut classes[i];
                        a.bound = a.bound.min(b.bound);
                        a.operands.extend(b.operands);
                        if a.by != b.by {
                            a.by.clear();
                        }
                        merged_any = true;
                        break 'outer;
                    }
                }
            }
            if !merged_any {
                break;
            }
        }
        classes.sort_by(|a, b| a.operands.iter().next().cmp(&b.operands.iter().next()));
        CCConstraint { classes }
    }

    /// The class containing `operand`, if any.
    pub fn class_of(&self, operand: OperandId) -> Option<&CCClass> {
        self.classes.iter().find(|c| c.operands.contains(&operand))
    }

    /// The currency bound applicable to `operand` (zero — the tight default
    /// — if the operand appears in no class, which normalization prevents
    /// for bound graphs).
    pub fn bound_of(&self, operand: OperandId) -> Duration {
        self.class_of(operand)
            .map(|c| c.bound)
            .unwrap_or(Duration::ZERO)
    }

    /// Is the constraint the trivial "everything current" default?
    pub fn is_tight_default(&self) -> bool {
        self.classes.len() <= 1
            && self
                .classes
                .iter()
                .all(|c| c.bound.is_zero() && c.by.is_empty())
    }

    /// All operands mentioned by the constraint.
    pub fn operands(&self) -> BTreeSet<OperandId> {
        self.classes
            .iter()
            .flat_map(|c| c.operands.iter().copied())
            .collect()
    }
}

impl fmt::Display for CCConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.classes.is_empty() {
            return f.write_str("(unconstrained)");
        }
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<OperandId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn tight_default_single_class_zero_bound() {
        let c = CCConstraint::tight_default([0, 1, 2]);
        assert_eq!(c.classes.len(), 1);
        assert_eq!(c.classes[0].bound, Duration::ZERO);
        assert_eq!(c.classes[0].operands, set(&[0, 1, 2]));
        assert!(c.is_tight_default());
    }

    #[test]
    fn disjoint_classes_unchanged() {
        let c = CCConstraint::normalize(
            vec![
                (Duration::from_mins(10), set(&[0]), vec![]),
                (Duration::from_mins(30), set(&[1]), vec![]),
            ],
            [0, 1],
        );
        assert_eq!(c.classes.len(), 2);
        assert_eq!(c.bound_of(0), Duration::from_mins(10));
        assert_eq!(c.bound_of(1), Duration::from_mins(30));
        assert!(!c.is_tight_default());
    }

    #[test]
    fn overlapping_classes_merge_with_min_bound() {
        // paper Q2 example: outer says 5min(S,T) where T expands to {B,R};
        // inner says 10min(B,R). Result: one class {S,B,R} bound 5min.
        let c = CCConstraint::normalize(
            vec![
                (Duration::from_mins(5), set(&[2, 0, 1]), vec![]),
                (Duration::from_mins(10), set(&[0, 1]), vec![]),
            ],
            [0, 1, 2],
        );
        assert_eq!(c.classes.len(), 1);
        assert_eq!(c.classes[0].bound, Duration::from_mins(5));
        assert_eq!(c.classes[0].operands, set(&[0, 1, 2]));
    }

    #[test]
    fn transitive_merging() {
        // {0,1} ∩ {1,2} ∩ {2,3} chains into one class
        let c = CCConstraint::normalize(
            vec![
                (Duration::from_mins(10), set(&[0, 1]), vec![]),
                (Duration::from_mins(20), set(&[1, 2]), vec![]),
                (Duration::from_mins(30), set(&[2, 3]), vec![]),
            ],
            [0, 1, 2, 3],
        );
        assert_eq!(c.classes.len(), 1);
        assert_eq!(c.classes[0].bound, Duration::from_mins(10));
        assert_eq!(c.classes[0].operands, set(&[0, 1, 2, 3]));
    }

    #[test]
    fn uncovered_operands_get_tight_singletons() {
        let c = CCConstraint::normalize(vec![(Duration::from_mins(10), set(&[0]), vec![])], [0, 1]);
        assert_eq!(c.classes.len(), 2);
        assert_eq!(c.bound_of(1), Duration::ZERO);
        assert_eq!(c.class_of(1).unwrap().operands, set(&[1]));
    }

    #[test]
    fn merge_order_independent() {
        let raw = |perm: Vec<usize>| {
            let tuples = [
                (Duration::from_mins(10), set(&[0, 1]), vec![]),
                (Duration::from_mins(5), set(&[1, 2]), vec![]),
                (Duration::from_mins(30), set(&[3]), vec![]),
            ];
            let permuted: Vec<_> = perm.into_iter().map(|i| tuples[i].clone()).collect();
            CCConstraint::normalize(permuted, [0, 1, 2, 3])
        };
        let a = raw(vec![0, 1, 2]);
        let b = raw(vec![2, 1, 0]);
        let c = raw(vec![1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.classes.len(), 2);
        assert_eq!(a.bound_of(0), Duration::from_mins(5));
    }

    #[test]
    fn by_columns_survive_only_when_agreeing() {
        let by = vec![("b".to_string(), "isbn".to_string())];
        // agreeing merge keeps the grouping
        let c = CCConstraint::normalize(
            vec![
                (Duration::from_mins(10), set(&[0, 1]), by.clone()),
                (Duration::from_mins(5), set(&[1]), by.clone()),
            ],
            [0, 1],
        );
        assert_eq!(c.classes[0].by, by);
        // disagreeing merge drops to whole-table granularity
        let c = CCConstraint::normalize(
            vec![
                (Duration::from_mins(10), set(&[0, 1]), by.clone()),
                (Duration::from_mins(5), set(&[1]), vec![]),
            ],
            [0, 1],
        );
        assert!(c.classes[0].by.is_empty());
    }

    #[test]
    fn classes_are_disjoint_after_normalize() {
        let c = CCConstraint::normalize(
            vec![
                (Duration::from_mins(1), set(&[0, 1]), vec![]),
                (Duration::from_mins(2), set(&[2, 3]), vec![]),
                (Duration::from_mins(3), set(&[1, 2]), vec![]),
                (Duration::from_mins(4), set(&[5]), vec![]),
            ],
            [0, 1, 2, 3, 4, 5],
        );
        let mut seen = BTreeSet::new();
        for class in &c.classes {
            for op in &class.operands {
                assert!(seen.insert(*op), "operand {op} appears twice");
            }
        }
        assert_eq!(seen, set(&[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn display_formats() {
        let c = CCConstraint::normalize(
            vec![(
                Duration::from_mins(10),
                set(&[0, 1]),
                vec![("b".into(), "isbn".into())],
            )],
            [0, 1],
        );
        let s = c.to_string();
        assert!(s.contains("10min"));
        assert!(s.contains("BY b.isbn"));
        assert_eq!(CCConstraint::default().to_string(), "(unconstrained)");
    }

    #[test]
    fn empty_inputs() {
        let c = CCConstraint::tight_default([]);
        assert!(c.classes.is_empty());
        let c = CCConstraint::normalize(vec![], []);
        assert!(c.classes.is_empty());
    }
}
