//! Binding: from a parsed SELECT to a query graph.
//!
//! The binder resolves names against the catalog and flattens the query
//! into a [`QueryGraph`] — the internal form the optimizer enumerates over:
//!
//! * every base-table reference becomes an [`Operand`] with a unique
//!   binding qualifier;
//! * FROM-clause subqueries (SPJ only) are **inlined**: their operands and
//!   predicates merge into the parent graph and their output columns become
//!   a substitution map, mirroring view expansion in the paper's
//!   normalization step;
//! * `EXISTS` / `IN (SELECT ...)` predicates are **decorrelated** into
//!   semi/anti-join edges;
//! * WHERE/ON conjuncts are classified into per-operand filters, equi-join
//!   edges, and residual predicates;
//! * currency clauses from *every* block are resolved to operand sets
//!   (derived-table names expand to the operands beneath them — Sec. 2.2)
//!   and normalized into a [`CCConstraint`].

use crate::constraint::{CCConstraint, OperandId};
use crate::expr::{AggCall, AggFunc, BoundExpr};
use rcc_catalog::{Catalog, TableMeta};
use rcc_common::{Column, Duration, Error, Result, Schema, Value};
use rcc_sql::{BinaryOp, Expr, SelectItem, SelectStmt, TableRef};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// One base-table instance in the query.
#[derive(Debug, Clone)]
pub struct Operand {
    /// Operand id (index into `QueryGraph::operands`).
    pub id: OperandId,
    /// Base-table metadata.
    pub table: Arc<TableMeta>,
    /// Unique binding qualifier for this operand's columns.
    pub binding: String,
    /// Single-operand filter conjuncts.
    pub filters: Vec<BoundExpr>,
    /// True when the operand exists only to support a semi/anti join
    /// (came from EXISTS / IN) — its columns never reach the output.
    pub existential: bool,
}

impl Operand {
    /// Schema of this operand, qualified by its binding.
    pub fn schema(&self) -> Schema {
        let cols: Vec<Column> = self
            .table
            .schema
            .columns()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.qualifier = Some(self.binding.clone());
                c.source = Some(self.table.id);
                c
            })
            .collect();
        Schema::new(cols)
    }
}

/// Join edge kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Plain inner equi join.
    Inner,
    /// Left semi join (EXISTS / IN).
    Semi,
    /// Left anti join (NOT EXISTS / NOT IN).
    Anti,
}

/// An equi-join edge between two operands.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// Left (outer/probe) operand.
    pub left: OperandId,
    /// Right operand (the existential side for semi/anti).
    pub right: OperandId,
    /// Equi-join column on the left operand.
    pub left_col: String,
    /// Equi-join column on the right operand.
    pub right_col: String,
    /// Edge kind.
    pub kind: JoinKind,
}

/// Aggregation portion of the query.
#[derive(Debug, Clone, Default)]
pub struct AggregateSpec {
    /// GROUP BY expressions with output names.
    pub group_by: Vec<(BoundExpr, String)>,
    /// Aggregate calls.
    pub aggs: Vec<AggCall>,
    /// HAVING predicate over the aggregate output schema (qualifier-free
    /// column references by output name).
    pub having: Option<BoundExpr>,
}

/// The bound query: what the optimizer works on.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    /// Base-table operands.
    pub operands: Vec<Operand>,
    /// Equi-join (and semi/anti) edges.
    pub edges: Vec<JoinEdge>,
    /// Cross-operand predicates that are not simple equi joins; evaluated
    /// once every referenced operand has been joined.
    pub residuals: Vec<BoundExpr>,
    /// Output expressions with names (empty for pure-aggregate queries).
    pub projections: Vec<(BoundExpr, String)>,
    /// Aggregation, if any.
    pub aggregate: Option<AggregateSpec>,
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// ORDER BY over the output schema: (output ordinal, ascending).
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// Normalized C&C constraint over the operands.
    pub constraint: CCConstraint,
}

impl QueryGraph {
    /// The operand with the given id.
    pub fn operand(&self, id: OperandId) -> &Operand {
        &self.operands[id as usize]
    }

    /// Columns of `operand` referenced anywhere in the query (filters,
    /// edges, residuals, projections, aggregates) — the column set a
    /// matching view must cover.
    pub fn required_columns(&self, id: OperandId) -> BTreeSet<String> {
        let binding = &self.operands[id as usize].binding;
        let mut cols = BTreeSet::new();
        let mut scan = |e: &BoundExpr| {
            e.visit(&mut |x| {
                if let BoundExpr::Column { qualifier, name } = x {
                    if qualifier == binding {
                        cols.insert(name.clone());
                    }
                }
            });
        };
        for op in &self.operands {
            for f in &op.filters {
                scan(f);
            }
        }
        for r in &self.residuals {
            scan(r);
        }
        for (e, _) in &self.projections {
            scan(e);
        }
        if let Some(agg) = &self.aggregate {
            for (e, _) in &agg.group_by {
                scan(e);
            }
            for a in &agg.aggs {
                if let Some(e) = &a.arg {
                    scan(e);
                }
            }
        }
        for edge in &self.edges {
            if edge.left == id {
                cols.insert(edge.left_col.clone());
            }
            if edge.right == id {
                cols.insert(edge.right_col.clone());
            }
        }
        // always keep the clustered key: replication/apply and row identity
        // depend on it, and views must retain it anyway
        for k in &self.operands[id as usize].table.key {
            cols.insert(k.clone());
        }
        cols
    }

    /// Output schema of the query (after projection/aggregation).
    pub fn output_schema(&self) -> Schema {
        use rcc_common::DataType;
        if let Some(agg) = &self.aggregate {
            let mut cols = Vec::new();
            for (_, name) in &agg.group_by {
                cols.push(Column::new(name.clone(), DataType::Int)); // type refined at exec
            }
            for a in &agg.aggs {
                cols.push(Column::new(a.output_name.clone(), DataType::Float));
            }
            Schema::new(cols)
        } else {
            Schema::new(
                self.projections
                    .iter()
                    .map(|(_, name)| Column::new(name.clone(), DataType::Int))
                    .collect(),
            )
        }
    }

    /// Join schema: concatenation of all non-existential operand schemas in
    /// operand order (the widest row the executor materializes before
    /// projection).
    pub fn join_schema(&self) -> Schema {
        let mut cols = Vec::new();
        for op in &self.operands {
            if !op.existential {
                cols.extend_from_slice(op.schema().columns());
            }
        }
        Schema::new(cols)
    }
}

// ------------------------------------------------------------------ binder

/// What a FROM-clause name is bound to.
#[derive(Debug, Clone)]
enum Binding {
    /// A base-table operand.
    Operand { id: OperandId },
    /// An inlined derived table: output column name → substitution
    /// expression, plus the operands it covers (for currency resolution).
    Derived {
        columns: Vec<(String, BoundExpr)>,
        covers: BTreeSet<OperandId>,
    },
}

#[derive(Debug, Default)]
struct ScopeFrame {
    /// block-local name → binding
    names: Vec<(String, Binding)>,
}

struct Binder<'a> {
    catalog: &'a Catalog,
    params: &'a HashMap<String, Value>,
    operands: Vec<Operand>,
    edges: Vec<JoinEdge>,
    residuals: Vec<BoundExpr>,
    /// raw currency specs resolved to operand sets
    #[allow(clippy::type_complexity)]
    specs: Vec<(Duration, BTreeSet<OperandId>, Vec<(String, String)>)>,
    /// any block carried a currency clause
    saw_clause: bool,
    scopes: Vec<ScopeFrame>,
    used_bindings: BTreeSet<String>,
}

/// Bind `stmt` against `catalog`, substituting `params` for `$name`
/// parameters. Returns the query graph ready for optimization.
pub fn bind_select(
    catalog: &Catalog,
    stmt: &SelectStmt,
    params: &HashMap<String, Value>,
) -> Result<QueryGraph> {
    let mut binder = Binder {
        catalog,
        params,
        operands: Vec::new(),
        edges: Vec::new(),
        residuals: Vec::new(),
        specs: Vec::new(),
        saw_clause: false,
        scopes: Vec::new(),
        used_bindings: BTreeSet::new(),
    };
    binder.bind_top(stmt)
}

impl<'a> Binder<'a> {
    fn bind_top(&mut self, stmt: &SelectStmt) -> Result<QueryGraph> {
        self.scopes.push(ScopeFrame::default());
        self.bind_from(&stmt.from)?;
        if let Some(filter) = &stmt.filter {
            self.classify_predicate(filter)?;
        }
        if let Some(clause) = &stmt.currency {
            self.resolve_currency(clause)?;
        }

        // ---- projections & aggregation
        let mut projections: Vec<(BoundExpr, String)> = Vec::new();
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut group_by: Vec<(BoundExpr, String)> = Vec::new();
        let has_aggregation = !stmt.group_by.is_empty()
            || stmt.projections.iter().any(|p| match p {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            });

        for g in &stmt.group_by {
            let bound = self.bind_expr(g)?;
            let name = default_name(&bound, group_by.len());
            group_by.push((bound, name));
        }

        let mut unnamed = 0usize;
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard => {
                    if has_aggregation {
                        return Err(Error::analysis("SELECT * with aggregation"));
                    }
                    let frame = self
                        .scopes
                        .last()
                        .expect("binder scope stack is never empty");
                    let names: Vec<(String, Binding)> = frame.names.clone();
                    for (_, binding) in names {
                        self.expand_binding(&binding, &mut projections)?;
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    if has_aggregation {
                        return Err(Error::analysis("SELECT t.* with aggregation"));
                    }
                    let binding = self
                        .lookup_binding(q)
                        .ok_or_else(|| Error::Analysis(format!("unknown table alias {q}")))?;
                    self.expand_binding(&binding, &mut projections)?;
                }
                SelectItem::Expr { expr, alias } => {
                    if has_aggregation {
                        self.bind_agg_projection(expr, alias.as_deref(), &group_by, &mut aggs)?;
                    } else {
                        let bound = self.bind_expr(expr)?;
                        let name = alias.clone().unwrap_or_else(|| {
                            let n = default_name(&bound, unnamed);
                            unnamed += 1;
                            n
                        });
                        projections.push((bound, name));
                    }
                }
            }
        }

        let aggregate = if has_aggregation {
            let having = match &stmt.having {
                Some(h) => Some(self.bind_having(h, &group_by, &mut aggs)?),
                None => None,
            };
            Some(AggregateSpec {
                group_by,
                aggs,
                having,
            })
        } else {
            if stmt.having.is_some() {
                return Err(Error::analysis("HAVING without aggregation"));
            }
            None
        };

        // ---- ORDER BY: resolve against output names
        let output_names: Vec<String> = match &aggregate {
            Some(agg) => agg
                .group_by
                .iter()
                .map(|(_, n)| n.clone())
                .chain(agg.aggs.iter().map(|a| a.output_name.clone()))
                .collect(),
            None => projections.iter().map(|(_, n)| n.clone()).collect(),
        };
        let mut order_by = Vec::new();
        for (e, asc) in &stmt.order_by {
            let ordinal = match e {
                Expr::Column {
                    qualifier: None,
                    name,
                } => output_names
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(name)),
                Expr::Literal(Value::Int(i)) if *i >= 1 => Some((*i - 1) as usize),
                _ => None,
            };
            let ordinal = match ordinal {
                Some(o) if o < output_names.len() => o,
                _ => {
                    // fall back: bind as expression and match a projection
                    let bound = self.bind_expr(e)?;
                    projections
                        .iter()
                        .position(|(pe, _)| pe == &bound)
                        .ok_or_else(|| {
                            Error::analysis("ORDER BY expression must appear in the SELECT list")
                        })?
                }
            };
            order_by.push((ordinal, *asc));
        }

        self.scopes.pop();

        // ---- transitive predicate derivation: a range filter on one side
        // of an equi-join edge implies the same range on the other side
        // (`c.k <= 5 AND c.k = o.k` ⇒ `o.k <= 5`). This narrows remote
        // fetches and guarded fallbacks of join inners.
        self.derive_transitive_filters();

        // ---- constraint
        let all: Vec<OperandId> = (0..self.operands.len() as u32).collect();
        let constraint = if self.saw_clause {
            CCConstraint::normalize(std::mem::take(&mut self.specs), all)
        } else {
            CCConstraint::tight_default(all)
        };

        Ok(QueryGraph {
            operands: std::mem::take(&mut self.operands),
            edges: std::mem::take(&mut self.edges),
            residuals: std::mem::take(&mut self.residuals),
            projections,
            aggregate,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
            constraint,
        })
    }

    fn expand_binding(
        &self,
        binding: &Binding,
        projections: &mut Vec<(BoundExpr, String)>,
    ) -> Result<()> {
        match binding {
            Binding::Operand { id } => {
                let op = &self.operands[*id as usize];
                for c in op.table.schema.columns() {
                    projections.push((BoundExpr::col(&op.binding, &c.name), c.name.clone()));
                }
            }
            Binding::Derived { columns, .. } => {
                for (name, expr) in columns {
                    projections.push((expr.clone(), name.clone()));
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- FROM

    fn bind_from(&mut self, from: &[TableRef]) -> Result<()> {
        for item in from {
            self.bind_table_ref(item)?;
        }
        Ok(())
    }

    fn bind_table_ref(&mut self, item: &TableRef) -> Result<()> {
        match item {
            TableRef::Named { name, alias } => {
                let meta = self
                    .catalog
                    .table(name)
                    .map_err(|_| Error::Analysis(format!("unknown table '{name}'")))?;
                let local = alias.clone().unwrap_or_else(|| name.to_ascii_lowercase());
                let binding = self.fresh_binding(&local);
                let id = self.operands.len() as OperandId;
                self.operands.push(Operand {
                    id,
                    table: meta,
                    binding,
                    filters: Vec::new(),
                    existential: false,
                });
                self.declare(&local, Binding::Operand { id })?;
            }
            TableRef::Subquery { query, alias } => {
                let derived = self.bind_derived(query)?;
                self.declare(alias, derived)?;
            }
            TableRef::Join { left, right, on } => {
                self.bind_table_ref(left)?;
                self.bind_table_ref(right)?;
                self.classify_predicate(on)?;
            }
        }
        Ok(())
    }

    /// Inline an SPJ derived table.
    fn bind_derived(&mut self, query: &SelectStmt) -> Result<Binding> {
        if query.distinct
            || !query.group_by.is_empty()
            || query.having.is_some()
            || !query.order_by.is_empty()
            || query.limit.is_some()
        {
            return Err(Error::analysis(
                "derived tables are limited to select-project-join blocks",
            ));
        }
        let before = self.operands.len() as OperandId;
        self.scopes.push(ScopeFrame::default());
        self.bind_from(&query.from)?;
        if let Some(filter) = &query.filter {
            self.classify_predicate(filter)?;
        }
        if let Some(clause) = &query.currency {
            self.resolve_currency(clause)?;
        }
        // output columns
        let mut columns = Vec::new();
        let mut unnamed = 0usize;
        for item in &query.projections {
            match item {
                SelectItem::Wildcard => {
                    let frame = self
                        .scopes
                        .last()
                        .expect("binder scope stack is never empty");
                    let names: Vec<(String, Binding)> = frame.names.clone();
                    let mut proj = Vec::new();
                    for (_, b) in names {
                        self.expand_binding(&b, &mut proj)?;
                    }
                    columns.extend(proj);
                }
                SelectItem::QualifiedWildcard(q) => {
                    let b = self
                        .lookup_binding(q)
                        .ok_or_else(|| Error::Analysis(format!("unknown table alias {q}")))?;
                    let mut proj = Vec::new();
                    self.expand_binding(&b, &mut proj)?;
                    columns.extend(proj);
                }
                SelectItem::Expr { expr, alias } => {
                    if expr.contains_aggregate() {
                        return Err(Error::analysis(
                            "derived tables are limited to select-project-join blocks",
                        ));
                    }
                    let bound = self.bind_expr(expr)?;
                    let name = alias.clone().unwrap_or_else(|| {
                        let n = default_name(&bound, unnamed);
                        unnamed += 1;
                        n
                    });
                    columns.push((bound, name));
                }
            }
        }
        self.scopes.pop();
        let covers: BTreeSet<OperandId> = (before..self.operands.len() as OperandId).collect();
        Ok(Binding::Derived {
            columns: columns.into_iter().map(|(e, n)| (n, e)).collect(),
            covers,
        })
    }

    fn fresh_binding(&mut self, base: &str) -> String {
        let mut candidate = base.to_string();
        let mut i = 1;
        while !self.used_bindings.insert(candidate.clone()) {
            i += 1;
            candidate = format!("{base}_{i}");
        }
        candidate
    }

    fn declare(&mut self, name: &str, binding: Binding) -> Result<()> {
        let frame = self.scopes.last_mut().expect("scope underflow");
        if frame
            .names
            .iter()
            .any(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            return Err(Error::Analysis(format!(
                "duplicate table alias '{name}' in FROM"
            )));
        }
        frame.names.push((name.to_ascii_lowercase(), binding));
        Ok(())
    }

    fn lookup_binding(&self, name: &str) -> Option<Binding> {
        for frame in self.scopes.iter().rev() {
            if let Some((_, b)) = frame
                .names
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
            {
                return Some(b.clone());
            }
        }
        None
    }

    // ------------------------------------------------------- predicates

    /// Walk an AND-tree, classifying each conjunct.
    fn classify_predicate(&mut self, expr: &Expr) -> Result<()> {
        match expr {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                self.classify_predicate(left)?;
                self.classify_predicate(right)?;
            }
            Expr::Exists { subquery, negated } => {
                self.bind_existential(subquery, *negated)?;
            }
            // the parser nests `NOT EXISTS` as Unary(Not, Exists)
            Expr::Unary {
                op: rcc_sql::UnaryOp::Not,
                expr,
            } if matches!(expr.as_ref(), Expr::Exists { .. } | Expr::InSubquery { .. }) => {
                match expr.as_ref() {
                    Expr::Exists { subquery, negated } => {
                        self.bind_existential(subquery, !negated)?;
                    }
                    Expr::InSubquery {
                        expr: probe,
                        subquery,
                        negated,
                    } => {
                        self.bind_in_subquery(probe, subquery, !negated)?;
                    }
                    _ => unreachable!(),
                }
            }
            Expr::InSubquery {
                expr: probe,
                subquery,
                negated,
            } => {
                self.bind_in_subquery(probe, subquery, *negated)?;
            }
            other => {
                let bound = self.bind_expr(other)?;
                self.place_conjunct(bound)?;
            }
        }
        Ok(())
    }

    /// Route a bound conjunct to the right bucket.
    fn place_conjunct(&mut self, bound: BoundExpr) -> Result<()> {
        let quals = bound.referenced_qualifiers();
        let ids: Vec<OperandId> = self
            .operands
            .iter()
            .filter(|o| quals.contains(&o.binding))
            .map(|o| o.id)
            .collect();
        match ids.len() {
            0 | 1 if ids.len() == 1 => {
                self.operands[ids[0] as usize].filters.push(bound);
            }
            0 => self.residuals.push(bound),
            2 => {
                // equi-join shape?
                if let BoundExpr::Binary {
                    left,
                    op: BinaryOp::Eq,
                    right,
                } = &bound
                {
                    if let (
                        BoundExpr::Column {
                            qualifier: ql,
                            name: nl,
                        },
                        BoundExpr::Column {
                            qualifier: qr,
                            name: nr,
                        },
                    ) = (left.as_ref(), right.as_ref())
                    {
                        if ql != qr {
                            let (l, r) = (self.operand_by_binding(ql), self.operand_by_binding(qr));
                            if let (Some(l), Some(r)) = (l, r) {
                                let (left_id, right_id, lc, rc) = (l, r, nl.clone(), nr.clone());
                                self.edges.push(JoinEdge {
                                    left: left_id,
                                    right: right_id,
                                    left_col: lc,
                                    right_col: rc,
                                    kind: JoinKind::Inner,
                                });
                                return Ok(());
                            }
                        }
                    }
                }
                self.residuals.push(bound);
            }
            _ => self.residuals.push(bound),
        }
        Ok(())
    }

    fn operand_by_binding(&self, binding: &str) -> Option<OperandId> {
        self.operands
            .iter()
            .find(|o| o.binding == binding)
            .map(|o| o.id)
    }

    /// Decorrelate an EXISTS subquery into semi/anti-join edges. The
    /// subquery's FROM operands are marked existential; its predicates are
    /// classified in the combined scope, and at least one resulting edge
    /// must link an existential operand to the outer query (otherwise the
    /// EXISTS is uncorrelated, which we reject as unsupported).
    fn bind_existential(&mut self, subquery: &SelectStmt, negated: bool) -> Result<()> {
        if subquery.distinct
            || !subquery.group_by.is_empty()
            || subquery.having.is_some()
            || !subquery.order_by.is_empty()
        {
            return Err(Error::analysis(
                "EXISTS subqueries are limited to SPJ blocks",
            ));
        }
        let before = self.operands.len();
        self.scopes.push(ScopeFrame::default());
        self.bind_from(&subquery.from)?;
        for op in &mut self.operands[before..] {
            op.existential = true;
        }
        if let Some(filter) = &subquery.filter {
            self.classify_predicate(filter)?;
        }
        if let Some(clause) = &subquery.currency {
            self.resolve_currency(clause)?;
        }
        self.scopes.pop();

        // edges created between an inner (existential) operand and an outer
        // operand carry the semi/anti kind, with the existential side on
        // the right.
        let inner: BTreeSet<OperandId> =
            (before as OperandId..self.operands.len() as OperandId).collect();
        let mut linked = false;
        for edge in &mut self.edges {
            let li = inner.contains(&edge.left);
            let ri = inner.contains(&edge.right);
            if li != ri {
                if li {
                    std::mem::swap(&mut edge.left, &mut edge.right);
                    std::mem::swap(&mut edge.left_col, &mut edge.right_col);
                }
                if edge.kind == JoinKind::Inner {
                    edge.kind = if negated {
                        JoinKind::Anti
                    } else {
                        JoinKind::Semi
                    };
                    linked = true;
                }
            }
        }
        if !linked {
            return Err(Error::analysis(
                "EXISTS subquery must be correlated through an equality predicate",
            ));
        }
        Ok(())
    }

    fn bind_in_subquery(
        &mut self,
        probe: &Expr,
        subquery: &SelectStmt,
        negated: bool,
    ) -> Result<()> {
        // `e IN (SELECT x FROM ...)` ≡ EXISTS (SELECT * FROM ... WHERE x = e)
        let inner_col = match subquery.projections.as_slice() {
            [SelectItem::Expr { expr, .. }] => expr.clone(),
            _ => {
                return Err(Error::analysis(
                    "IN subquery must project exactly one column",
                ))
            }
        };
        let mut rewritten = subquery.clone();
        rewritten.projections = vec![SelectItem::Wildcard];
        let eq = Expr::binary(inner_col, BinaryOp::Eq, probe.clone());
        rewritten.filter = Expr::and_opt(rewritten.filter.take(), Some(eq));
        self.bind_existential(&rewritten, negated)
    }

    // ----------------------------------------------------- expressions

    fn bind_expr(&mut self, expr: &Expr) -> Result<BoundExpr> {
        match expr {
            Expr::Column { qualifier, name } => self.resolve_column(qualifier.as_deref(), name),
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Parameter(p) => self
                .params
                .get(p)
                .cloned()
                .map(BoundExpr::Literal)
                .ok_or_else(|| Error::Analysis(format!("unbound parameter ${p}"))),
            Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
                left: Box::new(self.bind_expr(left)?),
                op: *op,
                right: Box::new(self.bind_expr(right)?),
            }),
            Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.bind_expr(expr)?),
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(BoundExpr::Between {
                expr: Box::new(self.bind_expr(expr)?),
                low: Box::new(self.bind_expr(low)?),
                high: Box::new(self.bind_expr(high)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr)?),
                list: list
                    .iter()
                    .map(|e| self.bind_expr(e))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr)?),
                negated: *negated,
            }),
            Expr::Function { name, args, .. } => {
                if name.eq_ignore_ascii_case("getdate") && args.is_empty() {
                    Ok(BoundExpr::GetDate)
                } else if AggFunc::from_name(name).is_some() {
                    Err(Error::analysis(format!(
                        "aggregate {name}() not allowed in this context"
                    )))
                } else {
                    Err(Error::Analysis(format!("unknown function {name}()")))
                }
            }
            Expr::Exists { .. } | Expr::InSubquery { .. } => Err(Error::analysis(
                "subquery predicates are only supported at the top level of WHERE conjuncts",
            )),
        }
    }

    fn resolve_column(&mut self, qualifier: Option<&str>, name: &str) -> Result<BoundExpr> {
        match qualifier {
            Some(q) => {
                let binding = self
                    .lookup_binding(q)
                    .ok_or_else(|| Error::Analysis(format!("unknown table alias '{q}'")))?;
                match binding {
                    Binding::Operand { id } => {
                        let op = &self.operands[id as usize];
                        op.table
                            .schema
                            .resolve(None, name)
                            .map_err(|_| Error::Analysis(format!("unknown column '{q}.{name}'")))?;
                        Ok(BoundExpr::col(&op.binding, name))
                    }
                    Binding::Derived { columns, .. } => columns
                        .iter()
                        .find(|(n, _)| n.eq_ignore_ascii_case(name))
                        .map(|(_, e)| e.clone())
                        .ok_or_else(|| Error::Analysis(format!("unknown column '{q}.{name}'"))),
                }
            }
            None => {
                // search every binding, innermost scope first; ambiguity
                // within the same scope level is an error
                for frame in self.scopes.iter().rev() {
                    let mut hit: Option<BoundExpr> = None;
                    for (_, binding) in &frame.names {
                        let candidate = match binding {
                            Binding::Operand { id } => {
                                let op = &self.operands[*id as usize];
                                op.table
                                    .schema
                                    .resolve(None, name)
                                    .ok()
                                    .map(|_| BoundExpr::col(&op.binding, name))
                            }
                            Binding::Derived { columns, .. } => columns
                                .iter()
                                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                                .map(|(_, e)| e.clone()),
                        };
                        if let Some(c) = candidate {
                            if hit.is_some() {
                                return Err(Error::Analysis(format!(
                                    "ambiguous column reference '{name}'"
                                )));
                            }
                            hit = Some(c);
                        }
                    }
                    if let Some(h) = hit {
                        return Ok(h);
                    }
                }
                Err(Error::Analysis(format!("unknown column '{name}'")))
            }
        }
    }

    // ------------------------------------------------------ aggregation

    fn bind_agg_projection(
        &mut self,
        expr: &Expr,
        alias: Option<&str>,
        group_by: &[(BoundExpr, String)],
        aggs: &mut Vec<AggCall>,
    ) -> Result<()> {
        if let Expr::Function {
            name, args, star, ..
        } = expr
        {
            if let Some(func) = AggFunc::from_name(name) {
                let arg =
                    if *star {
                        None
                    } else {
                        Some(self.bind_expr(args.first().ok_or_else(|| {
                            Error::analysis(format!("{name}() needs an argument"))
                        })?)?)
                    };
                let output_name = alias
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("{}_{}", name, aggs.len()));
                aggs.push(AggCall {
                    func,
                    arg,
                    output_name,
                });
                return Ok(());
            }
        }
        // non-aggregate projection in an aggregate query must match a
        // GROUP BY expression
        let bound = self.bind_expr(expr)?;
        if !group_by.iter().any(|(g, _)| g == &bound) {
            return Err(Error::analysis(format!(
                "projection '{bound}' is neither an aggregate nor in GROUP BY"
            )));
        }
        Ok(())
    }

    /// HAVING: aggregate calls become references into the agg output (new
    /// calls are appended); group expressions become references to their
    /// output columns. The result is an expression over the qualifier-free
    /// aggregate output schema.
    fn bind_having(
        &mut self,
        expr: &Expr,
        group_by: &[(BoundExpr, String)],
        aggs: &mut Vec<AggCall>,
    ) -> Result<BoundExpr> {
        match expr {
            Expr::Function {
                name, args, star, ..
            } if AggFunc::from_name(name).is_some() => {
                let func = AggFunc::from_name(name).expect("guard matched this aggregate name");
                let arg =
                    if *star {
                        None
                    } else {
                        Some(self.bind_expr(args.first().ok_or_else(|| {
                            Error::analysis(format!("{name}() needs an argument"))
                        })?)?)
                    };
                // reuse an existing identical call if present
                let existing = aggs.iter().position(|a| a.func == func && a.arg == arg);
                let name = match existing {
                    Some(i) => aggs[i].output_name.clone(),
                    None => {
                        let output_name = format!("{}_{}", func.sql().to_lowercase(), aggs.len());
                        aggs.push(AggCall {
                            func,
                            arg,
                            output_name: output_name.clone(),
                        });
                        output_name
                    }
                };
                Ok(BoundExpr::col("#agg", &name))
            }
            Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
                left: Box::new(self.bind_having(left, group_by, aggs)?),
                op: *op,
                right: Box::new(self.bind_having(right, group_by, aggs)?),
            }),
            Expr::Unary { op, expr } => Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.bind_having(expr, group_by, aggs)?),
            }),
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Parameter(p) => self
                .params
                .get(p)
                .cloned()
                .map(BoundExpr::Literal)
                .ok_or_else(|| Error::Analysis(format!("unbound parameter ${p}"))),
            other => {
                // must be a grouping expression
                let bound = self.bind_expr(other)?;
                group_by
                    .iter()
                    .find(|(g, _)| g == &bound)
                    .map(|(_, n)| BoundExpr::col("#agg", n))
                    .ok_or_else(|| {
                        Error::analysis("HAVING may reference only aggregates and GROUP BY columns")
                    })
            }
        }
    }

    /// Mirror simple range/equality filters across inner equi-join edges.
    fn derive_transitive_filters(&mut self) {
        let edges: Vec<(OperandId, String, OperandId, String)> = self
            .edges
            .iter()
            .filter(|e| e.kind != JoinKind::Anti)
            .map(|e| (e.left, e.left_col.clone(), e.right, e.right_col.clone()))
            .collect();
        for (l, lc, r, rc) in edges {
            self.mirror_filters(l, &lc, r, &rc);
            self.mirror_filters(r, &rc, l, &lc);
        }
    }

    /// Copy `src`'s simple predicates on `src_col` to `dst` as predicates
    /// on `dst_col`, skipping ones `dst` already has.
    fn mirror_filters(&mut self, src: OperandId, src_col: &str, dst: OperandId, dst_col: &str) {
        let src_binding = self.operands[src as usize].binding.clone();
        let dst_binding = self.operands[dst as usize].binding.clone();
        let mut derived = Vec::new();
        for f in &self.operands[src as usize].filters {
            if let Some(expr) = mirror_simple(f, &src_binding, src_col, &dst_binding, dst_col) {
                derived.push(expr);
            }
        }
        let dst_filters = &mut self.operands[dst as usize].filters;
        for d in derived {
            if !dst_filters.contains(&d) {
                dst_filters.push(d);
            }
        }
    }

    // ------------------------------------------------- currency clause

    fn resolve_currency(&mut self, clause: &rcc_sql::CurrencyClause) -> Result<()> {
        self.saw_clause = true;
        for spec in &clause.specs {
            let mut ops = BTreeSet::new();
            for t in &spec.tables {
                let binding = self.lookup_binding(t).ok_or_else(|| {
                    Error::Analysis(format!("currency clause references unknown table '{t}'"))
                })?;
                match binding {
                    Binding::Operand { id } => {
                        ops.insert(id);
                    }
                    Binding::Derived { covers, .. } => ops.extend(covers.iter().copied()),
                }
            }
            let by = spec
                .by
                .iter()
                .map(|(q, c)| (q.clone().unwrap_or_default(), c.clone()))
                .collect();
            self.specs.push((spec.bound, ops, by));
        }
        Ok(())
    }
}

/// If `f` is a simple comparison/BETWEEN on exactly `src.src_col` against
/// literals, rebuild it against `dst.dst_col`; otherwise None.
fn mirror_simple(
    f: &BoundExpr,
    src: &str,
    src_col: &str,
    dst: &str,
    dst_col: &str,
) -> Option<BoundExpr> {
    let is_src = |e: &BoundExpr| {
        matches!(e, BoundExpr::Column { qualifier, name }
            if qualifier == src && name.eq_ignore_ascii_case(src_col))
    };
    match f {
        BoundExpr::Binary { left, op, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (l, BoundExpr::Literal(v)) if is_src(l) => Some(BoundExpr::binary(
                    BoundExpr::col(dst, dst_col),
                    *op,
                    BoundExpr::Literal(v.clone()),
                )),
                (BoundExpr::Literal(v), r) if is_src(r) => Some(BoundExpr::binary(
                    BoundExpr::Literal(v.clone()),
                    *op,
                    BoundExpr::col(dst, dst_col),
                )),
                _ => None,
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } => match (expr.as_ref(), low.as_ref(), high.as_ref()) {
            (e, BoundExpr::Literal(lo), BoundExpr::Literal(hi)) if is_src(e) => {
                Some(BoundExpr::Between {
                    expr: Box::new(BoundExpr::col(dst, dst_col)),
                    low: Box::new(BoundExpr::Literal(lo.clone())),
                    high: Box::new(BoundExpr::Literal(hi.clone())),
                    negated: false,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

fn default_name(e: &BoundExpr, n: usize) -> String {
    match e {
        BoundExpr::Column { name, .. } => name.clone(),
        _ => format!("col{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{DataType, TableId};
    use rcc_sql::parse_statement;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let customer = Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_nationkey", DataType::Int),
            Column::new("c_acctbal", DataType::Float),
        ]);
        cat.register_table(
            TableMeta::new(TableId(1), "customer", customer, vec!["c_custkey".into()]).unwrap(),
        )
        .unwrap();
        let orders = Schema::new(vec![
            Column::new("o_custkey", DataType::Int),
            Column::new("o_orderkey", DataType::Int),
            Column::new("o_totalprice", DataType::Float),
        ]);
        cat.register_table(
            TableMeta::new(
                TableId(2),
                "orders",
                orders,
                vec!["o_custkey".into(), "o_orderkey".into()],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> QueryGraph {
        bind_params(sql, &HashMap::new())
    }

    fn bind_params(sql: &str, params: &HashMap<String, Value>) -> QueryGraph {
        let stmt = match parse_statement(sql).unwrap() {
            rcc_sql::Statement::Select(s) => *s,
            other => panic!("{other:?}"),
        };
        bind_select(&catalog(), &stmt, params).unwrap()
    }

    fn bind_err(sql: &str) -> Error {
        let stmt = match parse_statement(sql).unwrap() {
            rcc_sql::Statement::Select(s) => *s,
            other => panic!("{other:?}"),
        };
        bind_select(&catalog(), &stmt, &HashMap::new()).unwrap_err()
    }

    #[test]
    fn single_table_with_filter() {
        let g = bind("SELECT c_name FROM customer WHERE c_custkey <= 100");
        assert_eq!(g.operands.len(), 1);
        assert_eq!(g.operands[0].filters.len(), 1);
        assert_eq!(g.projections.len(), 1);
        assert!(g.constraint.is_tight_default());
    }

    #[test]
    fn join_edge_extracted() {
        let g = bind(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 10",
        );
        assert_eq!(g.operands.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].kind, JoinKind::Inner);
        assert_eq!(
            g.operands[0].filters.len(),
            1,
            "selective filter pushed to customer"
        );
        assert!(g.residuals.is_empty());
    }

    #[test]
    fn explicit_join_syntax() {
        let g = bind("SELECT * FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey");
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.projections.len(), 7);
    }

    #[test]
    fn non_equi_cross_predicate_is_residual() {
        let g = bind(
            "SELECT c.c_name FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_acctbal < o.o_totalprice",
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.residuals.len(), 1);
    }

    #[test]
    fn currency_clause_resolved_to_operands() {
        let g = bind(
            "SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey \
             CURRENCY BOUND 10 SEC ON (c), 15 SEC ON (o)",
        );
        assert_eq!(g.constraint.classes.len(), 2);
        assert_eq!(g.constraint.bound_of(0), Duration::from_secs(10));
        assert_eq!(g.constraint.bound_of(1), Duration::from_secs(15));
    }

    #[test]
    fn derived_table_inlined_and_clause_merged() {
        // paper Q2 shape (Sec. 2.2): outer 5min(S,T), inner 10min(B,R) over
        // T=(B⋈R) — least restrictive combined: 5 min (S,B,R)
        let g = bind(
            "SELECT t.c_name, s.o_totalprice FROM \
             (SELECT c.c_name, c.c_custkey FROM customer c, orders r \
              WHERE c.c_custkey = r.o_custkey CURRENCY BOUND 10 MIN ON (c, r)) t, \
             orders s WHERE t.c_custkey = s.o_custkey \
             CURRENCY BOUND 5 MIN ON (s, t)",
        );
        assert_eq!(g.operands.len(), 3);
        assert_eq!(g.constraint.classes.len(), 1);
        assert_eq!(g.constraint.classes[0].bound, Duration::from_mins(5));
        assert_eq!(g.constraint.classes[0].operands.len(), 3);
        // derived column references substituted: two inner-join edges exist
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn exists_decorrelated_to_semi_join() {
        // paper Q3 shape: subquery consistency class references outer table
        let g = bind(
            "SELECT c.c_name FROM customer c WHERE \
             EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey \
                     CURRENCY BOUND 10 SEC ON (s, c)) \
             CURRENCY BOUND 10 SEC ON (c)",
        );
        assert_eq!(g.operands.len(), 2);
        assert!(g.operands[1].existential);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].kind, JoinKind::Semi);
        assert_eq!(g.edges[0].left, 0, "outer operand on the left");
        // inner clause referenced outer c: one merged class
        assert_eq!(g.constraint.classes.len(), 1);
        assert_eq!(g.constraint.classes[0].operands.len(), 2);
    }

    #[test]
    fn not_exists_is_anti_join() {
        let g = bind(
            "SELECT c.c_name FROM customer c WHERE \
             NOT EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey)",
        );
        assert_eq!(g.edges[0].kind, JoinKind::Anti);
    }

    #[test]
    fn in_subquery_becomes_semi_join() {
        let g = bind(
            "SELECT c_name FROM customer WHERE c_custkey IN \
             (SELECT o_custkey FROM orders WHERE o_totalprice > 100.0)",
        );
        assert_eq!(g.operands.len(), 2);
        assert_eq!(g.edges[0].kind, JoinKind::Semi);
        assert_eq!(g.operands[1].filters.len(), 1);
    }

    #[test]
    fn uncorrelated_exists_rejected() {
        let err = bind_err("SELECT c_name FROM customer WHERE EXISTS (SELECT * FROM orders)");
        assert!(matches!(err, Error::Analysis(_)));
    }

    #[test]
    fn aggregation_binding() {
        let g = bind(
            "SELECT o_custkey, COUNT(*) AS n, SUM(o_totalprice) AS total FROM orders \
             GROUP BY o_custkey HAVING COUNT(*) > 5",
        );
        let agg = g.aggregate.unwrap();
        assert_eq!(agg.group_by.len(), 1);
        assert_eq!(agg.aggs.len(), 2);
        assert!(agg.having.is_some());
        // HAVING reused the COUNT(*) call instead of adding a third
        assert_eq!(agg.aggs[0].output_name, "n");
    }

    #[test]
    fn projection_must_be_grouped() {
        let err = bind_err("SELECT o_totalprice, COUNT(*) FROM orders GROUP BY o_custkey");
        assert!(matches!(err, Error::Analysis(_)));
    }

    #[test]
    fn params_substituted() {
        let mut params = HashMap::new();
        params.insert("k".to_string(), Value::Int(50));
        let g = bind_params("SELECT c_name FROM customer WHERE c_custkey <= $k", &params);
        let f = &g.operands[0].filters[0];
        assert!(f.to_string().contains("50"));
        let err = bind_err("SELECT c_name FROM customer WHERE c_custkey <= $k");
        assert!(matches!(err, Error::Analysis(_)));
    }

    #[test]
    fn duplicate_alias_rejected_but_same_table_twice_ok() {
        let err = bind_err("SELECT * FROM customer c, orders c");
        assert!(matches!(err, Error::Analysis(_)));
        let g = bind("SELECT a.c_name FROM customer a, customer b WHERE a.c_custkey = b.c_custkey");
        assert_eq!(g.operands.len(), 2);
        assert_ne!(g.operands[0].binding, g.operands[1].binding);
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        // both customer aliases have c_name
        let err = bind_err("SELECT c_name FROM customer a, customer b");
        assert!(matches!(err, Error::Analysis(_)));
    }

    #[test]
    fn required_columns_cover_everything() {
        let g = bind(
            "SELECT c.c_name FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_acctbal > 5.0",
        );
        let cols = g.required_columns(0);
        assert!(cols.contains("c_name"));
        assert!(cols.contains("c_custkey"));
        assert!(cols.contains("c_acctbal"));
        assert!(!cols.contains("c_nationkey"));
        let ocols = g.required_columns(1);
        assert!(ocols.contains("o_custkey"));
        assert!(
            ocols.contains("o_orderkey"),
            "clustered key always required"
        );
    }

    #[test]
    fn order_by_resolution() {
        let g = bind("SELECT c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC, 1");
        assert_eq!(g.order_by, vec![(1, false), (0, true)]);
        let err = bind_err("SELECT c_name FROM customer ORDER BY c_nationkey");
        assert!(matches!(err, Error::Analysis(_)));
    }

    #[test]
    fn wildcards_expand() {
        let g = bind("SELECT * FROM customer");
        assert_eq!(g.projections.len(), 4);
        let g = bind("SELECT o.* FROM customer c, orders o WHERE c.c_custkey = o.o_custkey");
        assert_eq!(g.projections.len(), 3);
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(matches!(
            bind_err("SELECT x FROM customer"),
            Error::Analysis(_)
        ));
        assert!(matches!(
            bind_err("SELECT c_name FROM ghost"),
            Error::Analysis(_)
        ));
        assert!(matches!(
            bind_err("SELECT z.c_name FROM customer c"),
            Error::Analysis(_)
        ));
        assert!(matches!(
            bind_err("SELECT c_name FROM customer CURRENCY BOUND 5 SEC ON (zzz)"),
            Error::Analysis(_)
        ));
    }

    #[test]
    fn unmentioned_operand_gets_tight_default() {
        let g = bind(
            "SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey \
             CURRENCY BOUND 10 SEC ON (c)",
        );
        assert_eq!(g.constraint.classes.len(), 2);
        assert_eq!(g.constraint.bound_of(1), Duration::ZERO);
    }

    #[test]
    fn join_schema_excludes_existential() {
        let g = bind(
            "SELECT c.c_name FROM customer c WHERE \
             EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey)",
        );
        assert_eq!(g.join_schema().len(), 4, "only customer columns");
    }
}
