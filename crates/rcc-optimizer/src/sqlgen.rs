//! Remote SQL generation.
//!
//! "The remote plan consists of a remote SQL query created from the
//! original expression E" (paper Sec. 3.2.3). Given a bound
//! [`QueryGraph`], this module regenerates SQL text for either one operand
//! (the remote branch of a leaf SwitchUnion / a base-table fetch) or the
//! whole query (the fully remote plan). The generated text is parsed and
//! planned by the back-end server, which always serves the latest snapshot,
//! so no currency clause is attached.

use crate::constraint::OperandId;
use crate::expr::BoundExpr;
use crate::graph::{JoinKind, QueryGraph};
#[cfg(test)]
use rcc_common::Column;
use rcc_common::Schema;
use rcc_sql::unparse::select_sql;
use rcc_sql::{Expr, SelectItem, SelectStmt, TableRef};
use std::collections::BTreeSet;

/// Convert a bound expression back to AST form.
pub fn bound_to_ast(e: &BoundExpr) -> Expr {
    match e {
        BoundExpr::Column { qualifier, name } => Expr::Column {
            qualifier: Some(qualifier.clone()),
            name: name.clone(),
        },
        BoundExpr::Literal(v) => Expr::Literal(v.clone()),
        BoundExpr::GetDate => Expr::Function {
            name: "getdate".into(),
            args: vec![],
            distinct: false,
            star: false,
        },
        BoundExpr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bound_to_ast(left)),
            op: *op,
            right: Box::new(bound_to_ast(right)),
        },
        BoundExpr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bound_to_ast(expr)),
        },
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bound_to_ast(expr)),
            low: Box::new(bound_to_ast(low)),
            high: Box::new(bound_to_ast(high)),
            negated: *negated,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bound_to_ast(expr)),
            list: list.iter().map(bound_to_ast).collect(),
            negated: *negated,
        },
        BoundExpr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bound_to_ast(expr)),
            negated: *negated,
        },
    }
}

/// SQL and result schema for fetching one operand from the back-end:
/// `SELECT <cols> FROM <table> <binding> WHERE <operand filters>`.
/// Columns are emitted in sorted order so the schema is deterministic.
pub fn operand_sql(
    graph: &QueryGraph,
    operand: OperandId,
    columns: &BTreeSet<String>,
) -> (String, Schema) {
    let op = graph.operand(operand);
    let mut stmt = SelectStmt::empty();
    for c in columns {
        stmt.projections.push(SelectItem::Expr {
            expr: Expr::Column {
                qualifier: Some(op.binding.clone()),
                name: c.clone(),
            },
            alias: None,
        });
    }
    stmt.from.push(TableRef::Named {
        name: op.table.name.clone(),
        alias: Some(op.binding.clone()),
    });
    stmt.filter = BoundExpr::and_all(op.filters.clone())
        .as_ref()
        .map(bound_to_ast);

    let schema = Schema::new(
        columns
            .iter()
            .map(|c| {
                let ord = op
                    .table
                    .schema
                    .resolve(None, c)
                    .expect("required column exists");
                let mut col = op.table.schema.column(ord).clone();
                col.qualifier = Some(op.binding.clone());
                col.source = Some(op.table.id);
                col
            })
            .collect(),
    );
    (select_sql(&stmt), schema)
}

/// SQL and result schema for shipping the *entire* query to the back-end
/// (the paper's plan 1). Aggregation, DISTINCT, ORDER BY and LIMIT execute
/// remotely; the cache just forwards rows.
pub fn full_query_sql(graph: &QueryGraph) -> (String, Schema) {
    let mut stmt = SelectStmt::empty();
    stmt.distinct = graph.distinct;

    // FROM: non-existential operands
    for op in graph.operands.iter().filter(|o| !o.existential) {
        stmt.from.push(TableRef::Named {
            name: op.table.name.clone(),
            alias: Some(op.binding.clone()),
        });
    }

    // WHERE: filters of non-existential operands, inner edges between
    // non-existential operands, residuals, plus EXISTS per existential
    // operand.
    let mut conjuncts: Vec<Expr> = Vec::new();
    for op in graph.operands.iter().filter(|o| !o.existential) {
        for f in &op.filters {
            conjuncts.push(bound_to_ast(f));
        }
    }
    let is_existential = |id: OperandId| graph.operand(id).existential;
    for edge in &graph.edges {
        if edge.kind == JoinKind::Inner && !is_existential(edge.left) && !is_existential(edge.right)
        {
            conjuncts.push(Expr::binary(
                Expr::Column {
                    qualifier: Some(graph.operand(edge.left).binding.clone()),
                    name: edge.left_col.clone(),
                },
                rcc_sql::BinaryOp::Eq,
                Expr::Column {
                    qualifier: Some(graph.operand(edge.right).binding.clone()),
                    name: edge.right_col.clone(),
                },
            ));
        }
    }
    for r in &graph.residuals {
        conjuncts.push(bound_to_ast(r));
    }
    for op in graph.operands.iter().filter(|o| o.existential) {
        let mut inner = SelectStmt::empty();
        inner.projections.push(SelectItem::Wildcard);
        inner.from.push(TableRef::Named {
            name: op.table.name.clone(),
            alias: Some(op.binding.clone()),
        });
        let mut inner_conjuncts: Vec<Expr> = op.filters.iter().map(bound_to_ast).collect();
        let mut negated = false;
        for edge in graph.edges.iter().filter(|e| e.right == op.id) {
            inner_conjuncts.push(Expr::binary(
                Expr::Column {
                    qualifier: Some(op.binding.clone()),
                    name: edge.right_col.clone(),
                },
                rcc_sql::BinaryOp::Eq,
                Expr::Column {
                    qualifier: Some(graph.operand(edge.left).binding.clone()),
                    name: edge.left_col.clone(),
                },
            ));
            negated = edge.kind == JoinKind::Anti;
        }
        inner.filter = inner_conjuncts
            .into_iter()
            .reduce(|a, b| Expr::binary(a, rcc_sql::BinaryOp::And, b));
        conjuncts.push(Expr::Exists {
            subquery: Box::new(inner),
            negated,
        });
    }
    stmt.filter = conjuncts
        .into_iter()
        .reduce(|a, b| Expr::binary(a, rcc_sql::BinaryOp::And, b));

    // projections / aggregation
    match &graph.aggregate {
        Some(agg) => {
            for (g, name) in &agg.group_by {
                stmt.projections.push(SelectItem::Expr {
                    expr: bound_to_ast(g),
                    alias: Some(name.clone()),
                });
                stmt.group_by.push(bound_to_ast(g));
            }
            for a in &agg.aggs {
                stmt.projections.push(SelectItem::Expr {
                    expr: Expr::Function {
                        name: a.func.sql().to_lowercase(),
                        args: a.arg.as_ref().map(bound_to_ast).into_iter().collect(),
                        distinct: false,
                        star: a.arg.is_none(),
                    },
                    alias: Some(a.output_name.clone()),
                });
            }
            stmt.having = agg.having.as_ref().map(|h| having_to_ast(h, agg));
        }
        None => {
            for (e, name) in &graph.projections {
                stmt.projections.push(SelectItem::Expr {
                    expr: bound_to_ast(e),
                    alias: Some(name.clone()),
                });
            }
        }
    }

    // ORDER BY by output name, LIMIT verbatim
    let out_schema = graph.output_schema();
    for (ordinal, asc) in &graph.order_by {
        stmt.order_by.push((
            Expr::Column {
                qualifier: None,
                name: out_schema.column(*ordinal).name.clone(),
            },
            *asc,
        ));
    }
    stmt.limit = graph.limit;

    (select_sql(&stmt), out_schema)
}

/// Rebuild a HAVING expression (over the `#agg` output) into AST form by
/// substituting aggregate output references with their defining calls.
fn having_to_ast(h: &BoundExpr, agg: &crate::graph::AggregateSpec) -> Expr {
    match h {
        BoundExpr::Column { qualifier, name } if qualifier == "#agg" => {
            if let Some(call) = agg.aggs.iter().find(|a| &a.output_name == name) {
                Expr::Function {
                    name: call.func.sql().to_lowercase(),
                    args: call.arg.as_ref().map(bound_to_ast).into_iter().collect(),
                    distinct: false,
                    star: call.arg.is_none(),
                }
            } else if let Some((g, _)) = agg.group_by.iter().find(|(_, n)| n == name) {
                bound_to_ast(g)
            } else {
                Expr::Column {
                    qualifier: None,
                    name: name.clone(),
                }
            }
        }
        BoundExpr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(having_to_ast(left, agg)),
            op: *op,
            right: Box::new(having_to_ast(right, agg)),
        },
        BoundExpr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(having_to_ast(expr, agg)),
        },
        other => bound_to_ast(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::bind_select;
    use rcc_catalog::{Catalog, TableMeta};
    use rcc_common::{DataType, TableId, Value};
    use rcc_sql::parse_statement;
    use std::collections::HashMap;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let customer = Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_acctbal", DataType::Float),
        ]);
        cat.register_table(
            TableMeta::new(TableId(1), "customer", customer, vec!["c_custkey".into()]).unwrap(),
        )
        .unwrap();
        let orders = Schema::new(vec![
            Column::new("o_custkey", DataType::Int),
            Column::new("o_orderkey", DataType::Int),
            Column::new("o_totalprice", DataType::Float),
        ]);
        cat.register_table(
            TableMeta::new(
                TableId(2),
                "orders",
                orders,
                vec!["o_custkey".into(), "o_orderkey".into()],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn graph(sql: &str) -> QueryGraph {
        let stmt = match parse_statement(sql).unwrap() {
            rcc_sql::Statement::Select(s) => *s,
            other => panic!("{other:?}"),
        };
        bind_select(&catalog(), &stmt, &HashMap::new()).unwrap()
    }

    fn reparses(sql: &str) {
        parse_statement(sql).unwrap_or_else(|e| panic!("generated SQL does not parse: {sql}: {e}"));
    }

    #[test]
    fn operand_fetch_sql() {
        let g = graph("SELECT c.c_name FROM customer c WHERE c.c_custkey <= 10");
        let cols = g.required_columns(0);
        let (sql, schema) = operand_sql(&g, 0, &cols);
        assert!(sql.contains("FROM customer c"), "{sql}");
        assert!(sql.contains("c.c_custkey"), "{sql}");
        assert!(sql.contains("<= 10"), "{sql}");
        assert_eq!(schema.len(), cols.len());
        assert_eq!(schema.column(0).qualifier.as_deref(), Some("c"));
        reparses(&sql);
    }

    #[test]
    fn full_query_join_sql() {
        let g = graph(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey <= 10 \
             CURRENCY BOUND 10 SEC ON (c, o)",
        );
        let (sql, schema) = full_query_sql(&g);
        assert!(sql.contains("FROM customer c, orders o"), "{sql}");
        assert!(sql.contains("(c.c_custkey = o.o_custkey)"), "{sql}");
        assert!(
            !sql.to_uppercase().contains("CURRENCY"),
            "no clause remotely: {sql}"
        );
        assert_eq!(schema.len(), 2);
        reparses(&sql);
    }

    #[test]
    fn full_query_with_exists() {
        let g = graph(
            "SELECT c.c_name FROM customer c WHERE \
             EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey)",
        );
        let (sql, _) = full_query_sql(&g);
        assert!(sql.contains("EXISTS"), "{sql}");
        assert!(sql.contains("FROM orders s"), "{sql}");
        reparses(&sql);
    }

    #[test]
    fn full_query_with_anti_join() {
        let g = graph(
            "SELECT c.c_name FROM customer c WHERE \
             NOT EXISTS (SELECT * FROM orders s WHERE s.o_custkey = c.c_custkey)",
        );
        let (sql, _) = full_query_sql(&g);
        assert!(sql.contains("NOT EXISTS"), "{sql}");
        reparses(&sql);
    }

    #[test]
    fn full_query_with_aggregation() {
        let g = graph(
            "SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey \
             HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 3",
        );
        let (sql, schema) = full_query_sql(&g);
        assert!(sql.contains("GROUP BY"), "{sql}");
        assert!(sql.contains("HAVING (COUNT(*) > 5)"), "{sql}");
        assert!(sql.contains("ORDER BY n DESC"), "{sql}");
        assert!(sql.contains("LIMIT 3"), "{sql}");
        assert_eq!(schema.len(), 2);
        reparses(&sql);
    }

    #[test]
    fn ast_roundtrip_of_bound_exprs() {
        let e = BoundExpr::Between {
            expr: Box::new(BoundExpr::col("c", "c_acctbal")),
            low: Box::new(BoundExpr::Literal(Value::Float(1.0))),
            high: Box::new(BoundExpr::Literal(Value::Float(2.0))),
            negated: true,
        };
        let ast = bound_to_ast(&e);
        let sql = rcc_sql::unparse::expr_sql(&ast);
        assert!(sql.contains("NOT BETWEEN"), "{sql}");
    }
}
