//! Cost model (paper Sec. 3.2.4).
//!
//! Abstract cost units: roughly "one in-memory row touch". The constants
//! are calibrated so that the *relative* trade-offs the paper's experiments
//! hinge on hold:
//!
//! * shipping a row from the back-end costs ~its byte width, so wide/many
//!   rows make remote plans expensive (Q2: 72 MB join result vs. 42 MB of
//!   base tables ⇒ fetch the tables and join locally);
//! * a remote round trip has a large fixed cost, so tiny selective queries
//!   prefer one shipped query over several (Q1), yet a full local scan of a
//!   large view can still beat an indexed remote fetch only when enough
//!   rows come back (Q6 vs. Q7);
//! * a SwitchUnion costs `p·c_local + (1−p)·c_remote + c_cg` with
//!   `p = clamp((B−d)/f, 0, 1)` — formula (1) of the paper, including the
//!   continuous-propagation special case `f = 0`.

use crate::expr::BoundExpr;
use rcc_catalog::CurrencyRegion;
use rcc_common::Duration;
#[cfg(test)]
use rcc_common::Value;
use rcc_sql::BinaryOp;
use rcc_storage::{KeyRange, TableStats};
use std::collections::HashMap;

/// Tunable cost constants.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Cost of touching one row in a scan/filter.
    pub cpu_row: f64,
    /// Cost of descending a BTree (clustered or secondary seek).
    pub seek: f64,
    /// Per-row cost of inserting into a hash table.
    pub hash_build: f64,
    /// Per-row cost of probing a hash table.
    pub hash_probe: f64,
    /// Per-output-row cost.
    pub output_row: f64,
    /// Fixed cost of one round trip to the back-end server.
    pub remote_roundtrip: f64,
    /// Per-byte cost of shipping result data from the back-end.
    pub remote_byte: f64,
    /// Cost of evaluating one currency guard (heartbeat lookup + filter).
    pub guard: f64,
    /// Per-row overhead of rows passing through a SwitchUnion.
    pub switch_row: f64,
    /// Per-row cost of sorting (× log₂ n).
    pub sort_row: f64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            cpu_row: 1.0,
            seek: 25.0,
            hash_build: 2.0,
            hash_probe: 1.5,
            output_row: 0.5,
            remote_roundtrip: 50_000.0,
            remote_byte: 1.0,
            guard: 300.0,
            switch_row: 0.05,
            sort_row: 1.0,
        }
    }
}

impl CostParams {
    /// Probability that the local branch of a guarded access is taken —
    /// the paper's formula (1):
    ///
    /// ```text
    /// p = 0             if B − d ≤ 0
    /// p = (B − d) / f   if 0 < B − d ≤ f
    /// p = 1             if B − d > f
    /// ```
    ///
    /// `f = 0` (continuous propagation) degenerates to the step function
    /// `p = [B > d]`, which the paper notes is modeled correctly.
    pub fn p_local(&self, bound: Duration, region: &CurrencyRegion) -> f64 {
        let b_minus_d = (bound.millis() - region.update_delay.millis()) as f64;
        let f = region.update_interval.millis() as f64;
        if b_minus_d <= 0.0 {
            0.0
        } else if f <= 0.0 || b_minus_d > f {
            1.0
        } else {
            b_minus_d / f
        }
    }

    /// Cost of a SwitchUnion given branch costs and the local probability.
    pub fn switch_union(&self, p: f64, c_local: f64, c_remote: f64, rows: f64) -> f64 {
        p * c_local + (1.0 - p) * c_remote + self.guard + rows * self.switch_row
    }

    /// Cost of shipping `rows` rows of `bytes_per_row` from the back-end,
    /// on top of executing `backend_cost` there.
    pub fn remote(&self, backend_cost: f64, rows: f64, bytes_per_row: f64) -> f64 {
        self.remote_roundtrip + backend_cost + rows * bytes_per_row * self.remote_byte
    }

    /// Cost of a full scan emitting `out` of `total` rows.
    pub fn scan(&self, total: f64, out: f64) -> f64 {
        total * self.cpu_row + out * self.output_row
    }

    /// Cost of a range seek touching `touched` rows.
    pub fn range_seek(&self, touched: f64) -> f64 {
        self.seek + touched * self.cpu_row + touched * self.output_row
    }

    /// Cost of a secondary-index range scan: per matching row, one pk
    /// lookup back into the clustered index.
    pub fn index_range(&self, matched: f64) -> f64 {
        self.seek + matched * (self.cpu_row + self.seek * 0.2) + matched * self.output_row
    }

    /// Cost of a hash join producing `out` rows.
    pub fn hash_join(&self, left_rows: f64, right_rows: f64, out: f64) -> f64 {
        right_rows * self.hash_build + left_rows * self.hash_probe + out * self.output_row
    }

    /// Cost of an index nested-loop join: one seek per outer row.
    pub fn index_nl_join(&self, outer_rows: f64, per_probe: f64) -> f64 {
        outer_rows * (self.seek + per_probe * (self.cpu_row + self.output_row))
    }

    /// Cost of hash aggregation.
    pub fn aggregate(&self, input_rows: f64, groups: f64) -> f64 {
        input_rows * self.hash_build + groups * self.output_row
    }

    /// Cost of sorting `rows` rows.
    pub fn sort(&self, rows: f64) -> f64 {
        if rows <= 1.0 {
            rows * self.sort_row
        } else {
            rows * rows.log2() * self.sort_row
        }
    }
}

/// Extract per-column [`KeyRange`]s implied by a conjunction of simple
/// predicates (`col op literal`, `literal op col`, `col BETWEEN a AND b`).
/// Multiple conjuncts on one column intersect. Used for access-path
/// selection, selectivity estimation and view subsumption.
pub fn column_ranges(filters: &[BoundExpr]) -> HashMap<String, KeyRange> {
    let mut out: HashMap<String, KeyRange> = HashMap::new();
    let mut add = |col: &str, range: KeyRange| {
        out.entry(col.to_string())
            .and_modify(|r| *r = r.intersect(&range))
            .or_insert(range);
    };
    for f in filters {
        match f {
            BoundExpr::Binary { left, op, right } if op.is_comparison() => {
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (BoundExpr::Column { name, .. }, BoundExpr::Literal(v)) => {
                        (name.as_str(), v.clone(), *op)
                    }
                    (BoundExpr::Literal(v), BoundExpr::Column { name, .. }) => {
                        (name.as_str(), v.clone(), op.flip())
                    }
                    _ => continue,
                };
                let range = match op {
                    BinaryOp::Eq => KeyRange::eq(lit),
                    BinaryOp::Lt => KeyRange::less_than(lit),
                    BinaryOp::LtEq => KeyRange::at_most(lit),
                    BinaryOp::Gt => KeyRange::greater_than(lit),
                    BinaryOp::GtEq => KeyRange::at_least(lit),
                    _ => continue, // <> gives no useful range
                };
                add(col, range);
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let (
                    BoundExpr::Column { name, .. },
                    BoundExpr::Literal(lo),
                    BoundExpr::Literal(hi),
                ) = (expr.as_ref(), low.as_ref(), high.as_ref())
                {
                    add(name, KeyRange::between(lo.clone(), hi.clone()));
                }
            }
            _ => {}
        }
    }
    out
}

/// Estimate the fraction of rows surviving `filters`, given table stats.
/// Range-expressible conjuncts use histogram estimates; everything else
/// gets a default selectivity of 1/3.
pub fn filter_selectivity(filters: &[BoundExpr], stats: &TableStats) -> f64 {
    if filters.is_empty() {
        return 1.0;
    }
    let ranges = column_ranges(filters);
    let mut sel = 1.0;
    for (col, range) in &ranges {
        let s = if matches!((&range.low, &range.high),
            (std::ops::Bound::Included(a), std::ops::Bound::Included(b)) if a == b)
        {
            stats.column(col).eq_selectivity(stats.row_count)
        } else {
            stats.column(col).range_selectivity(range, stats.row_count)
        };
        sel *= s;
    }
    // conjuncts that produced no range (e.g. IS NULL, string compares on
    // non-literals) get the default
    let ranged: usize = ranges.len();
    let mut unranged = 0usize;
    for f in filters {
        let produced = match f {
            BoundExpr::Binary { left, op, right } if op.is_comparison() => matches!(
                (left.as_ref(), right.as_ref()),
                (BoundExpr::Column { .. }, BoundExpr::Literal(_))
                    | (BoundExpr::Literal(_), BoundExpr::Column { .. })
            ),
            BoundExpr::Between {
                expr,
                low,
                high,
                negated: false,
            } => matches!(
                (expr.as_ref(), low.as_ref(), high.as_ref()),
                (
                    BoundExpr::Column { .. },
                    BoundExpr::Literal(_),
                    BoundExpr::Literal(_)
                )
            ),
            _ => false,
        };
        if !produced {
            unranged += 1;
        }
    }
    let _ = ranged;
    sel * 0.33f64.powi(unranged as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::RegionId;

    fn region(f_secs: i64, d_secs: i64) -> CurrencyRegion {
        CurrencyRegion::new(
            RegionId(1),
            "CR1",
            Duration::from_secs(f_secs),
            Duration::from_secs(d_secs),
        )
    }

    #[test]
    fn p_local_matches_formula_one() {
        let p = CostParams::default();
        let r = region(100, 5);
        // B ≤ d → 0
        assert_eq!(p.p_local(Duration::from_secs(5), &r), 0.0);
        assert_eq!(p.p_local(Duration::from_secs(2), &r), 0.0);
        assert_eq!(p.p_local(Duration::ZERO, &r), 0.0);
        // linear ramp
        assert!((p.p_local(Duration::from_secs(55), &r) - 0.5).abs() < 1e-9);
        assert!((p.p_local(Duration::from_secs(30), &r) - 0.25).abs() < 1e-9);
        // saturation at B = d + f
        assert_eq!(p.p_local(Duration::from_secs(105), &r), 1.0);
        assert_eq!(p.p_local(Duration::from_secs(500), &r), 1.0);
    }

    #[test]
    fn p_local_continuous_propagation() {
        let p = CostParams::default();
        let r = region(0, 5);
        assert_eq!(p.p_local(Duration::from_secs(5), &r), 0.0);
        assert_eq!(p.p_local(Duration::from_secs(6), &r), 1.0);
    }

    #[test]
    fn switch_union_blends_branch_costs() {
        let p = CostParams::default();
        let c = p.switch_union(0.5, 100.0, 1000.0, 0.0);
        assert!((c - (550.0 + p.guard)).abs() < 1e-9);
        // p=1 ignores the remote branch except the guard itself
        let c = p.switch_union(1.0, 100.0, 1_000_000.0, 0.0);
        assert!((c - (100.0 + p.guard)).abs() < 1e-9);
    }

    #[test]
    fn remote_costs_scale_with_bytes() {
        let p = CostParams::default();
        let small = p.remote(0.0, 10.0, 50.0);
        let big = p.remote(0.0, 1_000_000.0, 50.0);
        assert!(big > small * 100.0);
        assert!(small >= p.remote_roundtrip);
    }

    #[test]
    fn ranges_from_conjuncts_intersect() {
        let filters = vec![
            BoundExpr::binary(
                BoundExpr::col("c", "k"),
                BinaryOp::GtEq,
                BoundExpr::Literal(Value::Int(10)),
            ),
            BoundExpr::binary(
                BoundExpr::Literal(Value::Int(20)),
                BinaryOp::Gt,
                BoundExpr::col("c", "k"),
            ),
        ];
        let ranges = column_ranges(&filters);
        let r = &ranges["k"];
        assert!(r.contains(&Value::Int(10)));
        assert!(r.contains(&Value::Int(19)));
        assert!(!r.contains(&Value::Int(20)));
        assert!(!r.contains(&Value::Int(9)));
    }

    #[test]
    fn between_produces_range() {
        let filters = vec![BoundExpr::Between {
            expr: Box::new(BoundExpr::col("c", "bal")),
            low: Box::new(BoundExpr::Literal(Value::Float(1.0))),
            high: Box::new(BoundExpr::Literal(Value::Float(2.0))),
            negated: false,
        }];
        let ranges = column_ranges(&filters);
        assert!(ranges["bal"].contains(&Value::Float(1.5)));
        assert!(!ranges["bal"].contains(&Value::Float(2.5)));
    }

    #[test]
    fn eq_produces_point_range() {
        let filters = vec![BoundExpr::binary(
            BoundExpr::col("c", "k"),
            BinaryOp::Eq,
            BoundExpr::Literal(Value::Int(7)),
        )];
        let ranges = column_ranges(&filters);
        assert_eq!(ranges["k"], KeyRange::eq(Value::Int(7)));
    }

    #[test]
    fn non_range_predicates_ignored_by_ranges() {
        let filters = vec![BoundExpr::IsNull {
            expr: Box::new(BoundExpr::col("c", "k")),
            negated: false,
        }];
        assert!(column_ranges(&filters).is_empty());
    }

    #[test]
    fn selectivity_defaults_for_opaque_predicates() {
        let stats = TableStats::default();
        let filters = vec![BoundExpr::IsNull {
            expr: Box::new(BoundExpr::col("c", "k")),
            negated: false,
        }];
        let s = filter_selectivity(&filters, &stats);
        assert!((s - 0.33).abs() < 1e-9);
        assert_eq!(filter_selectivity(&[], &stats), 1.0);
    }

    #[test]
    fn sort_cost_grows_superlinearly() {
        let p = CostParams::default();
        assert!(p.sort(1000.0) > 2.0 * p.sort(500.0));
        assert_eq!(p.sort(0.0), 0.0);
    }
}
