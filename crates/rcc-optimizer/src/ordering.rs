//! Delivered sort-order properties.
//!
//! The paper introduces plan properties with the *sort property*: "a merge
//! join operator requires that its inputs be sorted on the join columns...
//! every physical plan includes a delivered sort property." This module
//! computes the (single-column, ascending) order a physical plan delivers,
//! which is what lets the optimizer build merge joins without explicit
//! sorts: clustered BTree scans deliver their leading-key order for free.

use crate::expr::BoundExpr;
use crate::physical::{AccessPath, PhysicalPlan};

/// A delivered ordering: rows are non-decreasing in `qualifier.column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderProp {
    /// Operand binding the ordered column belongs to.
    pub qualifier: String,
    /// Ordered column name.
    pub column: String,
}

impl OrderProp {
    /// Does `expr` reference exactly this ordered column?
    pub fn matches(&self, expr: &BoundExpr) -> bool {
        matches!(expr, BoundExpr::Column { qualifier, name }
            if *qualifier == self.qualifier && name.eq_ignore_ascii_case(&self.column))
    }
}

/// The ordering a plan delivers, or `None` when no order is guaranteed.
///
/// Conservative by construction:
/// * local scans deliver their access path's key order (BTree iteration);
/// * filters and limits preserve their input's order;
/// * projections preserve it only if the ordered column survives;
/// * merge joins deliver the left input's order;
/// * everything else — hash operators, SwitchUnion (the remote branch gives
///   no guarantee), remote queries, sorts on output ordinals — delivers
///   nothing. (`Sort` orders by *output ordinal*, which has no stable
///   qualifier to name here; treated as unordered for merge-join purposes.)
pub fn delivered_order(plan: &PhysicalPlan) -> Option<OrderProp> {
    match plan {
        PhysicalPlan::LocalScan(n) => {
            let column = match &n.access {
                AccessPath::FullScan => leading_key_column(n)?,
                AccessPath::ClusteredRange { column, .. } => column.clone(),
                AccessPath::IndexRange { column, .. } => column.clone(),
            };
            let qualifier = n.schema.columns().first()?.qualifier.clone()?;
            Some(OrderProp { qualifier, column })
        }
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Limit { input, .. } => {
            delivered_order(input)
        }
        PhysicalPlan::Project { input, exprs } => {
            let inner = delivered_order(input)?;
            // the ordered column must pass through unchanged
            exprs.iter().any(|(e, _)| inner.matches(e)).then_some(inner)
        }
        PhysicalPlan::MergeJoin { left, .. } => delivered_order(left),
        _ => None,
    }
}

/// Leading clustered-key column of a scanned object: full scans of BTree
/// tables iterate in clustered order, but the scan node itself does not
/// record the key — infer it only when the access path names it. For full
/// scans we cannot know the key column here, so no order is claimed.
fn leading_key_column(_n: &crate::physical::LocalScanNode) -> Option<String> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::LocalScanNode;
    use rcc_common::{Column, DataType, Schema, Value};
    use rcc_storage::KeyRange;

    fn scan(access: AccessPath) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: "v".into(),
            schema: Schema::new(vec![
                Column::new("id", DataType::Int).with_qualifier("t"),
                Column::new("x", DataType::Int).with_qualifier("t"),
            ]),
            access,
            residual: None,
            operand: 0,
            est_rows: 10.0,
        })
    }

    #[test]
    fn clustered_range_delivers_key_order() {
        let p = scan(AccessPath::ClusteredRange {
            column: "id".into(),
            range: KeyRange::less_than(Value::Int(10)),
        });
        let o = delivered_order(&p).unwrap();
        assert_eq!((o.qualifier.as_str(), o.column.as_str()), ("t", "id"));
        assert!(o.matches(&BoundExpr::col("t", "id")));
        assert!(!o.matches(&BoundExpr::col("t", "x")));
        assert!(!o.matches(&BoundExpr::col("u", "id")));
    }

    #[test]
    fn index_range_delivers_index_order() {
        let p = scan(AccessPath::IndexRange {
            index: "ix".into(),
            column: "x".into(),
            range: KeyRange::all(),
        });
        assert_eq!(delivered_order(&p).unwrap().column, "x");
    }

    #[test]
    fn full_scan_claims_nothing() {
        assert!(delivered_order(&scan(AccessPath::FullScan)).is_none());
    }

    #[test]
    fn filter_preserves_projection_guards() {
        let base = scan(AccessPath::ClusteredRange {
            column: "id".into(),
            range: KeyRange::all(),
        });
        let filtered = PhysicalPlan::Filter {
            input: Box::new(base.clone()),
            predicate: BoundExpr::Literal(Value::Bool(true)),
        };
        assert!(delivered_order(&filtered).is_some());
        // projection keeping the column preserves the order
        let kept = PhysicalPlan::Project {
            input: Box::new(base.clone()),
            exprs: vec![(BoundExpr::col("t", "id"), "id".into())],
        };
        assert!(delivered_order(&kept).is_some());
        // projection dropping it loses the order
        let dropped = PhysicalPlan::Project {
            input: Box::new(base),
            exprs: vec![(BoundExpr::col("t", "x"), "x".into())],
        };
        assert!(delivered_order(&dropped).is_none());
    }

    #[test]
    fn hash_join_and_remote_deliver_nothing() {
        let base = scan(AccessPath::ClusteredRange {
            column: "id".into(),
            range: KeyRange::all(),
        });
        let hj = PhysicalPlan::HashJoin {
            left: Box::new(base.clone()),
            right: Box::new(base.clone()),
            left_keys: vec![],
            right_keys: vec![],
            kind: crate::graph::JoinKind::Inner,
        };
        assert!(delivered_order(&hj).is_none());
        let mj = PhysicalPlan::MergeJoin {
            left: Box::new(base.clone()),
            right: Box::new(base),
            left_key: BoundExpr::col("t", "id"),
            right_key: BoundExpr::col("t", "id"),
            kind: crate::graph::JoinKind::Inner,
        };
        assert_eq!(delivered_order(&mj).unwrap().column, "id");
    }
}
