//! Physical plans.
//!
//! The executable plan shape produced by the optimizer and interpreted by
//! `rcc-executor`. Dynamic plans use [`PhysicalPlan::SwitchUnion`] exactly
//! as in the paper (Sec. 3.2.3): a *currency guard* selector — equivalent
//! to `EXISTS (SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() − B)`
//! — chooses between a local branch over a cached view and a remote branch
//! that ships SQL to the back-end. For index-nested-loop joins the guarded
//! choice lives inside [`InnerAccess`]: the selector is evaluated once when
//! the join opens (the paper evaluates guards once per operator open) and
//! either seeks the local view per outer row or fetches the inner data with
//! one remote query and probes it hashed.

use crate::constraint::OperandId;
use crate::expr::{AggCall, BoundExpr};
use crate::graph::JoinKind;
use crate::property::DeliveredProperty;
use rcc_common::{Duration, RegionId, Schema};
use rcc_storage::KeyRange;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// How a local scan reaches its rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every row.
    FullScan,
    /// Range (or point) restriction on the leading clustered-key column.
    ClusteredRange {
        /// Column name.
        column: String,
        /// The key range.
        range: KeyRange,
    },
    /// Range over a secondary index.
    IndexRange {
        /// Secondary index name.
        index: String,
        /// Column name.
        column: String,
        /// The key range.
        range: KeyRange,
    },
}

/// The runtime currency check attached to a guarded local access.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrencyGuard {
    /// The region whose staleness is checked.
    pub region: RegionId,
    /// Name of the region's local heartbeat table (`Heartbeat_R`).
    pub heartbeat_table: String,
    /// The applicable currency bound `B` from the query.
    pub bound: Duration,
}

/// A scan over a locally stored object (a cached view at the mid-tier
/// cache, or a master table when planning in back-end role).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalScanNode {
    /// Storage object name.
    pub object: String,
    /// Output schema (columns qualified by the operand binding).
    pub schema: Schema,
    /// Access path.
    pub access: AccessPath,
    /// Residual predicate evaluated on each fetched row.
    pub residual: Option<BoundExpr>,
    /// The operand this scan implements.
    pub operand: OperandId,
    /// Cardinality estimate (for EXPLAIN; costing happens in the optimizer).
    pub est_rows: f64,
}

/// A query shipped to the back-end server.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteQueryNode {
    /// The SQL text sent to the back-end.
    pub sql: String,
    /// Schema of the returned rows (qualified by operand bindings).
    pub schema: Schema,
    /// Operands the remote result covers.
    pub operands: BTreeSet<OperandId>,
    /// Cardinality estimate.
    pub est_rows: f64,
}

/// Inner side of an index nested-loop join.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerAccess {
    /// Local object to seek.
    pub object: String,
    /// Inner schema (qualified).
    pub schema: Schema,
    /// Column seeked per outer row.
    pub seek_col: String,
    /// Secondary index to use (None = leading clustered-key seek).
    pub use_index: Option<String>,
    /// Residual predicate on inner rows.
    pub residual: Option<BoundExpr>,
    /// Currency guard; when it fails at open, the executor falls back to
    /// fetching `remote_sql` once and probing it hashed.
    pub guard: Option<CurrencyGuard>,
    /// Remote fallback SQL fetching the full (filtered) inner input.
    pub remote_sql: Option<String>,
    /// The operand this access implements.
    pub operand: OperandId,
    /// Expected matching rows per probe.
    pub est_rows_per_probe: f64,
    /// Force the remote (fetch + hash probe) mode unconditionally — used
    /// only by guard-stripped baseline plans in the overhead experiments.
    pub force_remote: bool,
}

/// A physical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// A single empty row — source for FROM-less queries (`SELECT 1`).
    OneRow,
    /// Local scan leaf.
    LocalScan(LocalScanNode),
    /// Remote query leaf.
    RemoteQuery(RemoteQueryNode),
    /// Dynamic plan: guard picks local or remote at open time.
    SwitchUnion {
        /// The currency guard (selector expression).
        guard: CurrencyGuard,
        /// Branch used when the guard passes.
        local: Box<PhysicalPlan>,
        /// Branch used when the guard fails.
        remote: Box<PhysicalPlan>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate.
        predicate: BoundExpr,
    },
    /// Projection / expression evaluation.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output expressions with names.
        exprs: Vec<(BoundExpr, String)>,
    },
    /// Hash join (inner/semi/anti).
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Probe keys.
        left_keys: Vec<BoundExpr>,
        /// Build keys.
        right_keys: Vec<BoundExpr>,
        /// Join kind.
        kind: JoinKind,
    },
    /// Merge join over inputs already ordered on the join keys — the plan
    /// shape enabled by *delivered sort properties* (the paper's Sec. 3.2.2
    /// uses the sort property as its canonical plan-property example:
    /// "a merge join operator requires that its inputs be sorted on the
    /// join columns").
    MergeJoin {
        /// Left input, ordered on `left_key`.
        left: Box<PhysicalPlan>,
        /// Right input, ordered on `right_key`.
        right: Box<PhysicalPlan>,
        /// Left join key.
        left_key: BoundExpr,
        /// Right join key.
        right_key: BoundExpr,
        /// Join kind.
        kind: JoinKind,
    },
    /// Index nested-loop join: per outer row, seek the inner access.
    IndexNLJoin {
        /// Outer input.
        outer: Box<PhysicalPlan>,
        /// Expression over the outer row producing the seek key.
        outer_key: BoundExpr,
        /// Inner access descriptor.
        inner: InnerAccess,
        /// Join kind.
        kind: JoinKind,
    },
    /// Hash aggregation with optional HAVING.
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group-by expressions with output names.
        group_by: Vec<(BoundExpr, String)>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// HAVING predicate over the aggregate output (qualifier `#agg`).
        having: Option<BoundExpr>,
    },
    /// Full sort on output ordinals.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// (output ordinal, ascending) keys.
        keys: Vec<(usize, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Output schema, computed recursively.
    pub fn schema(&self) -> Schema {
        use rcc_common::{Column, DataType};
        match self {
            PhysicalPlan::OneRow => Schema::empty(),
            PhysicalPlan::LocalScan(n) => n.schema.clone(),
            PhysicalPlan::RemoteQuery(n) => n.schema.clone(),
            PhysicalPlan::SwitchUnion { local, .. } => local.schema(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.schema(),
            PhysicalPlan::Project { exprs, .. } => Schema::new(
                exprs
                    .iter()
                    .map(|(_, name)| Column::new(name.clone(), DataType::Int))
                    .collect(),
            ),
            PhysicalPlan::HashJoin {
                left, right, kind, ..
            }
            | PhysicalPlan::MergeJoin {
                left, right, kind, ..
            } => match kind {
                JoinKind::Inner => left.schema().join(&right.schema()),
                JoinKind::Semi | JoinKind::Anti => left.schema(),
            },
            PhysicalPlan::IndexNLJoin {
                outer, inner, kind, ..
            } => match kind {
                JoinKind::Inner => outer.schema().join(&inner.schema),
                JoinKind::Semi | JoinKind::Anti => outer.schema(),
            },
            PhysicalPlan::HashAggregate { group_by, aggs, .. } => {
                let mut cols = Vec::new();
                for (_, name) in group_by {
                    cols.push(Column::new(name.clone(), DataType::Int).with_qualifier("#agg"));
                }
                for a in aggs {
                    cols.push(
                        Column::new(a.output_name.clone(), DataType::Float).with_qualifier("#agg"),
                    );
                }
                Schema::new(cols)
            }
        }
    }

    /// Delivered consistency property (paper Sec. 3.2.2), bottom-up.
    pub fn delivered(&self) -> DeliveredProperty {
        match self {
            PhysicalPlan::OneRow => DeliveredProperty::default(),
            PhysicalPlan::LocalScan(_) => {
                // Local scans only appear guarded at the cache; in back-end
                // role every scan reads the master = latest snapshot.
                // The optimizer tags the property when it *builds* guarded
                // plans, so a bare LocalScan is treated as backend data.
                DeliveredProperty::remote_leaf(self.operand_set())
            }
            PhysicalPlan::RemoteQuery(n) => {
                DeliveredProperty::remote_leaf(n.operands.iter().copied())
            }
            PhysicalPlan::SwitchUnion {
                guard,
                local,
                remote,
            } => {
                let mut local_prop = DeliveredProperty::default();
                // the local branch's operands are served from the guard's region
                for op in local.operand_set() {
                    local_prop = local_prop.join(&DeliveredProperty::local_leaf(guard.region, op));
                }
                DeliveredProperty::switch_union(&[local_prop, remote.delivered()])
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.delivered(),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.delivered().join(&right.delivered())
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                let inner_prop = match (&inner.guard, &inner.remote_sql) {
                    (Some(g), Some(_)) => DeliveredProperty::switch_union(&[
                        DeliveredProperty::local_leaf(g.region, inner.operand),
                        DeliveredProperty::remote_leaf([inner.operand]),
                    ]),
                    _ => DeliveredProperty::remote_leaf([inner.operand]),
                };
                outer.delivered().join(&inner_prop)
            }
        }
    }

    /// All operands contributing rows to this plan.
    pub fn operand_set(&self) -> BTreeSet<OperandId> {
        match self {
            PhysicalPlan::OneRow => BTreeSet::new(),
            PhysicalPlan::LocalScan(n) => [n.operand].into_iter().collect(),
            PhysicalPlan::RemoteQuery(n) => n.operands.clone(),
            PhysicalPlan::SwitchUnion { local, .. } => local.operand_set(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.operand_set(),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                let mut s = left.operand_set();
                s.extend(right.operand_set());
                s
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                let mut s = outer.operand_set();
                s.insert(inner.operand);
                s
            }
        }
    }

    /// The node's direct children, in the canonical traversal order
    /// (SwitchUnion: local then remote; joins: left/outer then right).
    /// An index-join's inner access is part of the join node, not a child.
    /// Walking `[self] ++ children (recursively)` yields the pre-order the
    /// flow analysis and its verifier pair certificates by.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::OneRow | PhysicalPlan::LocalScan(_) | PhysicalPlan::RemoteQuery(_) => {
                Vec::new()
            }
            PhysicalPlan::SwitchUnion { local, remote, .. } => vec![local, remote],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => vec![left, right],
            PhysicalPlan::IndexNLJoin { outer, .. } => vec![outer],
        }
    }

    /// Number of plan nodes (an index-join's inner access counts with its
    /// join node).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Number of currency guards in the plan.
    pub fn guard_count(&self) -> usize {
        match self {
            PhysicalPlan::OneRow => 0,
            PhysicalPlan::LocalScan(_) => 0,
            PhysicalPlan::RemoteQuery(_) => 0,
            PhysicalPlan::SwitchUnion { local, remote, .. } => {
                1 + local.guard_count() + remote.guard_count()
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.guard_count(),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.guard_count() + right.guard_count()
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                outer.guard_count() + usize::from(inner.guard.is_some())
            }
        }
    }

    /// Does any part of the plan reference the back-end (remote branches
    /// included)?
    pub fn touches_remote(&self) -> bool {
        match self {
            PhysicalPlan::OneRow => false,
            PhysicalPlan::LocalScan(_) => false,
            PhysicalPlan::RemoteQuery(_) => true,
            PhysicalPlan::SwitchUnion { local, remote, .. } => {
                local.touches_remote() || remote.touches_remote()
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.touches_remote(),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.touches_remote() || right.touches_remote()
            }
            PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
                outer.touches_remote() || inner.remote_sql.is_some()
            }
        }
    }

    /// Strip every currency guard, keeping the chosen branch — used by the
    /// guard-overhead experiments (paper Sec. 4.3) to build the
    /// "traditional plans without currency checking" baseline. `use_local`
    /// keeps local branches (the local baseline); otherwise remote
    /// branches are kept.
    pub fn strip_guards(&self, use_local: bool) -> PhysicalPlan {
        match self {
            PhysicalPlan::SwitchUnion { local, remote, .. } => {
                if use_local {
                    local.strip_guards(use_local)
                } else {
                    remote.strip_guards(use_local)
                }
            }
            PhysicalPlan::OneRow => PhysicalPlan::OneRow,
            PhysicalPlan::LocalScan(n) => PhysicalPlan::LocalScan(n.clone()),
            PhysicalPlan::RemoteQuery(n) => PhysicalPlan::RemoteQuery(n.clone()),
            PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
                input: Box::new(input.strip_guards(use_local)),
                predicate: predicate.clone(),
            },
            PhysicalPlan::Project { input, exprs } => PhysicalPlan::Project {
                input: Box::new(input.strip_guards(use_local)),
                exprs: exprs.clone(),
            },
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => PhysicalPlan::HashJoin {
                left: Box::new(left.strip_guards(use_local)),
                right: Box::new(right.strip_guards(use_local)),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                kind: *kind,
            },
            PhysicalPlan::MergeJoin {
                left,
                right,
                left_key,
                right_key,
                kind,
            } => PhysicalPlan::MergeJoin {
                left: Box::new(left.strip_guards(use_local)),
                right: Box::new(right.strip_guards(use_local)),
                left_key: left_key.clone(),
                right_key: right_key.clone(),
                kind: *kind,
            },
            PhysicalPlan::IndexNLJoin {
                outer,
                outer_key,
                inner,
                kind,
            } => {
                let mut inner = inner.clone();
                let had_guard = inner.guard.is_some();
                inner.guard = None;
                if !use_local && had_guard && inner.remote_sql.is_some() {
                    inner.force_remote = true;
                }
                PhysicalPlan::IndexNLJoin {
                    outer: Box::new(outer.strip_guards(use_local)),
                    outer_key: outer_key.clone(),
                    inner,
                    kind: *kind,
                }
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
                having,
            } => PhysicalPlan::HashAggregate {
                input: Box::new(input.strip_guards(use_local)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                having: having.clone(),
            },
            PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
                input: Box::new(input.strip_guards(use_local)),
                keys: keys.clone(),
            },
            PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
                input: Box::new(input.strip_guards(use_local)),
                n: *n,
            },
            PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
                input: Box::new(input.strip_guards(use_local)),
            },
        }
    }

    /// Multi-line EXPLAIN rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    /// One-line label for this node (no padding/children) — shared by
    /// [`PhysicalPlan::explain`] and the executor's EXPLAIN ANALYZE report.
    pub fn node_label(&self) -> String {
        match self {
            PhysicalPlan::OneRow => "OneRow".to_string(),
            PhysicalPlan::LocalScan(n) => {
                let access = match &n.access {
                    AccessPath::FullScan => "scan".to_string(),
                    AccessPath::ClusteredRange { column, .. } => {
                        format!("clustered seek on {column}")
                    }
                    AccessPath::IndexRange { index, column, .. } => {
                        format!("index {index} seek on {column}")
                    }
                };
                format!(
                    "LocalScan {} [{access}] (~{:.0} rows)",
                    n.object, n.est_rows
                )
            }
            PhysicalPlan::RemoteQuery(n) => {
                format!("RemoteQuery (~{:.0} rows): {}", n.est_rows, n.sql)
            }
            PhysicalPlan::SwitchUnion { guard, .. } => format!(
                "SwitchUnion [guard: {} fresh within {}]",
                guard.heartbeat_table, guard.bound
            ),
            PhysicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysicalPlan::Project { exprs, .. } => {
                let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                format!("Project [{}]", names.join(", "))
            }
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                kind,
                ..
            } => {
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                format!("HashJoin[{kind:?}] on {}", keys.join(" AND "))
            }
            PhysicalPlan::MergeJoin {
                left_key,
                right_key,
                kind,
                ..
            } => {
                format!("MergeJoin[{kind:?}] on {left_key} = {right_key}")
            }
            PhysicalPlan::IndexNLJoin {
                outer_key,
                inner,
                kind,
                ..
            } => {
                let guard = match &inner.guard {
                    Some(g) => format!(" [guard: {} fresh within {}]", g.heartbeat_table, g.bound),
                    None => String::new(),
                };
                format!(
                    "IndexNLJoin[{kind:?}] {outer_key} -> {}.{}{guard}",
                    inner.object, inner.seek_col
                )
            }
            PhysicalPlan::HashAggregate {
                group_by,
                aggs,
                having,
                ..
            } => {
                let gs: Vec<&str> = group_by.iter().map(|(_, n)| n.as_str()).collect();
                let asum: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        format!(
                            "{}({})",
                            a.func.sql(),
                            a.arg
                                .as_ref()
                                .map(|e| e.to_string())
                                .unwrap_or_else(|| "*".into())
                        )
                    })
                    .collect();
                let h = having
                    .as_ref()
                    .map(|h| format!(" having {h}"))
                    .unwrap_or_default();
                format!(
                    "HashAggregate by [{}] computing [{}]{h}",
                    gs.join(", "),
                    asum.join(", ")
                )
            }
            PhysicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(o, asc)| format!("#{o}{}", if *asc { "" } else { " desc" }))
                    .collect();
                format!("Sort [{}]", ks.join(", "))
            }
            PhysicalPlan::Limit { n, .. } => format!("Limit {n}"),
            PhysicalPlan::Distinct { .. } => "Distinct".to_string(),
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}", self.node_label());
        match self {
            PhysicalPlan::OneRow | PhysicalPlan::LocalScan(_) | PhysicalPlan::RemoteQuery(_) => {}
            PhysicalPlan::SwitchUnion { local, remote, .. } => {
                local.explain_into(out, depth + 1);
                remote.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::IndexNLJoin { outer, .. } => {
                outer.explain_into(out, depth + 1);
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => {
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType};

    fn scan(operand: OperandId) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: format!("v{operand}"),
            schema: Schema::new(vec![Column::new("id", DataType::Int).with_qualifier("t")]),
            access: AccessPath::FullScan,
            residual: None,
            operand,
            est_rows: 100.0,
        })
    }

    fn remote(ops: &[OperandId]) -> PhysicalPlan {
        PhysicalPlan::RemoteQuery(RemoteQueryNode {
            sql: "SELECT 1 x".into(),
            schema: Schema::new(vec![Column::new("id", DataType::Int).with_qualifier("t")]),
            operands: ops.iter().copied().collect(),
            est_rows: 100.0,
        })
    }

    fn guard(region: u32) -> CurrencyGuard {
        CurrencyGuard {
            region: RegionId(region),
            heartbeat_table: format!("heartbeat_cr{region}"),
            bound: Duration::from_secs(10),
        }
    }

    fn guarded(operand: OperandId, region: u32) -> PhysicalPlan {
        PhysicalPlan::SwitchUnion {
            guard: guard(region),
            local: Box::new(scan(operand)),
            remote: Box::new(remote(&[operand])),
        }
    }

    #[test]
    fn guard_counting() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(guarded(0, 1)),
            right: Box::new(guarded(1, 2)),
            left_keys: vec![],
            right_keys: vec![],
            kind: JoinKind::Inner,
        };
        assert_eq!(plan.guard_count(), 2);
        assert!(plan.touches_remote());
        assert_eq!(remote(&[0]).guard_count(), 0);
        assert!(!scan(0).touches_remote());
    }

    #[test]
    fn operand_sets_accumulate() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(guarded(0, 1)),
            right: Box::new(remote(&[1, 2])),
            left_keys: vec![],
            right_keys: vec![],
            kind: JoinKind::Inner,
        };
        assert_eq!(plan.operand_set(), [0, 1, 2].into_iter().collect());
    }

    #[test]
    fn delivered_property_of_guarded_leaf_is_mixed() {
        let d = guarded(0, 1).delivered();
        assert_eq!(d.groups.len(), 1);
        assert_eq!(d.groups[0].tag, crate::property::RegionTag::Mixed);
    }

    #[test]
    fn semi_join_schema_is_left_only() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            left_keys: vec![],
            right_keys: vec![],
            kind: JoinKind::Semi,
        };
        assert_eq!(plan.schema().len(), 1);
        let inner_plan = PhysicalPlan::HashJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            left_keys: vec![],
            right_keys: vec![],
            kind: JoinKind::Inner,
        };
        assert_eq!(inner_plan.schema().len(), 2);
    }

    #[test]
    fn strip_guards_keeps_chosen_branch() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(guarded(0, 1)),
            n: 5,
        };
        let local = plan.strip_guards(true);
        assert_eq!(local.guard_count(), 0);
        assert!(!local.touches_remote());
        let remote = plan.strip_guards(false);
        assert_eq!(remote.guard_count(), 0);
        assert!(remote.touches_remote());
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(guarded(0, 1)),
            n: 5,
        };
        let text = plan.explain();
        assert!(text.contains("Limit 5"));
        assert!(text.contains("SwitchUnion"));
        assert!(text.contains("heartbeat_cr1"));
        assert!(text.contains("LocalScan v0"));
        assert!(text.contains("RemoteQuery"));
    }
}
