#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Cost-based query optimizer with integrated currency & consistency
//! constraints — the paper's core contribution (Sec. 3.2).
//!
//! Pipeline:
//!
//! 1. **Bind** ([`graph`]): resolve a parsed SELECT against the catalog into
//!    a [`graph::QueryGraph`] — operands (base-table instances), equi-join
//!    edges, pushed filters, projections, aggregates — inlining FROM-clause
//!    subqueries and decorrelating `EXISTS`/`IN` into semi-joins. Currency
//!    clauses from every block are resolved to operand sets.
//! 2. **Normalize** ([`constraint`]): union all clauses and merge
//!    overlapping consistency classes with the min bound until disjoint
//!    (Sec. 3.2.1). No clause anywhere ⇒ the tight default (bound 0, all
//!    operands mutually consistent) so plain queries keep their traditional
//!    semantics.
//! 3. **Enumerate & cost** ([`optimize`]): per-operand access paths (remote
//!    query, or matching cached views wrapped in SwitchUnion + currency
//!    guard — [`viewmatch`]), then dynamic-programming join enumeration.
//!    Plans are pruned with the paper's *conflict* / *violation* rules as
//!    they are built and the *satisfaction* rule at the root
//!    ([`property`]); local alternatives whose region can never meet the
//!    bound (`B < d`) are discarded at compile time. SwitchUnion branches
//!    are costed with `c = p·c_local + (1−p)·c_remote + c_cg`,
//!    `p = clamp((B−d)/f, 0, 1)` ([`cost`], Sec. 3.2.4).
//!
//! The output is a [`physical::PhysicalPlan`] executed by `rcc-executor`.
//! Where SQL Server uses a full Cascades memo, we use per-operand
//! alternative sets plus Selinger-style DP — the same search space for the
//! paper's workloads, with identical property machinery.

pub mod constraint;
pub mod cost;
pub mod expr;
pub mod graph;
pub mod optimize;
pub mod ordering;
pub mod physical;
pub mod property;
pub mod sqlgen;
pub mod viewmatch;

pub use constraint::{CCClass, CCConstraint, OperandId};
pub use expr::{AggCall, AggFunc, BoundExpr};
pub use graph::{bind_select, JoinEdge, Operand, QueryGraph};
pub use optimize::{optimize, OptimizerConfig, PlanChoice, Role};
pub use ordering::{delivered_order, OrderProp};
pub use physical::{CurrencyGuard, PhysicalPlan};
pub use property::{DeliveredProperty, RegionTag};
