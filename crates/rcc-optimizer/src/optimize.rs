//! Plan enumeration and selection.
//!
//! "Optimization is entirely cost based" (paper Sec. 3). For each operand
//! the enumerator builds the available access paths — a remote fetch, and
//! one guarded SwitchUnion per matching cached view (discarded at compile
//! time when the bound can never be met: `B < d`, Sec. 3.2.2 last
//! paragraph) — then runs Selinger-style dynamic programming over join
//! orders with hash and index-nested-loop methods. Partial plans violating
//! the consistency rules are pruned as they are built; at the root the
//! satisfaction rule filters the candidates, the fully remote plan is
//! always among them, and the cheapest survivor wins.
//!
//! Per DP subset the enumerator keeps the cheapest candidate *per delivered
//! consistency property* (the memo-with-properties discipline of
//! transformation-based optimizers): a pricier sub-plan whose property can
//! still satisfy the constraint must not be shadowed by a cheaper one that
//! cannot.

use crate::constraint::OperandId;
use crate::cost::{filter_selectivity, CostParams};
use crate::expr::BoundExpr;
use crate::graph::{JoinKind, QueryGraph};
use crate::ordering::delivered_order;
use crate::physical::{
    AccessPath, CurrencyGuard, InnerAccess, LocalScanNode, PhysicalPlan, RemoteQueryNode,
};
use crate::property::DeliveredProperty;
use crate::sqlgen;
use crate::viewmatch;
use rcc_catalog::Catalog;
use rcc_common::{Error, Result};
use std::collections::{BTreeSet, HashMap};

/// Which server the plan is produced for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The mid-tier cache: base tables are reachable only through cached
    /// views (guarded) or remote queries.
    Cache,
    /// The back-end server: every base table is local and current.
    Backend,
}

/// Optimizer settings.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Server role.
    pub role: Role,
    /// Enable the paper's future-work *SwitchUnion pull-up*: when every
    /// operand of a consistency class has a view in one region, consider a
    /// single guard over the whole local sub-plan instead of per-leaf
    /// guards — this lets multi-table consistency classes be answered
    /// locally.
    pub pullup_switch_union: bool,
    /// Cost constants.
    pub cost: CostParams,
    /// Whether the back-end can be reached. When false (the *traditional
    /// replicated database* scenario — a replica with no master link), the
    /// optimizer never plans plain remote fetches or fully remote queries;
    /// guarded local plans keep their remote branch, which then acts as the
    /// run-time violation detector.
    pub backend_available: bool,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            role: Role::Cache,
            pullup_switch_union: false,
            cost: CostParams::default(),
            backend_available: true,
        }
    }
}

impl OptimizerConfig {
    /// Config for the back-end server.
    pub fn backend() -> OptimizerConfig {
        OptimizerConfig {
            role: Role::Backend,
            ..OptimizerConfig::default()
        }
    }
}

/// Shape classification of the chosen plan, mirroring the paper's plans
/// 1–5 (Fig. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// Plan 1: the whole query shipped to the back-end.
    FullRemote,
    /// Plan 2: base tables fetched remotely, joined locally.
    RemoteFetchLocalJoin,
    /// Plan 4: some inputs local (guarded), some remote.
    Mixed,
    /// Plan 5: every input served by a guarded local view.
    AllLocalGuarded,
    /// Back-end role: everything local and current.
    BackendLocal,
    /// Extension: one pulled-up SwitchUnion over a fully local sub-plan.
    PulledUpSwitchUnion,
}

/// The optimizer's output.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The executable plan.
    pub plan: PhysicalPlan,
    /// Estimated cost in abstract units.
    pub cost: f64,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Shape classification.
    pub choice: PlanChoice,
}

#[derive(Debug, Clone)]
struct Cand {
    plan: PhysicalPlan,
    cost: f64,
    rows: f64,
    delivered: DeliveredProperty,
    applied_residuals: BTreeSet<usize>,
}

/// Optimize a bound query graph.
pub fn optimize(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
) -> Result<Optimized> {
    if graph.operands.is_empty() {
        let plan = finish(catalog, graph, config, PhysicalPlan::OneRow, 1.0).0;
        return Ok(Optimized {
            plan,
            cost: 1.0,
            est_rows: 1.0,
            choice: PlanChoice::BackendLocal,
        });
    }

    let n = graph.operands.len();
    if n > 20 {
        return Err(Error::analysis(
            "too many tables in one query block (max 20)",
        ));
    }

    // ---------- per-operand access alternatives
    let mut leaf_alts: Vec<Vec<Cand>> = Vec::with_capacity(n);
    for id in 0..n as OperandId {
        let alts = operand_alternatives(catalog, graph, config, id)?;
        if alts.is_empty() {
            return Err(Error::NoPlan(format!(
                "no access path for operand {} ({})",
                id,
                graph.operand(id).binding
            )));
        }
        leaf_alts.push(alts);
    }

    // ---------- DP over join orders
    let full_mask: u64 = (1 << n) - 1;
    // best candidates per (mask): cheapest per delivered-property signature
    let mut memo: HashMap<u64, Vec<Cand>> = HashMap::new();
    #[allow(clippy::needless_range_loop)]
    for id in 0..n {
        if graph.operand(id as OperandId).existential {
            continue; // existential operands never stand alone
        }
        let mut cands = leaf_alts[id].clone();
        for c in &mut cands {
            apply_ready_residuals(graph, config, c, 1 << id);
        }
        memo.insert(1 << id, prune(cands));
    }

    let masks_by_size = |memo: &HashMap<u64, Vec<Cand>>, size: u32| -> Vec<u64> {
        let mut m: Vec<u64> = memo
            .keys()
            .copied()
            .filter(|m| m.count_ones() == size)
            .collect();
        m.sort();
        m
    };

    for size in 1..n as u32 {
        for mask in masks_by_size(&memo, size) {
            let lefts = memo.get(&mask).cloned().unwrap_or_default();
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                let bit = 1u64 << j;
                if mask & bit != 0 {
                    continue;
                }
                let j_id = j as OperandId;
                // connecting edges between mask and j
                let edges: Vec<&crate::graph::JoinEdge> = graph
                    .edges
                    .iter()
                    .filter(|e| {
                        (mask & (1 << e.left) != 0 && e.right == j_id)
                            || (mask & (1 << e.right) != 0
                                && e.left == j_id
                                && e.kind == JoinKind::Inner)
                    })
                    .collect();
                let op_j = graph.operand(j_id);
                if op_j.existential {
                    // all semi/anti edges for j must have their outer side present
                    let ready = graph
                        .edges
                        .iter()
                        .filter(|e| e.right == j_id && e.kind != JoinKind::Inner)
                        .all(|e| mask & (1 << e.left) != 0);
                    if !ready || edges.is_empty() {
                        continue;
                    }
                } else if edges.is_empty() {
                    // allow cross joins only when j connects to nothing at all
                    let connects_somewhere = graph
                        .edges
                        .iter()
                        .any(|e| e.left == j_id || e.right == j_id);
                    if connects_somewhere {
                        continue;
                    }
                }

                let new_mask = mask | bit;
                let mut new_cands = Vec::new();
                for left in &lefts {
                    for alt in &leaf_alts[j] {
                        if let Some(c) =
                            try_hash_join(catalog, graph, config, left, alt, j_id, &edges)
                        {
                            new_cands.push(c);
                        }
                        if let Some(c) =
                            try_merge_join(catalog, graph, config, left, alt, j_id, &edges)
                        {
                            new_cands.push(c);
                        }
                    }
                    if let Some(c) = try_index_nl_join(catalog, graph, config, left, j_id, &edges) {
                        new_cands.push(c);
                    }
                }
                let mut new_cands: Vec<Cand> = new_cands
                    .into_iter()
                    .filter(|c| !c.delivered.violates(&graph.constraint))
                    .collect();
                for c in &mut new_cands {
                    apply_ready_residuals(graph, config, c, new_mask);
                }
                let entry = memo.entry(new_mask).or_default();
                entry.extend(new_cands);
                let pruned = prune(std::mem::take(entry));
                *entry = pruned;
            }
        }
    }

    // ---------- root alternatives
    // the bool records whether the candidate still needs the finishing
    // operators (projection/aggregation/sort/limit): memo plans do, fully
    // remote and pulled-up plans computed them already
    let mut root: Vec<(Cand, PlanChoice, bool)> = Vec::new();
    if let Some(cands) = memo.get(&full_mask) {
        for c in cands {
            if c.delivered.satisfies(&graph.constraint) {
                let choice = classify(&c.plan, config.role);
                root.push((c.clone(), choice, true));
            }
        }
    }

    if config.role == Role::Cache && config.backend_available {
        // the fully remote plan is always available and always satisfies
        let (sql, schema) = sqlgen::full_query_sql(graph);
        let (rows, bytes_per_row, backend_cost) = estimate_full_query(catalog, graph, config);
        let cost = config.cost.remote(backend_cost, rows, bytes_per_row);
        let plan = PhysicalPlan::RemoteQuery(RemoteQueryNode {
            sql,
            schema,
            operands: (0..n as OperandId).collect(),
            est_rows: rows,
        });
        root.push((
            Cand {
                plan,
                cost,
                rows,
                delivered: DeliveredProperty::remote_leaf(0..n as OperandId),
                applied_residuals: (0..graph.residuals.len()).collect(),
            },
            PlanChoice::FullRemote,
            false,
        ));

        if config.pullup_switch_union {
            if let Some((cand, choice)) = try_pullup(catalog, graph, config) {
                root.push((cand, choice, false));
            }
        }
    }

    let (best, choice, needs_finish) = root
        .into_iter()
        .min_by(|a, b| a.0.cost.total_cmp(&b.0.cost))
        .ok_or_else(|| {
            Error::NoPlan(format!(
                "no plan satisfies the consistency constraint {}",
                graph.constraint
            ))
        })?;

    // Whole-query-remote plans perform aggregation/ordering/projection at
    // the back-end, and pulled-up SwitchUnions finished both branches in
    // try_pullup; everything out of the memo gets the local finishing
    // operators here.
    let (plan, cost, rows) = if needs_finish {
        let (plan, extra, rows) = finish(catalog, graph, config, best.plan, best.rows);
        (plan, best.cost + extra, rows)
    } else {
        (best.plan, best.cost, best.rows)
    };

    Ok(Optimized {
        plan,
        cost,
        est_rows: rows,
        choice,
    })
}

// ------------------------------------------------------------ leaf access

fn operand_alternatives(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
    id: OperandId,
) -> Result<Vec<Cand>> {
    let mut alts = Vec::new();
    if config.role == Role::Backend {
        let scan = viewmatch::master_scan(catalog, graph, id);
        let stats = catalog.stats(&graph.operand(id).table.name);
        let cost = scan_cost(config, &scan, stats.row_count as f64);
        let rows = scan.est_rows;
        alts.push(Cand {
            plan: PhysicalPlan::LocalScan(scan),
            cost,
            rows,
            delivered: DeliveredProperty::remote_leaf([id]),
            applied_residuals: BTreeSet::new(),
        });
        return Ok(alts);
    }

    // remote fetch of this operand
    let remote = remote_fetch(catalog, graph, config, id);
    let remote_cost = remote.1;
    let rows = remote.2;
    if config.backend_available {
        alts.push(Cand {
            plan: PhysicalPlan::RemoteQuery(remote.0.clone()),
            cost: remote.1,
            rows,
            delivered: DeliveredProperty::remote_leaf([id]),
            applied_residuals: BTreeSet::new(),
        });
    }

    // guarded local views
    let bound = graph.constraint.bound_of(id);
    for m in viewmatch::match_views(catalog, graph, id) {
        // compile-time discard: the region can never meet the bound
        if bound < m.region.min_guaranteed_currency() || bound.is_zero() {
            continue;
        }
        let view_stats = {
            let s = catalog.stats(&m.view.name);
            if s.row_count > 0 {
                s
            } else {
                catalog.stats(&graph.operand(id).table.name)
            }
        };
        let local_cost = scan_cost(config, &m.scan, view_stats.row_count as f64);
        let p = config.cost.p_local(bound, &m.region);
        let guard = CurrencyGuard {
            region: m.region.id,
            heartbeat_table: m.region.heartbeat_table_name(),
            bound,
        };
        let est_rows = m.scan.est_rows;
        let cost = config
            .cost
            .switch_union(p, local_cost, remote_cost, est_rows);
        let plan = PhysicalPlan::SwitchUnion {
            guard,
            local: Box::new(PhysicalPlan::LocalScan(m.scan)),
            remote: Box::new(PhysicalPlan::RemoteQuery(remote.0.clone())),
        };
        let delivered = plan.delivered();
        alts.push(Cand {
            plan,
            cost,
            rows: est_rows,
            delivered,
            applied_residuals: BTreeSet::new(),
        });
    }
    Ok(alts)
}

/// Remote fetch node + cost + estimated rows for one operand.
fn remote_fetch(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
    id: OperandId,
) -> (RemoteQueryNode, f64, f64) {
    let required = graph.required_columns(id);
    let (sql, schema) = sqlgen::operand_sql(graph, id, &required);
    // what the back-end pays to serve it
    let master = viewmatch::master_scan(catalog, graph, id);
    let stats = catalog.stats(&graph.operand(id).table.name);
    let backend_cost = scan_cost(config, &master, stats.row_count as f64);
    let rows = master.est_rows;
    let bytes_per_row = schema.estimated_row_width() as f64;
    let cost = config.cost.remote(backend_cost, rows, bytes_per_row);
    (
        RemoteQueryNode {
            sql,
            schema,
            operands: [id].into_iter().collect(),
            est_rows: rows,
        },
        cost,
        rows,
    )
}

fn scan_cost(config: &OptimizerConfig, scan: &LocalScanNode, total_rows: f64) -> f64 {
    match &scan.access {
        AccessPath::FullScan => config.cost.scan(total_rows, scan.est_rows),
        AccessPath::ClusteredRange { .. } => {
            // touched rows ≈ output rows before residual; est_rows already
            // includes all filters, which is close enough for ranges that
            // drive the access path
            config.cost.range_seek(scan.est_rows.max(1.0))
        }
        AccessPath::IndexRange { .. } => config.cost.index_range(scan.est_rows.max(1.0)),
    }
}

// ------------------------------------------------------------------ joins

fn try_hash_join(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
    left: &Cand,
    right: &Cand,
    right_id: OperandId,
    edges: &[&crate::graph::JoinEdge],
) -> Option<Cand> {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut kind = JoinKind::Inner;
    for e in edges {
        // orient: the side already in `left` provides the probe key
        if e.right == right_id {
            left_keys.push(BoundExpr::col(&graph.operand(e.left).binding, &e.left_col));
            right_keys.push(BoundExpr::col(
                &graph.operand(e.right).binding,
                &e.right_col,
            ));
            if e.kind != JoinKind::Inner {
                kind = e.kind;
            }
        } else {
            left_keys.push(BoundExpr::col(
                &graph.operand(e.right).binding,
                &e.right_col,
            ));
            right_keys.push(BoundExpr::col(&graph.operand(e.left).binding, &e.left_col));
        }
    }
    let _ = right_id;
    let out_rows = join_cardinality(catalog, graph, left.rows, right.rows, edges, kind);
    let cost = left.cost + right.cost + config.cost.hash_join(left.rows, right.rows, out_rows);
    let plan = PhysicalPlan::HashJoin {
        left: Box::new(left.plan.clone()),
        right: Box::new(right.plan.clone()),
        left_keys,
        right_keys,
        kind,
    };
    let delivered = left.delivered.join(&right.delivered);
    let mut applied = left.applied_residuals.clone();
    applied.extend(right.applied_residuals.iter().copied());
    Some(Cand {
        plan,
        cost,
        rows: out_rows,
        delivered,
        applied_residuals: applied,
    })
}

/// Merge join: admissible only when *both* inputs already deliver the
/// join-key order (no sort enforcers are inserted — BTree scans provide
/// key order for free, which is the case the paper's sort-property example
/// is about). Inner joins only; semi/anti stay on the hash path.
fn try_merge_join(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
    left: &Cand,
    right: &Cand,
    right_id: OperandId,
    edges: &[&crate::graph::JoinEdge],
) -> Option<Cand> {
    if edges.len() != 1 || edges[0].kind != JoinKind::Inner {
        return None;
    }
    let e = edges[0];
    let (left_key, right_key) = if e.right == right_id {
        (
            BoundExpr::col(&graph.operand(e.left).binding, &e.left_col),
            BoundExpr::col(&graph.operand(e.right).binding, &e.right_col),
        )
    } else {
        (
            BoundExpr::col(&graph.operand(e.right).binding, &e.right_col),
            BoundExpr::col(&graph.operand(e.left).binding, &e.left_col),
        )
    };
    // required sort properties: each input must deliver its key's order
    let lo = delivered_order(&left.plan)?;
    if !lo.matches(&left_key) {
        return None;
    }
    let ro = delivered_order(&right.plan)?;
    if !ro.matches(&right_key) {
        return None;
    }
    let out_rows = join_cardinality(
        catalog,
        graph,
        left.rows,
        right.rows,
        edges,
        JoinKind::Inner,
    );
    // linear merge: one pass over each input plus output materialization
    let cost = left.cost
        + right.cost
        + (left.rows + right.rows) * config.cost.cpu_row
        + out_rows * config.cost.output_row;
    let plan = PhysicalPlan::MergeJoin {
        left: Box::new(left.plan.clone()),
        right: Box::new(right.plan.clone()),
        left_key,
        right_key,
        kind: JoinKind::Inner,
    };
    let delivered = left.delivered.join(&right.delivered);
    let mut applied = left.applied_residuals.clone();
    applied.extend(right.applied_residuals.iter().copied());
    Some(Cand {
        plan,
        cost,
        rows: out_rows,
        delivered,
        applied_residuals: applied,
    })
}

fn try_index_nl_join(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
    left: &Cand,
    right_id: OperandId,
    edges: &[&crate::graph::JoinEdge],
) -> Option<Cand> {
    // need exactly one connecting equi edge whose inner column is seekable
    if edges.len() != 1 {
        return None;
    }
    let e = edges[0];
    let (outer_binding, outer_col, inner_col, kind) = if e.right == right_id {
        (
            &graph.operand(e.left).binding,
            &e.left_col,
            &e.right_col,
            e.kind,
        )
    } else {
        (
            &graph.operand(e.right).binding,
            &e.right_col,
            &e.left_col,
            JoinKind::Inner,
        )
    };
    let op = graph.operand(right_id);
    let stats = catalog.stats(&op.table.name);
    let distinct = stats.column(inner_col).distinct.max(1) as f64;
    let table_rows = stats.row_count as f64;
    let sel = filter_selectivity(&op.filters, &stats);
    let per_probe = (table_rows / distinct * sel).max(0.0);

    let bound = graph.constraint.bound_of(right_id);
    let required = graph.required_columns(right_id);

    let (inner, local_nl_cost, guarded) = match config.role {
        Role::Backend => {
            // seek the master table: leading clustered key or secondary ix
            let use_index = if op.table.is_leading_key(inner_col) {
                None
            } else {
                Some(op.table.index_on(inner_col)?.name.clone())
            };
            let inner = InnerAccess {
                object: op.table.name.clone(),
                schema: viewmatch::operand_schema(graph, right_id, &required),
                seek_col: inner_col.clone(),
                use_index,
                residual: BoundExpr::and_all(op.filters.clone()),
                guard: None,
                remote_sql: None,
                operand: right_id,
                est_rows_per_probe: per_probe,
                force_remote: false,
            };
            let cost = config.cost.index_nl_join(left.rows, per_probe);
            (inner, cost, false)
        }
        Role::Cache => {
            // seek a guarded local view
            let m = viewmatch::match_views(catalog, graph, right_id)
                .into_iter()
                .find(|m| {
                    m.view.is_leading_key(inner_col) || m.view.local_index_on(inner_col).is_some()
                })?;
            if bound < m.region.min_guaranteed_currency() || bound.is_zero() {
                return None;
            }
            let use_index = if m.view.is_leading_key(inner_col) {
                None
            } else {
                m.view.local_index_on(inner_col).map(str::to_string)
            };
            let (remote_node, remote_cost, _) = remote_fetch(catalog, graph, config, right_id);
            let guard = CurrencyGuard {
                region: m.region.id,
                heartbeat_table: m.region.heartbeat_table_name(),
                bound,
            };
            let p = config.cost.p_local(bound, &m.region);
            let nl_local = config.cost.index_nl_join(left.rows, per_probe);
            let fallback = remote_cost
                + config
                    .cost
                    .hash_join(left.rows, remote_node.est_rows, left.rows * per_probe);
            let blended = config
                .cost
                .switch_union(p, nl_local, fallback, left.rows * per_probe);
            let inner = InnerAccess {
                object: m.view.name.clone(),
                schema: viewmatch::operand_schema(graph, right_id, &required),
                seek_col: inner_col.clone(),
                use_index,
                residual: BoundExpr::and_all(op.filters.clone()),
                guard: Some(guard),
                remote_sql: Some(remote_node.sql),
                operand: right_id,
                est_rows_per_probe: per_probe,
                force_remote: false,
            };
            (inner, blended, true)
        }
    };
    let _ = guarded;

    let out_rows = match kind {
        JoinKind::Inner => left.rows * per_probe,
        _ => join_cardinality(
            catalog,
            graph,
            left.rows,
            per_probe * left.rows,
            edges,
            kind,
        ),
    };
    let plan = PhysicalPlan::IndexNLJoin {
        outer: Box::new(left.plan.clone()),
        outer_key: BoundExpr::col(outer_binding, outer_col),
        inner,
        kind,
    };
    let delivered = plan.delivered();
    Some(Cand {
        plan,
        cost: left.cost + local_nl_cost,
        rows: out_rows.max(0.0),
        delivered,
        applied_residuals: left.applied_residuals.clone(),
    })
}

fn join_cardinality(
    catalog: &Catalog,
    graph: &QueryGraph,
    left_rows: f64,
    right_rows: f64,
    edges: &[&crate::graph::JoinEdge],
    kind: JoinKind,
) -> f64 {
    // classic containment assumption: |L ⋈ R| = |L|·|R| / max(d_l, d_r)
    // per equi edge, with distinct counts from base-table statistics
    let mut inner = left_rows * right_rows;
    let mut d_left_max = 1.0f64;
    for e in edges {
        let d_l = catalog
            .stats(&graph.operand(e.left).table.name)
            .column(&e.left_col)
            .distinct
            .max(1) as f64;
        let d_r = catalog
            .stats(&graph.operand(e.right).table.name)
            .column(&e.right_col)
            .distinct
            .max(1) as f64;
        inner /= d_l.max(d_r);
        d_left_max = d_left_max.max(d_l);
    }
    if edges.is_empty() {
        // cross join
        return match kind {
            JoinKind::Inner => inner,
            JoinKind::Semi => left_rows,
            JoinKind::Anti => 1.0,
        };
    }
    match kind {
        JoinKind::Inner => inner.max(0.0),
        JoinKind::Semi => {
            // P(left row has a match) ≈ min(1, |R| / d_left)
            let p = (right_rows / d_left_max).min(1.0);
            (left_rows * p).max(1.0)
        }
        JoinKind::Anti => {
            let p = (right_rows / d_left_max).min(1.0);
            (left_rows * (1.0 - p)).max(1.0)
        }
    }
}

// --------------------------------------------------------------- residuals

fn apply_ready_residuals(graph: &QueryGraph, config: &OptimizerConfig, cand: &mut Cand, mask: u64) {
    let bindings: BTreeSet<&str> = graph
        .operands
        .iter()
        .filter(|o| mask & (1 << o.id) != 0)
        .map(|o| o.binding.as_str())
        .collect();
    for (i, r) in graph.residuals.iter().enumerate() {
        if cand.applied_residuals.contains(&i) {
            continue;
        }
        let refs = r.referenced_qualifiers();
        if refs.iter().all(|q| bindings.contains(q.as_str())) {
            cand.plan = PhysicalPlan::Filter {
                input: Box::new(cand.plan.clone()),
                predicate: r.clone(),
            };
            cand.cost += cand.rows * config.cost.cpu_row;
            cand.rows = (cand.rows * 0.33).max(0.0);
            cand.applied_residuals.insert(i);
        }
    }
}

// ----------------------------------------------------------------- pruning

fn prop_signature(p: &DeliveredProperty) -> String {
    let mut parts: Vec<String> = p
        .groups
        .iter()
        .map(|g| {
            let ops: Vec<String> = g.operands.iter().map(|o| o.to_string()).collect();
            format!("{}:{}", g.tag, ops.join("."))
        })
        .collect();
    parts.sort();
    parts.join("|")
}

fn prune(cands: Vec<Cand>) -> Vec<Cand> {
    let mut best: HashMap<String, Cand> = HashMap::new();
    for c in cands {
        // keep the cheapest per (consistency property, delivered order,
        // applied residuals): an ordered-but-pricier sub-plan may enable a
        // merge join above and must not be shadowed
        let order = delivered_order(&c.plan)
            .map(|o| format!("{}.{}", o.qualifier, o.column))
            .unwrap_or_default();
        let sig = format!(
            "{}#{:?}#{order}",
            prop_signature(&c.delivered),
            c.applied_residuals
        );
        match best.get(&sig) {
            Some(existing) if existing.cost <= c.cost => {}
            _ => {
                best.insert(sig, c);
            }
        }
    }
    let mut out: Vec<Cand> = best.into_values().collect();
    out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    out.truncate(12);
    out
}

// ------------------------------------------------------------- finishing

/// Attach aggregation, distinct, projection, sort and limit. Returns the
/// finished plan, the extra cost, and the final row estimate.
fn finish(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
    mut plan: PhysicalPlan,
    mut rows: f64,
) -> (PhysicalPlan, f64, f64) {
    let _ = catalog;
    let mut extra = 0.0;
    match &graph.aggregate {
        Some(agg) => {
            let groups = if agg.group_by.is_empty() {
                1.0
            } else {
                (rows / 10.0).max(1.0)
            };
            extra += config.cost.aggregate(rows, groups);
            plan = PhysicalPlan::HashAggregate {
                input: Box::new(plan),
                group_by: agg.group_by.clone(),
                aggs: agg.aggs.clone(),
                having: agg.having.clone(),
            };
            rows = groups;
            // rename #agg columns to plain output names
            let out = graph.output_schema();
            let exprs: Vec<(BoundExpr, String)> = out
                .columns()
                .iter()
                .map(|c| (BoundExpr::col("#agg", &c.name), c.name.clone()))
                .collect();
            extra += rows * config.cost.cpu_row;
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                exprs,
            };
        }
        None => {
            extra += rows * config.cost.cpu_row;
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                exprs: graph.projections.clone(),
            };
        }
    }
    if graph.distinct {
        extra += rows * config.cost.hash_build;
        plan = PhysicalPlan::Distinct {
            input: Box::new(plan),
        };
        rows = (rows * 0.9).max(1.0);
    }
    if !graph.order_by.is_empty() {
        // sort elision via the delivered order property: a single ascending
        // ORDER BY over a column the plan already delivers in order (e.g. a
        // clustered-range scan) needs no Sort operator
        let elidable = match (graph.order_by.as_slice(), &graph.aggregate) {
            ([(ordinal, true)], None) => graph
                .projections
                .get(*ordinal)
                .and_then(|(expr, _)| {
                    // the Project on top preserved the column; check what
                    // the plan under it delivers
                    delivered_order(&plan).map(|o| o.matches(expr))
                })
                .unwrap_or(false),
            _ => false,
        };
        if !elidable {
            extra += config.cost.sort(rows);
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys: graph.order_by.clone(),
            };
        }
    }
    if let Some(nl) = graph.limit {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            n: nl,
        };
        rows = rows.min(nl as f64);
    }
    (plan, extra, rows)
}

// ------------------------------------------------------- full-query remote

fn estimate_full_query(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
) -> (f64, f64, f64) {
    // back-end execution: best access per operand, then joins in operand
    // order, each costed as min(hash join, index NL when the join column
    // leads the inner's clustered key)
    let mut backend_cost = 0.0;
    let mut rows = 0.0f64;
    let mut width = 0.0f64;
    let mut joined: Vec<OperandId> = Vec::new();
    for op in &graph.operands {
        let scan = viewmatch::master_scan(catalog, graph, op.id);
        let stats = catalog.stats(&op.table.name);
        let scan_c = scan_cost(config, &scan, stats.row_count as f64);
        let op_rows = scan.est_rows;
        if joined.is_empty() {
            backend_cost += scan_c;
            rows = op_rows;
            if !op.existential {
                let required = graph.required_columns(op.id);
                width =
                    viewmatch::operand_schema(graph, op.id, &required).estimated_row_width() as f64;
            }
            joined.push(op.id);
            continue;
        }
        let edges: Vec<&crate::graph::JoinEdge> = graph
            .edges
            .iter()
            .filter(|e| {
                (joined.contains(&e.left) && e.right == op.id)
                    || (joined.contains(&e.right) && e.left == op.id)
            })
            .collect();
        let kind = edges
            .iter()
            .find(|e| e.kind != JoinKind::Inner)
            .map(|e| e.kind)
            .unwrap_or(JoinKind::Inner);
        let out = join_cardinality(catalog, graph, rows, op_rows, &edges, kind);
        // hash: scan the operand fully and build
        let hash = scan_c + config.cost.hash_join(rows, op_rows, out);
        // NL: seek the operand's clustered key per outer row, if possible
        let nl = edges
            .iter()
            .find(|e| {
                let (inner_col, inner_op) = if e.right == op.id {
                    (&e.right_col, e.right)
                } else {
                    (&e.left_col, e.left)
                };
                inner_op == op.id && op.table.is_leading_key(inner_col)
            })
            .map(|_| {
                let d = stats
                    .column(op.table.key.first().map(String::as_str).unwrap_or(""))
                    .distinct
                    .max(1) as f64;
                let per_probe = stats.row_count as f64 / d;
                config.cost.index_nl_join(rows, per_probe)
            })
            .unwrap_or(f64::INFINITY);
        backend_cost += hash.min(nl);
        rows = out;
        if !op.existential {
            let required = graph.required_columns(op.id);
            width +=
                viewmatch::operand_schema(graph, op.id, &required).estimated_row_width() as f64;
        }
        joined.push(op.id);
    }
    // residuals cut cardinality
    for _ in &graph.residuals {
        rows *= 0.33;
    }
    // aggregation shrinks the shipped result
    if graph.aggregate.is_some() {
        rows = (rows / 10.0).max(1.0);
        width = graph.output_schema().estimated_row_width() as f64;
    } else if !graph.projections.is_empty() {
        // shipped width is the projected width
        width = (graph.projections.len() as f64 * 10.0).min(width).max(8.0);
    }
    if let Some(nl) = graph.limit {
        rows = rows.min(nl as f64);
    }
    (rows.max(1.0), width.max(8.0), backend_cost)
}

// -------------------------------------------------------------- pull-up

/// The SwitchUnion pull-up extension: if every operand has a matching view
/// and all those views live in ONE region, build
/// `SwitchUnion(local-only join plan, full remote)` with a single guard
/// whose bound is the tightest class bound.
fn try_pullup(
    catalog: &Catalog,
    graph: &QueryGraph,
    config: &OptimizerConfig,
) -> Option<(Cand, PlanChoice)> {
    let mut region = None;
    let mut scans = Vec::new();
    for op in &graph.operands {
        let m = viewmatch::match_views(catalog, graph, op.id)
            .into_iter()
            .next()?;
        match region {
            None => region = Some(m.region.clone()),
            Some(ref r) if r.id == m.region.id => {}
            _ => return None,
        }
        scans.push(m);
    }
    let region = region?;
    let bound = graph
        .constraint
        .classes
        .iter()
        .map(|c| c.bound)
        .min()
        .unwrap_or(rcc_common::Duration::ZERO);
    if bound < region.min_guaranteed_currency() || bound.is_zero() {
        return None;
    }

    // local-only plan: left-deep hash joins in operand order
    let mut iter = scans.into_iter();
    let first = iter.next()?;
    let mut local = PhysicalPlan::LocalScan(first.scan.clone());
    let mut local_cost = scan_cost(
        config,
        &first.scan,
        catalog.stats(&first.view.name).row_count.max(1) as f64,
    );
    let mut rows = first.scan.est_rows;
    let mut joined: Vec<OperandId> = vec![first.scan.operand];
    for m in iter {
        let edges: Vec<&crate::graph::JoinEdge> = graph
            .edges
            .iter()
            .filter(|e| {
                (joined.contains(&e.left) && e.right == m.scan.operand)
                    || (joined.contains(&e.right) && e.left == m.scan.operand)
            })
            .collect();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut kind = JoinKind::Inner;
        for e in &edges {
            if e.right == m.scan.operand {
                left_keys.push(BoundExpr::col(&graph.operand(e.left).binding, &e.left_col));
                right_keys.push(BoundExpr::col(
                    &graph.operand(e.right).binding,
                    &e.right_col,
                ));
                if e.kind != JoinKind::Inner {
                    kind = e.kind;
                }
            } else {
                left_keys.push(BoundExpr::col(
                    &graph.operand(e.right).binding,
                    &e.right_col,
                ));
                right_keys.push(BoundExpr::col(&graph.operand(e.left).binding, &e.left_col));
            }
        }
        let right_rows = m.scan.est_rows;
        local_cost += scan_cost(
            config,
            &m.scan,
            catalog.stats(&m.view.name).row_count.max(1) as f64,
        ) + config
            .cost
            .hash_join(rows, right_rows, rows.max(right_rows));
        rows = match kind {
            JoinKind::Inner => rows.max(right_rows),
            JoinKind::Semi => rows * 0.8,
            JoinKind::Anti => rows * 0.2,
        };
        joined.push(m.scan.operand);
        local = PhysicalPlan::HashJoin {
            left: Box::new(local),
            right: Box::new(PhysicalPlan::LocalScan(m.scan)),
            left_keys,
            right_keys,
            kind,
        };
    }

    let (sql, schema) = sqlgen::full_query_sql(graph);
    let (r_rows, r_width, backend_cost) = estimate_full_query(catalog, graph, config);
    let remote_cost = config.cost.remote(backend_cost, r_rows, r_width);
    // the remote branch computes the FULL query, so the local branch must
    // be finished to the same shape before being unioned
    let (local_finished, local_extra, _) = finish(catalog, graph, config, local, rows);
    let remote_plan = PhysicalPlan::RemoteQuery(RemoteQueryNode {
        sql,
        schema,
        operands: (0..graph.operands.len() as OperandId).collect(),
        est_rows: r_rows,
    });
    let p = config.cost.p_local(bound, &region);
    let cost = config
        .cost
        .switch_union(p, local_cost + local_extra, remote_cost, rows);
    let guard = CurrencyGuard {
        region: region.id,
        heartbeat_table: region.heartbeat_table_name(),
        bound,
    };
    let plan = PhysicalPlan::SwitchUnion {
        guard,
        local: Box::new(local_finished),
        remote: Box::new(remote_plan),
    };
    // delivered: all operands consistent in both branches (single region
    // vs. backend) → one Mixed group covering everything
    let delivered = plan.delivered();
    if !delivered.satisfies(&graph.constraint) {
        return None;
    }
    Some((
        Cand {
            plan,
            cost,
            rows,
            delivered,
            applied_residuals: (0..graph.residuals.len()).collect(),
        },
        PlanChoice::PulledUpSwitchUnion,
    ))
}

// ----------------------------------------------------------- classification

fn classify(plan: &PhysicalPlan, role: Role) -> PlanChoice {
    if role == Role::Backend {
        return PlanChoice::BackendLocal;
    }
    let guards = plan.guard_count();
    let leaves = count_remote_leaves(plan);
    match (guards, leaves) {
        (0, 0) => PlanChoice::AllLocalGuarded, // unreachable at the cache
        (0, 1) => PlanChoice::FullRemote,      // one remote fetch serves everything
        (0, _) => PlanChoice::RemoteFetchLocalJoin,
        (_, 0) => PlanChoice::AllLocalGuarded,
        _ => PlanChoice::Mixed,
    }
}

/// Remote leaves that are NOT the fallback branch of a SwitchUnion.
#[allow(dead_code)]
fn count_remote_leaves(plan: &PhysicalPlan) -> usize {
    match plan {
        PhysicalPlan::OneRow | PhysicalPlan::LocalScan(_) => 0,
        PhysicalPlan::RemoteQuery(_) => 1,
        PhysicalPlan::SwitchUnion { local, .. } => count_remote_leaves(local),
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => count_remote_leaves(input),
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::MergeJoin { left, right, .. } => {
            count_remote_leaves(left) + count_remote_leaves(right)
        }
        PhysicalPlan::IndexNLJoin { outer, .. } => count_remote_leaves(outer),
    }
}
