//! Bound (name-resolved) scalar expressions and aggregate calls.
//!
//! A [`BoundExpr`] is an [`rcc_sql::Expr`] after binding: every column
//! reference carries the unique binding qualifier of its operand, so it can
//! be resolved positionally against any operator output schema whose
//! columns are qualified the same way. Subqueries are gone — the binder
//! decorrelates them into semi-joins before expressions reach this form.

use rcc_common::{Error, Result, Row, Schema, Value};
use rcc_sql::{BinaryOp, UnaryOp};
use std::cmp::Ordering;
use std::fmt;

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column reference: `qualifier` is the operand binding name.
    Column {
        /// Table alias / binding qualifier, if any.
        qualifier: String,
        /// Object name.
        name: String,
    },
    /// Literal.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand expression.
        expr: Box<BoundExpr>,
    },
    /// `e BETWEEN low AND high` (kept intact for range extraction).
    Between {
        /// The operand expression.
        expr: Box<BoundExpr>,
        /// Lower bound (inclusive).
        low: Box<BoundExpr>,
        /// Upper bound (inclusive).
        high: Box<BoundExpr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e IN (list)`.
    InList {
        /// The operand expression.
        expr: Box<BoundExpr>,
        /// The literal list.
        list: Vec<BoundExpr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e IS NULL`.
    IsNull {
        /// The operand expression.
        expr: Box<BoundExpr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `GETDATE()` — current time as a `Value::Timestamp`.
    GetDate,
}

impl BoundExpr {
    /// Convenience column constructor.
    pub fn col(qualifier: &str, name: &str) -> BoundExpr {
        BoundExpr::Column {
            qualifier: qualifier.into(),
            name: name.into(),
        }
    }

    /// Convenience binary constructor.
    pub fn binary(left: BoundExpr, op: BinaryOp, right: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// AND-combine two expressions.
    pub fn and(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::binary(a, BinaryOp::And, b)
    }

    /// AND-combine many expressions (`None` for the empty list).
    pub fn and_all(mut exprs: Vec<BoundExpr>) -> Option<BoundExpr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(exprs.into_iter().fold(first, BoundExpr::and))
    }

    /// Visit all sub-expressions pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            BoundExpr::Unary { expr, .. } => expr.visit(f),
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            BoundExpr::IsNull { expr, .. } => expr.visit(f),
            BoundExpr::Column { .. } | BoundExpr::Literal(_) | BoundExpr::GetDate => {}
        }
    }

    /// The set of operand qualifiers this expression references.
    pub fn referenced_qualifiers(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.visit(&mut |e| {
            if let BoundExpr::Column { qualifier, .. } = e {
                out.insert(qualifier.clone());
            }
        });
        out
    }

    /// Evaluate against a row described by `schema`. `now_millis` supplies
    /// `GETDATE()`.
    pub fn eval(&self, row: &Row, schema: &Schema, now_millis: i64) -> Result<Value> {
        match self {
            BoundExpr::Column { qualifier, name } => {
                let i = schema.resolve(Some(qualifier), name)?;
                Ok(row.get(i).clone())
            }
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::GetDate => Ok(Value::Timestamp(now_millis)),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row, schema, now_millis)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(Error::Type(format!("NOT applied to {other}"))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(Error::Type(format!("- applied to {other}"))),
                    },
                }
            }
            BoundExpr::Binary { left, op, right } => {
                eval_binary(left, *op, right, row, schema, now_millis)
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row, schema, now_millis)?;
                let lo = low.eval(row, schema, now_millis)?;
                let hi = high.eval(row, schema, now_millis)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = v
                    .compare(&lo)?
                    .map(|o| o != Ordering::Less)
                    .unwrap_or(false)
                    && v.compare(&hi)?
                        .map(|o| o != Ordering::Greater)
                        .unwrap_or(false);
                Ok(Value::Bool(inside != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row, schema, now_millis)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row, schema, now_millis)?;
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.compare(&iv)? == Some(Ordering::Equal) {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval(row, schema, now_millis)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluate as a predicate (SQL truthiness: TRUE passes).
    pub fn eval_predicate(&self, row: &Row, schema: &Schema, now_millis: i64) -> Result<bool> {
        Ok(self.eval(row, schema, now_millis)?.is_truthy())
    }
}

fn eval_binary(
    left: &BoundExpr,
    op: BinaryOp,
    right: &BoundExpr,
    row: &Row,
    schema: &Schema,
    now_millis: i64,
) -> Result<Value> {
    // AND/OR get three-valued short-circuit semantics.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = left.eval(row, schema, now_millis)?;
        match (op, &l) {
            (BinaryOp::And, Value::Bool(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Value::Bool(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = right.eval(row, schema, now_millis)?;
        return Ok(match op {
            BinaryOp::And => match (l, r) {
                (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            BinaryOp::Or => match (l, r) {
                (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            _ => unreachable!(),
        });
    }

    let l = left.eval(row, schema, now_millis)?;
    let r = right.eval(row, schema, now_millis)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.compare(&r)?;
        let b = match (op, ord) {
            (BinaryOp::Eq, Some(Ordering::Equal)) => true,
            (BinaryOp::NotEq, Some(o)) => o != Ordering::Equal,
            (BinaryOp::Lt, Some(Ordering::Less)) => true,
            (BinaryOp::LtEq, Some(o)) => o != Ordering::Greater,
            (BinaryOp::Gt, Some(Ordering::Greater)) => true,
            (BinaryOp::GtEq, Some(o)) => o != Ordering::Less,
            _ => false,
        };
        return Ok(Value::Bool(b));
    }
    // arithmetic
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinaryOp::Add => a.checked_add(*b),
                BinaryOp::Sub => a.checked_sub(*b),
                BinaryOp::Mul => a.checked_mul(*b),
                BinaryOp::Div => {
                    if *b == 0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                _ => None,
            };
            v.map(Value::Int)
                .ok_or_else(|| Error::Execution("integer overflow".into()))
        }
        // timestamp arithmetic: ts ± int keeps the timestamp type, which is
        // what the currency-guard predicate `getdate() - B` needs.
        (Value::Timestamp(a), Value::Int(b)) => match op {
            BinaryOp::Add => Ok(Value::Timestamp(a + b)),
            BinaryOp::Sub => Ok(Value::Timestamp(a - b)),
            _ => Err(Error::Type("unsupported timestamp arithmetic".into())),
        },
        _ => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            let v = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    a / b
                }
                _ => return Err(Error::Type(format!("bad operands for {}", op.sql()))),
            };
            Ok(Value::Float(v))
        }
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Column { qualifier, name } => write!(f, "{qualifier}.{name}"),
            BoundExpr::Literal(v) => write!(f, "{v}"),
            BoundExpr::GetDate => f.write_str("GETDATE()"),
            BoundExpr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            BoundExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(e)`.
    Count,
    /// `SUM(e)`.
    Sum,
    /// `AVG(e)`.
    Avg,
    /// `MIN(e)`.
    Min,
    /// `MAX(e)`.
    Max,
}

impl AggFunc {
    /// Parse from a function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate call in a GROUP BY query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The function.
    pub func: AggFunc,
    /// Argument (`None` for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
    /// Output column name.
    pub output_name: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int).with_qualifier("t"),
            Column::new("b", DataType::Float).with_qualifier("t"),
            Column::new("s", DataType::Str).with_qualifier("t"),
        ])
    }

    fn row() -> Row {
        Row::new(vec![Value::Int(10), Value::Float(2.5), Value::from("x")])
    }

    fn ev(e: &BoundExpr) -> Value {
        e.eval(&row(), &schema(), 1234).unwrap()
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(ev(&BoundExpr::col("t", "a")), Value::Int(10));
        assert_eq!(ev(&BoundExpr::Literal(Value::Int(7))), Value::Int(7));
        assert_eq!(ev(&BoundExpr::GetDate), Value::Timestamp(1234));
    }

    #[test]
    fn arithmetic() {
        let e = BoundExpr::binary(
            BoundExpr::col("t", "a"),
            BinaryOp::Add,
            BoundExpr::Literal(Value::Int(5)),
        );
        assert_eq!(ev(&e), Value::Int(15));
        let e = BoundExpr::binary(
            BoundExpr::col("t", "a"),
            BinaryOp::Mul,
            BoundExpr::col("t", "b"),
        );
        assert_eq!(ev(&e), Value::Float(25.0));
        let div0 = BoundExpr::binary(
            BoundExpr::Literal(Value::Int(1)),
            BinaryOp::Div,
            BoundExpr::Literal(Value::Int(0)),
        );
        assert!(div0.eval(&row(), &schema(), 0).is_err());
    }

    #[test]
    fn timestamp_arithmetic_for_guards() {
        let e = BoundExpr::binary(
            BoundExpr::GetDate,
            BinaryOp::Sub,
            BoundExpr::Literal(Value::Int(234)),
        );
        assert_eq!(ev(&e), Value::Timestamp(1000));
    }

    #[test]
    fn comparisons() {
        let e = BoundExpr::binary(
            BoundExpr::col("t", "a"),
            BinaryOp::GtEq,
            BoundExpr::Literal(Value::Int(10)),
        );
        assert_eq!(ev(&e), Value::Bool(true));
        let e = BoundExpr::binary(
            BoundExpr::col("t", "a"),
            BinaryOp::Lt,
            BoundExpr::Literal(Value::Int(10)),
        );
        assert_eq!(ev(&e), Value::Bool(false));
        let e = BoundExpr::binary(
            BoundExpr::col("t", "s"),
            BinaryOp::Eq,
            BoundExpr::Literal(Value::from("x")),
        );
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let null = BoundExpr::Literal(Value::Null);
        let t = BoundExpr::Literal(Value::Bool(true));
        let f_ = BoundExpr::Literal(Value::Bool(false));
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL
        assert_eq!(
            ev(&BoundExpr::binary(null.clone(), BinaryOp::And, f_.clone())),
            Value::Bool(false)
        );
        assert_eq!(
            ev(&BoundExpr::binary(null.clone(), BinaryOp::And, t.clone())),
            Value::Null
        );
        // NULL OR TRUE = TRUE; NULL OR FALSE = NULL
        assert_eq!(
            ev(&BoundExpr::binary(null.clone(), BinaryOp::Or, t.clone())),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&BoundExpr::binary(null.clone(), BinaryOp::Or, f_)),
            Value::Null
        );
        // NULL = 1 is NULL, and not truthy
        let cmp = BoundExpr::binary(null, BinaryOp::Eq, BoundExpr::Literal(Value::Int(1)));
        assert_eq!(ev(&cmp), Value::Null);
        assert!(!cmp.eval_predicate(&row(), &schema(), 0).unwrap());
    }

    #[test]
    fn between_and_inlist() {
        let between = BoundExpr::Between {
            expr: Box::new(BoundExpr::col("t", "a")),
            low: Box::new(BoundExpr::Literal(Value::Int(5))),
            high: Box::new(BoundExpr::Literal(Value::Int(15))),
            negated: false,
        };
        assert_eq!(ev(&between), Value::Bool(true));
        let not_between = BoundExpr::Between {
            expr: Box::new(BoundExpr::col("t", "a")),
            low: Box::new(BoundExpr::Literal(Value::Int(5))),
            high: Box::new(BoundExpr::Literal(Value::Int(15))),
            negated: true,
        };
        assert_eq!(ev(&not_between), Value::Bool(false));
        let inlist = BoundExpr::InList {
            expr: Box::new(BoundExpr::col("t", "a")),
            list: vec![
                BoundExpr::Literal(Value::Int(9)),
                BoundExpr::Literal(Value::Int(10)),
            ],
            negated: false,
        };
        assert_eq!(ev(&inlist), Value::Bool(true));
        // NOT IN with a NULL member and no match is NULL
        let weird = BoundExpr::InList {
            expr: Box::new(BoundExpr::col("t", "a")),
            list: vec![BoundExpr::Literal(Value::Null)],
            negated: true,
        };
        assert_eq!(ev(&weird), Value::Null);
    }

    #[test]
    fn is_null_and_not() {
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::col("t", "a")),
            negated: true,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        let e = BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(BoundExpr::Literal(Value::Bool(true))),
        };
        assert_eq!(ev(&e), Value::Bool(false));
    }

    #[test]
    fn qualifier_collection() {
        let e = BoundExpr::binary(
            BoundExpr::col("c", "x"),
            BinaryOp::Eq,
            BoundExpr::col("o", "y"),
        );
        let quals = e.referenced_qualifiers();
        assert_eq!(quals.len(), 2);
        assert!(quals.contains("c") && quals.contains("o"));
    }

    #[test]
    fn and_all_folds() {
        assert_eq!(BoundExpr::and_all(vec![]), None);
        let single = BoundExpr::and_all(vec![BoundExpr::Literal(Value::Bool(true))]).unwrap();
        assert_eq!(single, BoundExpr::Literal(Value::Bool(true)));
        let multi = BoundExpr::and_all(vec![
            BoundExpr::Literal(Value::Bool(true)),
            BoundExpr::Literal(Value::Bool(false)),
        ])
        .unwrap();
        assert_eq!(ev(&multi), Value::Bool(false));
    }

    #[test]
    fn agg_func_parsing() {
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("getdate"), None);
        assert_eq!(AggFunc::Sum.sql(), "SUM");
    }

    #[test]
    fn display_is_readable() {
        let e = BoundExpr::binary(
            BoundExpr::col("c", "k"),
            BinaryOp::LtEq,
            BoundExpr::Literal(Value::Int(5)),
        );
        assert_eq!(e.to_string(), "(c.k <= 5)");
    }
}
