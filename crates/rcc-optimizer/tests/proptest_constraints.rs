//! Property tests for the C&C machinery: normalization is a
//! permutation-invariant partition with min-merged bounds, and the
//! consistency property rules are mutually sound.

use proptest::prelude::*;
use rcc_common::{Duration, RegionId};
use rcc_optimizer::property::DeliveredGroup;
use rcc_optimizer::{CCConstraint, DeliveredProperty, RegionTag};
use std::collections::BTreeSet;

type RawSpec = (Duration, BTreeSet<u32>, Vec<(String, String)>);

fn raw_specs_over(n: u32) -> impl Strategy<Value = Vec<RawSpec>> {
    proptest::collection::vec(
        (
            (1i64..600).prop_map(Duration::from_secs),
            proptest::collection::btree_set(0..n, 1..4),
        )
            .prop_map(|(b, ops)| (b, ops, Vec::new())),
        0..6,
    )
}

fn raw_specs() -> impl Strategy<Value = Vec<RawSpec>> {
    raw_specs_over(8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn normalization_is_a_partition(specs in raw_specs()) {
        let c = CCConstraint::normalize(specs, 0..8);
        // every operand appears exactly once
        let mut seen = BTreeSet::new();
        for class in &c.classes {
            for op in &class.operands {
                prop_assert!(seen.insert(*op), "operand {op} in two classes");
            }
        }
        prop_assert_eq!(seen, (0..8).collect::<BTreeSet<u32>>());
    }

    #[test]
    fn normalization_is_permutation_invariant(specs in raw_specs(), seed in 0u64..1000) {
        let a = CCConstraint::normalize(specs.clone(), 0..8);
        // deterministic shuffle
        let mut permuted = specs;
        if permuted.len() > 1 {
            let k = (seed as usize) % permuted.len();
            permuted.rotate_left(k);
            permuted.reverse();
        }
        let b = CCConstraint::normalize(permuted, 0..8);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn merged_bound_is_min_over_touching_specs(specs in raw_specs()) {
        let c = CCConstraint::normalize(specs.clone(), 0..8);
        for class in &c.classes {
            // the class bound equals the min over all specs intersecting it
            // (or ZERO for operands covered by no spec)
            let touching: Vec<&RawSpec> = specs
                .iter()
                .filter(|(_, ops, _)| !ops.is_disjoint(&class.operands))
                .collect();
            if touching.is_empty() {
                prop_assert_eq!(class.bound, Duration::ZERO);
            } else {
                let min = touching.iter().map(|(b, _, _)| *b).min().unwrap();
                prop_assert!(class.bound <= min);
                // and it's achieved by some touching spec (or a tight default merge)
                prop_assert!(
                    class.bound == min || class.bound == Duration::ZERO,
                    "bound {:?} vs min {:?}",
                    class.bound, min
                );
            }
        }
    }

    #[test]
    fn specs_sharing_operands_end_in_one_class(specs in raw_specs()) {
        let c = CCConstraint::normalize(specs.clone(), 0..8);
        for (b1, s1, _) in &specs {
            let _ = b1;
            for (b2, s2, _) in &specs {
                let _ = b2;
                if !s1.is_disjoint(s2) {
                    // all operands of both specs are in the same class
                    let mut all = s1.clone();
                    all.extend(s2.iter().copied());
                    let first = *all.iter().next().unwrap();
                    let class = c.class_of(first).unwrap();
                    prop_assert!(all.is_subset(&class.operands));
                }
            }
        }
    }
}

// ----------------------------------------------------- property rules

/// Delivered properties *as the planner constructs them*: Backend groups
/// of any size (remote fetches merge), Mixed groups of any size (pulled-up
/// SwitchUnions), but Region groups only as singletons — at the cache
/// every local view access sits under its own guard, so a bare
/// region-tagged group never accumulates operands. The paper's early
/// violation rule is deliberately conservative for multi-operand region
/// groups (it may prune stricter-than-required plans), which is why the
/// soundness property below quantifies over the constructible space.
fn delivered() -> impl Strategy<Value = DeliveredProperty> {
    proptest::collection::vec((0u32..6, 0u8..4), 1..7).prop_map(|assignments| {
        let mut merged: std::collections::HashMap<u8, BTreeSet<u32>> = Default::default();
        let mut singles: Vec<(u8, u32)> = Vec::new();
        for (op, g) in assignments {
            match g {
                0 | 3 => {
                    merged.entry(g).or_default().insert(op);
                }
                _ => {
                    if !singles.contains(&(g, op)) {
                        singles.push((g, op));
                    }
                }
            }
        }
        let mut groups: Vec<DeliveredGroup> = merged
            .into_iter()
            .map(|(g, operands)| DeliveredGroup {
                tag: if g == 0 {
                    RegionTag::Backend
                } else {
                    RegionTag::Mixed
                },
                operands,
            })
            .collect();
        // region groups are singletons; drop duplicates of operands already
        // placed in a merged group to keep the property a partition
        let taken: BTreeSet<u32> = groups
            .iter()
            .flat_map(|g| g.operands.iter().copied())
            .collect();
        for (g, op) in singles {
            if !taken.contains(&op) && !groups.iter().any(|gr| gr.operands.contains(&op)) {
                groups.push(DeliveredGroup {
                    tag: RegionTag::Region(RegionId(g as u32)),
                    operands: [op].into_iter().collect(),
                });
            }
        }
        DeliveredProperty { groups }
    })
}

fn required() -> impl Strategy<Value = CCConstraint> {
    raw_specs_over(6).prop_map(|specs| CCConstraint::normalize(specs, 0..6))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn join_merge_preserves_operands(a in delivered(), b in delivered()) {
        let joined = a.join(&b);
        let mut expect = a.operands();
        expect.extend(b.operands());
        prop_assert_eq!(joined.operands(), expect);
    }

    #[test]
    fn switch_union_only_refines(a in delivered(), b in delivered()) {
        // SwitchUnion must never put two operands together that either
        // child separates
        let su = DeliveredProperty::switch_union(&[a.clone(), b.clone()]);
        for g in &su.groups {
            for child in [&a, &b] {
                for x in &g.operands {
                    for y in &g.operands {
                        if x == y { continue; }
                        let together_in_child = child.groups.iter().any(|cg| {
                            cg.operands.contains(x) && cg.operands.contains(y)
                        });
                        prop_assert!(
                            together_in_child,
                            "{x} and {y} grouped by switch_union but split by a child"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn remote_everything_always_satisfies(req in required()) {
        let all_remote = DeliveredProperty::remote_leaf(0..6);
        prop_assert!(all_remote.satisfies(&req));
        prop_assert!(!all_remote.violates(&req));
    }

    #[test]
    fn satisfaction_implies_no_violation_for_partition_properties(
        d in delivered(),
        req in required(),
    ) {
        // our construction yields partitions (non-conflicting); for those,
        // a satisfying property must not be flagged by the early-violation
        // rule — otherwise the optimizer would prune its own winners
        if !d.is_conflicting() && d.satisfies(&req) {
            prop_assert!(!d.violates(&req), "d={d} req={req}");
        }
    }

    #[test]
    fn conflicting_properties_never_satisfy(req in required()) {
        let conflict = DeliveredProperty {
            groups: vec![
                DeliveredGroup {
                    tag: RegionTag::Region(RegionId(1)),
                    operands: [0u32].into_iter().collect(),
                },
                DeliveredGroup {
                    tag: RegionTag::Region(RegionId(2)),
                    operands: [0u32].into_iter().collect(),
                },
            ],
        };
        prop_assert!(!conflict.satisfies(&req) || req.classes.is_empty());
        prop_assert!(conflict.is_conflicting());
    }
}
