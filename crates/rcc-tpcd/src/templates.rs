//! Deterministic TPC-C-flavored transaction-template corpus.
//!
//! `robust-audit` (crate `rcc-verify`) binds these templates against the
//! audit catalog (Customer keyed on `c_custkey`, Orders keyed on
//! `(o_custkey, o_orderkey)`), runs the robustness analyzer over the whole
//! workload, and asserts the exact expected verdict per template — so any
//! analyzer regression, missed cycle or spurious witness fails the sweep.
//! The mutation corpus then applies the classic robustness-breaking edits
//! (add a conflicting write, loosen a currency bound, drop a key
//! predicate) and asserts each one flips its target's verdict.

/// One template of the audited workload with its expected verdict.
#[derive(Debug, Clone, Copy)]
pub struct TemplateCase {
    /// Template name (matches the name in `sql`).
    pub name: &'static str,
    /// The `CREATE TEMPLATE` statement.
    pub sql: &'static str,
    /// Expected verdict when the *whole* corpus is analyzed as one
    /// workload: `true` = ROBUST, `false` = NOT ROBUST (with witness).
    pub robust: bool,
}

/// The TPC-C-flavored workload: payments, order entry, delivery and the
/// read-only status/report mix, with currency bounds chosen so both
/// verdicts appear.
pub fn robust_template_corpus() -> Vec<TemplateCase> {
    vec![
        // Classic lost update: the balance read may be stale, the write
        // depends on it, and another payment instance can land in between.
        TemplateCase {
            name: "payment",
            sql: "CREATE TEMPLATE payment ($c, $amt) AS \
                  SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                    CURRENCY BOUND 10 SEC ON (customer); \
                  UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; \
                  END",
            robust: false,
        },
        // Same template pinned to bound 0: strict reads, serializable.
        TemplateCase {
            name: "payment_strict",
            sql: "CREATE TEMPLATE payment_strict ($c, $amt) AS \
                  SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                    CURRENCY BOUND 0 SEC ON (customer); \
                  UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; \
                  END",
            robust: true,
        },
        // Single relaxed point read: one access, nothing to split.
        TemplateCase {
            name: "balance_check",
            sql: "CREATE TEMPLATE balance_check ($c) AS \
                  SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                    CURRENCY BOUND 1 MIN ON (customer); \
                  END",
            robust: true,
        },
        // Customer⋈orders in one statement and ONE consistency class: the
        // clause guarantees both reads one snapshot, so no writer can
        // separate them.
        TemplateCase {
            name: "order_status",
            sql: "CREATE TEMPLATE order_status ($c) AS \
                  SELECT c.c_name, o.o_totalprice, o.o_status \
                  FROM customer c, orders o \
                  WHERE c.c_custkey = $c AND o.o_custkey = $c \
                  CURRENCY BOUND 30 SEC ON (c, o); \
                  END",
            robust: true,
        },
        // The same join with per-table classes: each class may come from
        // its own snapshot, and delivery can commit between them.
        TemplateCase {
            name: "order_status_split",
            sql: "CREATE TEMPLATE order_status_split ($c) AS \
                  SELECT c.c_name, o.o_totalprice, o.o_status \
                  FROM customer c, orders o \
                  WHERE c.c_custkey = $c AND o.o_custkey = $c \
                  CURRENCY BOUND 30 SEC ON (c), 30 SEC ON (o); \
                  END",
            robust: false,
        },
        // Credit check on a possibly-stale balance, then the order insert:
        // payment/delivery writes reach back into the insert.
        TemplateCase {
            name: "new_order",
            sql: "CREATE TEMPLATE new_order ($c, $o, $price) AS \
                  SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                    CURRENCY BOUND 10 SEC ON (customer); \
                  INSERT INTO orders (o_custkey, o_orderkey, o_totalprice, o_status) \
                    VALUES ($c, $o, $price, 'N'); \
                  END",
            robust: false,
        },
        // Write-only delivery: no relaxed reads, always strict.
        TemplateCase {
            name: "delivery",
            sql: "CREATE TEMPLATE delivery ($c, $o) AS \
                  UPDATE customer SET c_acctbal = 0.0 WHERE c_custkey = $c; \
                  UPDATE orders SET o_status = 'D' \
                    WHERE o_custkey = $c AND o_orderkey = $o; \
                  END",
            robust: true,
        },
        // Read-only relaxed scan, single statement, single class.
        TemplateCase {
            name: "stock_report",
            sql: "CREATE TEMPLATE stock_report () AS \
                  SELECT c_name, c_acctbal FROM customer \
                    CURRENCY BOUND 1 MIN ON (customer); \
                  END",
            robust: true,
        },
    ]
}

/// One mutation: a minimal workload in which `target` has the expected
/// base verdict, plus an edited workload in which the verdict flips.
#[derive(Debug, Clone, Copy)]
pub struct TemplateMutation {
    /// What the mutation does, for diagnostics.
    pub label: &'static str,
    /// The template whose verdict must flip.
    pub target: &'static str,
    /// Base workload (`CREATE TEMPLATE` statements).
    pub base: &'static [&'static str],
    /// Mutated workload.
    pub mutated: &'static [&'static str],
    /// `target`'s verdict under `base`; under `mutated` it must be the
    /// negation.
    pub base_robust: bool,
}

/// The three canonical robustness-breaking edits.
pub fn template_mutation_corpus() -> Vec<TemplateMutation> {
    vec![
        // A read-only report splitting its reads over two statements is
        // fine in a read-only workload; introducing one conflicting writer
        // fractures it.
        TemplateMutation {
            label: "add conflicting write",
            target: "report_pair",
            base: &["CREATE TEMPLATE report_pair ($c) AS \
                     SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                       CURRENCY BOUND 10 SEC ON (customer); \
                     SELECT c_name FROM customer WHERE c_custkey = $c; \
                     END"],
            mutated: &[
                "CREATE TEMPLATE report_pair ($c) AS \
                 SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                   CURRENCY BOUND 10 SEC ON (customer); \
                 SELECT c_name FROM customer WHERE c_custkey = $c; \
                 END",
                "CREATE TEMPLATE bump ($c, $amt) AS \
                 UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; \
                 END",
            ],
            base_robust: true,
        },
        // Loosening the payment read from bound 0 to 10 SEC re-opens the
        // lost-update window between two instances of the template.
        TemplateMutation {
            label: "loosen a bound",
            target: "pay_once",
            base: &["CREATE TEMPLATE pay_once ($c, $amt) AS \
                     SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                       CURRENCY BOUND 0 SEC ON (customer); \
                     UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; \
                     END"],
            mutated: &["CREATE TEMPLATE pay_once ($c, $amt) AS \
                        SELECT c_acctbal FROM customer WHERE c_custkey = $c \
                          CURRENCY BOUND 10 SEC ON (customer); \
                        UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; \
                        END"],
            base_robust: true,
        },
        // The reader is pinned to customer 1, the only customer writer to
        // customer 2 — provably disjoint points. Dropping the writer's key
        // predicate turns it into a range write over every customer.
        TemplateMutation {
            label: "drop a key predicate",
            target: "vip_audit",
            base: &[
                "CREATE TEMPLATE vip_audit () AS \
                 SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
                   CURRENCY BOUND 10 SEC ON (customer); \
                 UPDATE orders SET o_status = 'A' \
                   WHERE o_custkey = 1 AND o_orderkey = 1; \
                 END",
                "CREATE TEMPLATE clear_two () AS \
                 UPDATE customer SET c_acctbal = 0.0 WHERE c_custkey = 2; \
                 END",
            ],
            mutated: &[
                "CREATE TEMPLATE vip_audit () AS \
                 SELECT c_acctbal FROM customer WHERE c_custkey = 1 \
                   CURRENCY BOUND 10 SEC ON (customer); \
                 UPDATE orders SET o_status = 'A' \
                   WHERE o_custkey = 1 AND o_orderkey = 1; \
                 END",
                "CREATE TEMPLATE clear_two () AS \
                 UPDATE customer SET c_acctbal = 0.0; \
                 END",
            ],
            base_robust: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_mixed() {
        let corpus = robust_template_corpus();
        assert_eq!(corpus.len(), 8);
        assert!(corpus.iter().any(|c| c.robust));
        assert!(corpus.iter().any(|c| !c.robust));
        // Names are unique and embedded in their SQL.
        for (i, c) in corpus.iter().enumerate() {
            assert!(c.sql.contains(c.name), "{} not in sql", c.name);
            assert!(
                corpus[i + 1..].iter().all(|d| d.name != c.name),
                "duplicate {}",
                c.name
            );
        }
    }

    #[test]
    fn mutations_cover_the_three_edits() {
        let muts = template_mutation_corpus();
        assert_eq!(muts.len(), 3);
        for m in &muts {
            assert!(m.base.iter().any(|s| s.contains(m.target)));
            assert!(m.mutated.iter().any(|s| s.contains(m.target)));
        }
    }
}
