#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! TPC-D-style data and workload generator.
//!
//! The paper's experiments run on a TPC-D database at scale factor 1.0 and
//! use only the Customer (150,000 rows) and Orders (1,500,000 rows) tables
//! (Sec. 4): Customer clustered on `c_custkey` with a secondary index on
//! `c_acctbal`; Orders clustered on `(o_custkey, o_orderkey)`; "customers
//! have 10 orders on average". This crate generates that data
//! deterministically at any scale factor, plus the update workload used by
//! the replication experiments.

pub mod gen;
pub mod queries;
pub mod templates;
pub mod workload;

pub use gen::{customer_meta, nation_meta, orders_meta, TpcdGenerator};
pub use queries::{adversarial_lint_corpus, currency_corpus};
pub use templates::{
    robust_template_corpus, template_mutation_corpus, TemplateCase, TemplateMutation,
};
pub use workload::UpdateWorkload;
