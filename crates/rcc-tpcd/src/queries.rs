//! Deterministic SELECT-with-currency-clause corpus generator.
//!
//! `plan-audit` (crate `rcc-verify`) sweeps the optimizer over a large body
//! of queries and statically proves every optimized plan conforms to its
//! currency clause. This module generates that corpus: point lookups, range
//! scans, aggregates, and customer⋈orders joins over the paper's Customer /
//! Orders schema, crossed with every clause shape the grammar supports —
//! no clause (tight default), single-class single-table, single-class
//! multi-table, per-table classes, and per-key `BY` grouping — at bounds
//! both above and below the regions' minimum guaranteed currency so both
//! local and remote plan shapes are exercised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Currency bounds used by the corpus, as SQL suffix strings. The paper
/// rig's regions guarantee 5 s propagation delay, so bounds below 5 s force
/// all-remote plans and bounds at/above exercise the guarded local paths.
const BOUNDS: &[&str] = &[
    "2 SEC", "5 SEC", "10 SEC", "30 SEC", "1 MIN", "2 MIN", "10 MIN", "1 HOUR",
];

/// Generate `n` deterministic queries from `seed`. `max_custkey` bounds the
/// point-lookup keys (pass the loaded customer count, or any positive
/// number when only planning).
pub fn currency_corpus(n: usize, seed: u64, max_custkey: i64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hi = max_custkey.max(1);
    (0..n).map(|_| one_query(&mut rng, hi)).collect()
}

fn bound(rng: &mut StdRng) -> &'static str {
    BOUNDS[rng.gen_range(0..BOUNDS.len())]
}

fn one_query(rng: &mut StdRng, max_custkey: i64) -> String {
    let key = rng.gen_range(1..=max_custkey);
    match rng.gen_range(0..10u32) {
        // Point lookup on customer, no clause: the tight default requires
        // trx-consistent current data, so the plan must go to the backend.
        0 => format!("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = {key}"),
        // Point lookup with a single-table class.
        1 => format!(
            "SELECT c_name, c_acctbal FROM customer WHERE c_custkey = {key} \
             CURRENCY BOUND {} ON (customer)",
            bound(rng)
        ),
        // Point lookup with per-key grouping (session consistency by key).
        2 => format!(
            "SELECT c_acctbal FROM customer c WHERE c_custkey = {key} \
             CURRENCY BOUND {} ON (c) BY c.c_custkey",
            bound(rng)
        ),
        // Range scan over the unindexed-at-the-cache acctbal column.
        3 => {
            let lo = rng.gen_range(0..5000);
            format!(
                "SELECT c_custkey, c_acctbal FROM customer \
                 WHERE c_acctbal BETWEEN {lo} AND {} \
                 CURRENCY BOUND {} ON (customer)",
                lo + rng.gen_range(100..2000),
                bound(rng)
            )
        }
        // Orders point lookup (composite clustered key prefix).
        4 => format!(
            "SELECT o_orderkey, o_totalprice FROM orders WHERE o_custkey = {key} \
             CURRENCY BOUND {} ON (orders)",
            bound(rng)
        ),
        // Aggregate over customer.
        5 => format!(
            "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer \
             GROUP BY c_nationkey \
             CURRENCY BOUND {} ON (customer)",
            bound(rng)
        ),
        // Join, one class spanning both tables: the class's tables live in
        // different regions, so a conformant local plan needs a single
        // snapshot source — this is the single-source obligation's
        // workhorse shape.
        6 => format!(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey = {key} \
             CURRENCY BOUND {} ON (c, o)",
            bound(rng)
        ),
        // Join with per-table classes: each table may be served from its
        // own region under its own bound.
        7 => format!(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey = {key} \
             CURRENCY BOUND {} ON (c), {} ON (o)",
            bound(rng),
            bound(rng)
        ),
        // Join with mixed bounds, ordered the other way plus a residual.
        8 => format!(
            "SELECT o.o_orderkey FROM orders o, customer c \
             WHERE o.o_custkey = c.c_custkey AND o.o_custkey = {key} \
             AND o.o_totalprice > {} \
             CURRENCY BOUND {} ON (o), {} ON (c)",
            rng.gen_range(100..100_000),
            bound(rng),
            bound(rng)
        ),
        // Join with no clause: all-remote under the tight default.
        _ => format!(
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey AND c.c_custkey = {key}"
        ),
    }
}

/// Adversarial corpus for the Layer-1 currency-clause lint (`rcc-lint`):
/// queries that parse and (mostly) bind fine but carry exactly the listed
/// diagnostic codes, plus clean controls that must stay diagnostic-free.
/// Expected code lists are sorted; `lint-audit` asserts exact equality, so
/// any lint regression — missed or spurious — fails the sweep.
///
/// Written against the audit catalog (`rcc_verify::rig::audit_catalog`):
/// Customer keyed on `c_custkey` with index `ix_acctbal(c_acctbal)`,
/// Orders keyed on `(o_custkey, o_orderkey)`. Bounds on view-covered
/// tables sit inside the contingent window — above the 5 s propagation
/// delay, below CR2's 17 s healthy-replication envelope — unless an entry
/// is deliberately probing the statically-dead-guard lint (L007).
pub fn adversarial_lint_corpus() -> Vec<(&'static str, &'static [&'static str])> {
    vec![
        // Clean controls: no clause, keyed BY, indexed BY, per-table classes.
        ("SELECT c_name FROM customer WHERE c_custkey = 1", &[]),
        (
            "SELECT c_acctbal FROM customer c WHERE c.c_custkey = 1 \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_custkey",
            &[],
        ),
        (
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_acctbal",
            &[],
        ),
        (
            "SELECT c.c_name, o.o_totalprice FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey \
             CURRENCY BOUND 15 SEC ON (c), 5 SEC ON (o)",
            &[],
        ),
        // L001: the looser overlapping spec can never take effect.
        (
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c), 5 SEC ON (c)",
            &["L001"],
        ),
        // L001: exact duplicate spec.
        (
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c), 15 SEC ON (c)",
            &["L001"],
        ),
        // L002: spec names a table absent from every FROM in scope.
        (
            "SELECT c_name FROM customer c CURRENCY BOUND 10 MIN ON (orders)",
            &["L002"],
        ),
        // L003 twice: c_name is neither key nor indexed, and the attributed
        // columns cover neither the key nor a full index.
        (
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_name",
            &["L003", "L003"],
        ),
        // L003 once: o_custkey is part of the composite key (per-column
        // check passes) but alone does not cover it.
        (
            "SELECT o_totalprice FROM orders o \
             CURRENCY BOUND 15 SEC ON (o) BY o.o_custkey",
            &["L003"],
        ),
        // L004: inner 15 SEC class shares customer with the outer 5 SEC
        // class; the merge keeps the tighter bound.
        (
            "SELECT c_name FROM customer c WHERE EXISTS \
             (SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey \
              CURRENCY BOUND 15 SEC ON (o, c)) \
             CURRENCY BOUND 5 SEC ON (c)",
            &["L004"],
        ),
        // L005: bound 0 restates the session default.
        (
            "SELECT c_name FROM customer CURRENCY BOUND 0 SEC ON (customer)",
            &["L005"],
        ),
        // Multiple independent diagnostics in one statement.
        (
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 0 SEC ON (c), 10 MIN ON (nation)",
            &["L002", "L005"],
        ),
        // Clean control: nation is queryable without a currency clause.
        ("SELECT n_name FROM nation WHERE n_nationkey = 1", &[]),
        // L006: a positive bound on nation, which no cached view covers,
        // is unverifiable at guard time.
        (
            "SELECT n_name FROM nation n CURRENCY BOUND 10 MIN ON (n)",
            &["L006"],
        ),
        // L006 once: only the uncovered operand of the class is flagged.
        (
            "SELECT c_name, n_name FROM customer c, nation n \
             WHERE c.c_nationkey = n.n_nationkey \
             CURRENCY BOUND 15 SEC ON (c, n)",
            &["L006"],
        ),
        // L006 composes with L003 (twice: per-column and coverage): the
        // bound is unverifiable and the BY grouping matches no key.
        (
            "SELECT n_name FROM nation n \
             CURRENCY BOUND 10 MIN ON (n) BY n.n_name",
            &["L003", "L003", "L006"],
        ),
        // L007: 10 MIN beats both envelopes (CR1 = 22 s, CR2 = 17 s), so
        // every candidate view satisfies the guard statically — the runtime
        // check is dead weight.
        (
            "SELECT c_name FROM customer c CURRENCY BOUND 10 MIN ON (c)",
            &["L007"],
        ),
        // L007 the other way: 2 s is below the 5 s propagation delay, so no
        // replica can ever satisfy it and the relaxed arm is unreachable.
        (
            "SELECT c_name FROM customer c CURRENCY BOUND 2 SEC ON (c)",
            &["L007"],
        ),
        // L007 on a single-view table: orders is covered only by CR2
        // (envelope 17 s), so 30 s is statically satisfied.
        (
            "SELECT o_totalprice FROM orders o \
             WHERE o_custkey = 1 CURRENCY BOUND 30 SEC ON (o)",
            &["L007"],
        ),
        // Near-miss clean control: 20 s clears CR2's 17 s envelope but not
        // CR1's 22 s — the candidate views disagree, so the guard is live
        // and the lint must stay silent.
        (
            "SELECT c_name FROM customer c CURRENCY BOUND 20 SEC ON (c)",
            &[],
        ),
        // L007 composes with L003: the bound is statically dead *and* the
        // BY grouping covers neither the key nor an index.
        (
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 10 MIN ON (c) BY c.c_name",
            &["L003", "L003", "L007"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(currency_corpus(50, 7, 1000), currency_corpus(50, 7, 1000));
        assert_ne!(currency_corpus(50, 7, 1000), currency_corpus(50, 8, 1000));
    }

    #[test]
    fn corpus_covers_all_shapes() {
        let qs = currency_corpus(200, 1, 1000);
        assert_eq!(qs.len(), 200);
        assert!(qs.iter().any(|q| !q.contains("CURRENCY")));
        assert!(qs.iter().any(|q| q.contains("BY c.c_custkey")));
        assert!(qs.iter().any(|q| q.contains("ON (c, o)")));
        assert!(qs.iter().any(|q| q.contains("GROUP BY")));
        assert!(qs.iter().any(|q| q.contains("2 SEC")));
        assert!(qs.iter().any(|q| q.contains("1 HOUR")));
    }

    #[test]
    fn adversarial_corpus_expectations_are_sorted() {
        let corpus = adversarial_lint_corpus();
        assert!(corpus.iter().any(|(_, codes)| codes.is_empty()));
        for (sql, codes) in &corpus {
            assert!(codes.windows(2).all(|w| w[0] <= w[1]), "{sql}");
        }
    }
}
