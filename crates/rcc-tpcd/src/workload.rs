//! Update workload generation.
//!
//! The replication experiments need a stream of update transactions at the
//! back-end so cached views actually go stale. This generator produces
//! balance updates on Customer and price updates / inserts on Orders,
//! deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcc_common::{Row, Value};
use rcc_storage::RowChange;

/// A deterministic stream of single-row update transactions over the
/// generated TPC-D data.
#[derive(Debug)]
pub struct UpdateWorkload {
    rng: StdRng,
    customer_count: u64,
    next_orderkey: i64,
}

/// One generated change: the target table plus the row change.
pub type WorkloadChange = (String, RowChange);

impl UpdateWorkload {
    /// Workload over a database with `customer_count` customers.
    pub fn new(customer_count: u64, seed: u64) -> UpdateWorkload {
        UpdateWorkload {
            rng: StdRng::seed_from_u64(seed),
            customer_count,
            // new orders get keys far above the generated 5..=15 range
            next_orderkey: 1_000_000,
        }
    }

    /// Next customer balance update.
    pub fn customer_update(&mut self) -> WorkloadChange {
        let k = self.rng.gen_range(1..=self.customer_count) as i64;
        let bal = self.rng.gen_range(-999.99f64..9999.99);
        (
            "customer".to_string(),
            RowChange::Update {
                key: vec![Value::Int(k)],
                row: Row::new(vec![
                    Value::Int(k),
                    Value::Str(format!("Customer#{k:09}")),
                    Value::Int(self.rng.gen_range(0..25)),
                    Value::Float((bal * 100.0).round() / 100.0),
                ]),
            },
        )
    }

    /// Next new-order insert.
    pub fn order_insert(&mut self) -> WorkloadChange {
        let cust = self.rng.gen_range(1..=self.customer_count) as i64;
        self.next_orderkey += 1;
        let price = self.rng.gen_range(10.0f64..10_000.0);
        (
            "orders".to_string(),
            RowChange::Insert(Row::new(vec![
                Value::Int(cust),
                Value::Int(self.next_orderkey),
                Value::Float((price * 100.0).round() / 100.0),
                Value::Str("O".to_string()),
            ])),
        )
    }

    /// A mixed change: 70% customer updates, 30% order inserts.
    pub fn next_change(&mut self) -> WorkloadChange {
        if self.rng.gen_bool(0.7) {
            self.customer_update()
        } else {
            self.order_insert()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = UpdateWorkload::new(100, 5);
        let mut b = UpdateWorkload::new(100, 5);
        for _ in 0..20 {
            assert_eq!(a.next_change(), b.next_change());
        }
    }

    #[test]
    fn customer_updates_target_valid_keys() {
        let mut w = UpdateWorkload::new(50, 1);
        for _ in 0..100 {
            let (table, change) = w.customer_update();
            assert_eq!(table, "customer");
            match change {
                RowChange::Update { key, row } => {
                    let k = key[0].as_int().unwrap();
                    assert!((1..=50).contains(&k));
                    assert_eq!(row.get(0), &key[0]);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn order_inserts_use_fresh_keys() {
        let mut w = UpdateWorkload::new(50, 2);
        let mut keys = std::collections::HashSet::new();
        for _ in 0..100 {
            let (table, change) = w.order_insert();
            assert_eq!(table, "orders");
            match change {
                RowChange::Insert(row) => {
                    let key = (row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap());
                    assert!(key.1 > 1_000_000);
                    assert!(keys.insert(key.1), "order keys must be unique");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn mix_has_both_kinds() {
        let mut w = UpdateWorkload::new(50, 3);
        let mut cust = 0;
        let mut ord = 0;
        for _ in 0..200 {
            match w.next_change().0.as_str() {
                "customer" => cust += 1,
                "orders" => ord += 1,
                other => panic!("{other}"),
            }
        }
        assert!(cust > 100 && ord > 30, "cust={cust} ord={ord}");
    }
}
