//! Deterministic Customer / Orders generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcc_catalog::TableMeta;
use rcc_common::{Column, DataType, IndexId, Result, Row, Schema, TableId, Value};

/// Rows in Customer at scale factor 1.0.
pub const CUSTOMERS_SF1: u64 = 150_000;
/// Average orders per customer (paper: "Customers have 10 orders on
/// average so the information for a customer is repeated 10 times in the
/// join result").
pub const ORDERS_PER_CUSTOMER: u64 = 10;

/// Catalog metadata for the Customer table, matching the paper's layout:
/// clustered on `c_custkey`, secondary index `ix_acctbal` on `c_acctbal`.
pub fn customer_meta(id: TableId) -> TableMeta {
    let schema = Schema::new(vec![
        Column::new("c_custkey", DataType::Int),
        Column::new("c_name", DataType::Str),
        Column::new("c_nationkey", DataType::Int),
        Column::new("c_acctbal", DataType::Float),
    ]);
    let mut meta =
        TableMeta::new(id, "customer", schema, vec!["c_custkey".into()]).expect("static schema");
    meta.add_index(IndexId(1), "ix_acctbal", vec!["c_acctbal".into()])
        .expect("static schema");
    meta
}

/// Catalog metadata for the Nation table: clustered on `n_nationkey`, no
/// secondary indexes. The audit catalog registers it without any cached
/// view on purpose — it is the lint corpus's target for bounds that no
/// currency region can verify (L006).
pub fn nation_meta(id: TableId) -> TableMeta {
    let schema = Schema::new(vec![
        Column::new("n_nationkey", DataType::Int),
        Column::new("n_name", DataType::Str),
        Column::new("n_regionkey", DataType::Int),
    ]);
    TableMeta::new(id, "nation", schema, vec!["n_nationkey".into()]).expect("static schema")
}

/// Catalog metadata for the Orders table: clustered on
/// `(o_custkey, o_orderkey)`, no secondary indexes.
pub fn orders_meta(id: TableId) -> TableMeta {
    let schema = Schema::new(vec![
        Column::new("o_custkey", DataType::Int),
        Column::new("o_orderkey", DataType::Int),
        Column::new("o_totalprice", DataType::Float),
        Column::new("o_status", DataType::Str),
    ]);
    TableMeta::new(
        id,
        "orders",
        schema,
        vec!["o_custkey".into(), "o_orderkey".into()],
    )
    .expect("static schema")
}

/// Deterministic generator for TPC-D Customer/Orders data.
#[derive(Debug, Clone)]
pub struct TpcdGenerator {
    scale: f64,
    seed: u64,
}

impl TpcdGenerator {
    /// Generator at `scale` (1.0 = the paper's 150k customers / 1.5M
    /// orders) with a fixed seed for reproducibility.
    pub fn new(scale: f64, seed: u64) -> TpcdGenerator {
        assert!(scale > 0.0, "scale factor must be positive");
        TpcdGenerator { scale, seed }
    }

    /// Number of customers at this scale.
    pub fn customer_count(&self) -> u64 {
        ((CUSTOMERS_SF1 as f64 * self.scale).round() as u64).max(1)
    }

    /// Expected total orders (exactly `10 × customers` in aggregate; the
    /// per-customer count varies 5..=15).
    pub fn expected_order_count(&self) -> u64 {
        self.customer_count() * ORDERS_PER_CUSTOMER
    }

    /// Account-balance domain, matching TPC-D's [-999.99, 9999.99].
    pub fn acctbal_range(&self) -> (f64, f64) {
        (-999.99, 9999.99)
    }

    /// Generate all customer rows in clustered order.
    pub fn customers(&self) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.customer_count();
        let mut rows = Vec::with_capacity(n as usize);
        for k in 1..=n {
            let acctbal = rng.gen_range(-999.99f64..9999.99);
            rows.push(Row::new(vec![
                Value::Int(k as i64),
                Value::Str(format!("Customer#{k:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float((acctbal * 100.0).round() / 100.0),
            ]));
        }
        rows
    }

    /// Generate all order rows in clustered order. Per-customer counts are
    /// drawn uniformly from 5..=15 (mean 10), so the 10-orders-per-customer
    /// ratio that drives the paper's Q2 plan choice holds in aggregate.
    pub fn orders(&self) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        let n = self.customer_count();
        let mut rows = Vec::with_capacity((n * ORDERS_PER_CUSTOMER) as usize);
        for cust in 1..=n {
            let count = rng.gen_range(5..=15u64);
            for ord in 1..=count {
                let price = rng.gen_range(10.0f64..10_000.0);
                rows.push(Row::new(vec![
                    Value::Int(cust as i64),
                    Value::Int(ord as i64),
                    Value::Float((price * 100.0).round() / 100.0),
                    Value::Str(if rng.gen_bool(0.5) { "O" } else { "F" }.to_string()),
                ]));
            }
        }
        rows
    }

    /// Load both tables into a storage-backed sink (e.g. the master
    /// database's `bulk_load`); returns (customers, orders) row counts.
    pub fn load_into<F>(&self, mut load: F) -> Result<(usize, usize)>
    where
        F: FnMut(&str, Vec<Row>) -> Result<usize>,
    {
        let c = load("customer", self.customers())?;
        let o = load("orders", self.orders())?;
        Ok((c, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = TpcdGenerator::new(0.001, 42);
        let b = TpcdGenerator::new(0.001, 42);
        assert_eq!(a.customers(), b.customers());
        assert_eq!(a.orders(), b.orders());
        let c = TpcdGenerator::new(0.001, 43);
        assert_ne!(a.customers(), c.customers());
    }

    #[test]
    fn scale_controls_cardinality() {
        let g = TpcdGenerator::new(0.001, 1);
        assert_eq!(g.customer_count(), 150);
        assert_eq!(g.customers().len(), 150);
        let orders = g.orders();
        let ratio = orders.len() as f64 / 150.0;
        assert!(
            (8.0..=12.0).contains(&ratio),
            "avg orders/customer = {ratio}"
        );
    }

    #[test]
    fn keys_are_unique_and_clustered() {
        let g = TpcdGenerator::new(0.002, 7);
        let customers = g.customers();
        let mut prev = 0i64;
        for row in &customers {
            let k = row.get(0).as_int().unwrap();
            assert!(k > prev, "clustered order");
            prev = k;
        }
        let orders = g.orders();
        let mut seen = std::collections::HashSet::new();
        for row in &orders {
            let key = (row.get(0).as_int().unwrap(), row.get(1).as_int().unwrap());
            assert!(seen.insert(key), "duplicate order key {key:?}");
        }
    }

    #[test]
    fn orders_reference_existing_customers() {
        let g = TpcdGenerator::new(0.001, 3);
        let max_cust = g.customer_count() as i64;
        for row in g.orders() {
            let c = row.get(0).as_int().unwrap();
            assert!(c >= 1 && c <= max_cust);
        }
    }

    #[test]
    fn balances_in_tpcd_domain() {
        let g = TpcdGenerator::new(0.001, 9);
        for row in g.customers() {
            let bal = row.get(3).as_float().unwrap();
            assert!((-999.99..=9999.99).contains(&bal));
        }
    }

    #[test]
    fn metadata_matches_paper_layout() {
        let c = customer_meta(TableId(1));
        assert_eq!(c.key, vec!["c_custkey".to_string()]);
        assert!(c.index_on("c_acctbal").is_some());
        let o = orders_meta(TableId(2));
        assert_eq!(
            o.key,
            vec!["o_custkey".to_string(), "o_orderkey".to_string()]
        );
        assert!(o.indexes.is_empty());
    }

    #[test]
    fn rows_match_meta_arity() {
        let g = TpcdGenerator::new(0.0005, 1);
        let cm = customer_meta(TableId(1));
        let om = orders_meta(TableId(2));
        assert!(g.customers().iter().all(|r| r.len() == cm.schema.len()));
        assert!(g.orders().iter().all(|r| r.len() == om.schema.len()));
    }
}
