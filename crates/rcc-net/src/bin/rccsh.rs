//! `rccsh` — a small interactive shell / one-shot client for `rccd`.
//!
//! ```text
//! rccsh [--addr HOST:PORT] [--policy reject|serve-stale]
//!       [--connect-retry-secs N] [SQL ...]
//! ```
//!
//! With SQL on the command line, runs it once and exits 0 on success, 1 on
//! any error (the CI smoke test relies on this). Without SQL, reads
//! statements from stdin, one per line. Backslash meta-commands in the
//! REPL: `\trace` dumps the server's most recent query trace, `\events`
//! lists the server's event journal, `\help` shows the cheat sheet.

use rcc_mtcache::ViolationPolicy;
use rcc_net::{ClientConfig, NetClient, NetQueryResult};
use std::io::{self, BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    addr: String,
    policy: Option<ViolationPolicy>,
    connect_retry: Option<Duration>,
    sql: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7878".into(),
            policy: None,
            connect_retry: None,
            sql: Vec::new(),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                opts.addr = args.next().ok_or("--addr needs a value")?;
            }
            "--policy" => {
                let v = args.next().ok_or("--policy needs a value")?;
                opts.policy = Some(match v.to_ascii_lowercase().replace('-', "_").as_str() {
                    "reject" => ViolationPolicy::Reject,
                    "serve_stale" => ViolationPolicy::ServeStale,
                    other => return Err(format!("unknown policy {other}")),
                });
            }
            "--connect-retry-secs" => {
                let v: u64 = args
                    .next()
                    .ok_or("--connect-retry-secs needs a value")?
                    .parse()
                    .map_err(|e| format!("--connect-retry-secs: {e}"))?;
                opts.connect_retry = Some(Duration::from_secs(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: rccsh [--addr HOST:PORT] [--policy reject|serve-stale] \
                     [--connect-retry-secs N] [SQL ...]"
                );
                std::process::exit(0);
            }
            _ => {
                // first non-flag argument starts the SQL text
                let mut sql = vec![arg];
                sql.extend(args.by_ref());
                opts.sql = sql;
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rccsh: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rccsh: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: Options) -> Result<(), String> {
    let cfg = ClientConfig::default();
    let mut client = match opts.connect_retry {
        Some(total) => NetClient::connect_retry(opts.addr.as_str(), &cfg, total),
        None => NetClient::connect(opts.addr.as_str(), &cfg),
    }
    .map_err(|e| e.to_string())?;
    if let Some(policy) = opts.policy {
        client.set_policy(policy).map_err(|e| e.to_string())?;
    }

    if !opts.sql.is_empty() {
        let sql = opts.sql.join(" ");
        let result = client.query(&sql).map_err(|e| e.to_string())?;
        print_result(&result);
        return Ok(());
    }

    // REPL: one statement per line
    let stdin = io::stdin();
    let mut out = io::stdout();
    eprintln!(
        "rccsh: connected to {} (\\help for meta-commands)",
        opts.addr
    );
    loop {
        write!(out, "rcc> ").and_then(|_| out.flush()).ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("quit") || sql.eq_ignore_ascii_case("exit") {
            return Ok(());
        }
        // backslash meta-commands expand to telemetry statements
        let sql = match sql {
            r"\trace" => "SHOW TRACE",
            r"\events" => "SHOW EVENTS",
            r"\help" | r"\?" => {
                print_help();
                continue;
            }
            other if other.starts_with('\\') => {
                eprintln!("unknown meta-command {other} (try \\help)");
                continue;
            }
            other => other,
        };
        match client.query(sql) {
            Ok(result) => print_result(&result),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn print_help() {
    println!(
        "meta-commands:\n  \\trace   show the server's most recent query trace (= SHOW TRACE)\n  \\events  show the server's event journal (= SHOW EVENTS)\n  \\help    this help (also \\?)\n  quit     leave the shell (also exit)"
    );
}

fn print_result(result: &NetQueryResult) {
    let names: Vec<&str> = result
        .schema
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    println!("{}", names.join("\t"));
    for row in &result.rows {
        let vals: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", vals.join("\t"));
    }
    for warning in &result.warnings {
        eprintln!("warning: {warning}");
    }
    eprintln!(
        "({} row(s), {} bytes on the wire, {})",
        result.rows.len(),
        result.wire_bytes,
        if result.used_remote {
            "went to the back-end"
        } else {
            "answered from the cache"
        }
    );
}
