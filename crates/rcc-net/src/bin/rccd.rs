//! `rccd` — the cache server daemon.
//!
//! Boots the paper's rig (cache DBMS + back-end server), puts the back-end
//! behind its own TCP listener, rewires the cache's remote branch through
//! the pooled TCP transport, and serves client sessions on the front-end
//! port. A wall-clock pump advances the simulated replication clock so
//! currency-region heartbeats stay live while the process runs.
//!
//! ```text
//! rccd [--listen ADDR] [--backend-listen ADDR] [--admin-addr ADDR]
//!      [--scale F] [--seed N] [--max-connections N] [--scan-workers N]
//!      [--data-dir PATH] [--wal-sync always|group|never]
//!      [--checkpoint-secs N]
//! ```
//!
//! With `--data-dir` the back-end runs durably: commits are written ahead
//! to `PATH/wal.log` before publishing, a checkpoint is written to
//! `PATH/pages.db` every `--checkpoint-secs` of simulated time (0
//! disables), and a restart from the same directory recovers committed
//! tables plus per-region replication watermarks, so currency accounting
//! resumes where it left off. Without the flag everything stays in memory.
//!
//! With `--admin-addr`, `POST /shutdown` on the admin endpoint stops the
//! daemon gracefully: a final checkpoint is written (durable mode) before
//! the process exits cleanly.

use rcc_mtcache::paper::{paper_setup, paper_setup_durable, warm_up, DurabilityOptions};
use rcc_net::{
    AdminServer, BackendNetServer, NetServer, NetServerConfig, PoolConfig, RetryPolicy,
    TcpRemoteService,
};
use rcc_storage::SyncPolicy;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    listen: String,
    backend_listen: String,
    admin: Option<String>,
    scale: f64,
    seed: u64,
    max_connections: usize,
    scan_workers: usize,
    data_dir: Option<std::path::PathBuf>,
    wal_sync: SyncPolicy,
    checkpoint_secs: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            listen: "127.0.0.1:7878".into(),
            backend_listen: "127.0.0.1:0".into(),
            admin: None,
            scale: 0.01,
            seed: 42,
            max_connections: NetServerConfig::default().max_connections,
            scan_workers: rcc_common::default_scan_workers(),
            data_dir: None,
            wal_sync: SyncPolicy::Always,
            checkpoint_secs: 60,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--backend-listen" => opts.backend_listen = value("--backend-listen")?,
            "--admin-addr" => opts.admin = Some(value("--admin-addr")?),
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-connections" => {
                opts.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--scan-workers" => {
                opts.scan_workers = value("--scan-workers")?
                    .parse()
                    .map_err(|e| format!("--scan-workers: {e}"))?
            }
            "--data-dir" => opts.data_dir = Some(value("--data-dir")?.into()),
            "--wal-sync" => {
                opts.wal_sync = match value("--wal-sync")?.as_str() {
                    "always" => SyncPolicy::Always,
                    "group" => SyncPolicy::Group,
                    "never" => SyncPolicy::Never,
                    other => {
                        return Err(format!(
                            "--wal-sync: expected always|group|never, got {other}"
                        ))
                    }
                }
            }
            "--checkpoint-secs" => {
                opts.checkpoint_secs = value("--checkpoint-secs")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-secs: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: rccd [--listen ADDR] [--backend-listen ADDR] \
                     [--admin-addr ADDR] [--scale F] [--seed N] \
                     [--max-connections N] [--scan-workers N] \
                     [--data-dir PATH] [--wal-sync always|group|never] \
                     [--checkpoint-secs N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rccd: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rccd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: Options) -> Result<(), String> {
    eprintln!(
        "rccd: building the paper rig (scale {}, seed {})...",
        opts.scale, opts.seed
    );
    let cache = match &opts.data_dir {
        Some(dir) => {
            eprintln!(
                "rccd: durable back-end at {} (wal-sync {:?}, checkpoint every {}s)",
                dir.display(),
                opts.wal_sync,
                opts.checkpoint_secs
            );
            paper_setup_durable(
                opts.scale,
                opts.seed,
                DurabilityOptions {
                    data_dir: dir.clone(),
                    sync: opts.wal_sync,
                },
            )
            .map_err(|e| e.to_string())?
        }
        None => paper_setup(opts.scale, opts.seed).map_err(|e| e.to_string())?,
    };
    warm_up(&cache).map_err(|e| e.to_string())?;
    cache.set_scan_workers(opts.scan_workers);
    eprintln!("rccd: scan parallelism {}", opts.scan_workers.max(1));
    let cache = Arc::new(cache);

    // back-end behind its own listener; this pins NetworkModel::Real
    let backend_srv = BackendNetServer::spawn(Arc::clone(cache.backend()), &opts.backend_listen)
        .map_err(|e| format!("backend listener: {e}"))?;

    // remote branch now ships SQL over pooled TCP
    let remote = Arc::new(
        TcpRemoteService::new(
            backend_srv.addr(),
            PoolConfig::default(),
            RetryPolicy::default(),
        )
        .map_err(|e| format!("remote service: {e}"))?,
    );
    remote.set_metrics(Arc::clone(cache.metrics()));
    cache.set_remote_service(Some(
        Arc::clone(&remote) as Arc<dyn rcc_executor::RemoteService>
    ));

    // the admin endpoint holds its own handles on the cache and transport
    let admin = match &opts.admin {
        Some(bind) => Some(
            AdminServer::spawn(Arc::clone(&cache), Some(Arc::clone(&remote)), bind)
                .map_err(|e| format!("admin listener: {e}"))?,
        ),
        None => None,
    };

    let front = NetServer::spawn(
        Arc::clone(&cache),
        &opts.listen,
        NetServerConfig {
            max_connections: opts.max_connections,
            ..NetServerConfig::default()
        },
    )
    .map_err(|e| format!("front-end listener: {e}"))?;

    // keep replication heartbeats live: map wall time onto the sim clock;
    // in durable mode, also checkpoint every `--checkpoint-secs` of sim time
    let pump = Arc::clone(&cache);
    let checkpoint_every = if opts.data_dir.is_some() && opts.checkpoint_secs > 0 {
        Some(opts.checkpoint_secs * 10) // ticks of 100 ms
    } else {
        None
    };
    std::thread::Builder::new()
        .name("rcc-clock-pump".into())
        .spawn(move || {
            let mut ticks: u64 = 0;
            loop {
                std::thread::sleep(Duration::from_millis(100));
                if pump
                    .advance(rcc_common::Duration::from_millis(100))
                    .is_err()
                {
                    break;
                }
                ticks += 1;
                if let Some(every) = checkpoint_every {
                    if ticks.is_multiple_of(every) {
                        if let Err(e) = pump.checkpoint() {
                            eprintln!("rccd: checkpoint failed: {e}");
                        }
                    }
                }
            }
        })
        .map_err(|e| format!("clock pump: {e}"))?;

    match &admin {
        Some(a) => println!(
            "rccd listening on {} (back-end at {}, admin at http://{})",
            front.addr(),
            backend_srv.addr(),
            a.addr()
        ),
        None => println!(
            "rccd listening on {} (back-end at {})",
            front.addr(),
            backend_srv.addr()
        ),
    }
    // serve until killed, or — with an admin endpoint — until a client
    // POSTs /shutdown, which gets a final checkpoint before a clean exit
    match &admin {
        Some(a) => {
            while !a.stop_requested() {
                std::thread::sleep(Duration::from_secs(1));
            }
            match cache.checkpoint() {
                Ok(true) => eprintln!("rccd: shutdown checkpoint written"),
                Ok(false) => {}
                Err(e) => eprintln!("rccd: shutdown checkpoint failed: {e}"),
            }
            eprintln!("rccd: shutting down");
            Ok(())
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}
