//! Central registry of wire-frame tag bytes.
//!
//! Every `TAG_*` constant in the framed protocol ([`crate::frame`]) must
//! appear here exactly once, with the byte it is bound to. The registry is
//! the single place a reviewer (or the workspace source linter's
//! `frame-tags` check) can see the whole tag space at a glance: request
//! tags live below `0x80`, response tags at `0x80` and above, and no byte
//! is ever reused — a frozen wire format is what lets old and new peers
//! interoperate (see the compatibility notes on [`crate::frame`]).
//!
//! `workspace-lint` enforces the contract mechanically: every
//! `const TAG_*: u8 = ...;` declaration in the workspace must be
//! registered here under the same byte, every registered tag must be
//! declared and used somewhere, and no byte or name may appear twice.

/// All wire-frame tag bytes, `(byte, constant name)`, sorted by byte.
///
/// Request tags occupy `0x01..=0x7f`; response tags `0x80..=0xff`.
pub const FRAME_TAGS: &[(u8, &str)] = &[
    (0x01, "TAG_QUERY"),
    (0x02, "TAG_SET_OPTION"),
    (0x03, "TAG_PING"),
    (0x04, "TAG_QUERY_TRACED"),
    (0x81, "TAG_RESULT"),
    (0x82, "TAG_ERROR"),
    (0x83, "TAG_OK"),
    (0x84, "TAG_PONG"),
    (0x85, "TAG_RESULT_TRACED"),
];

/// The registered constant name for a tag byte, if any.
pub fn name_of(tag: u8) -> Option<&'static str> {
    FRAME_TAGS
        .iter()
        .find(|(b, _)| *b == tag)
        .map(|(_, name)| *name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in FRAME_TAGS.windows(2) {
            assert!(w[0].0 < w[1].0, "{:?} before {:?}", w[0], w[1]);
        }
        let mut names: Vec<&str> = FRAME_TAGS.iter().map(|(_, n)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FRAME_TAGS.len(), "duplicate tag name");
    }

    #[test]
    fn request_and_response_ranges_hold() {
        for (byte, name) in FRAME_TAGS {
            let is_response = *byte >= 0x80;
            let is_response_name = matches!(
                *name,
                "TAG_RESULT" | "TAG_ERROR" | "TAG_OK" | "TAG_PONG" | "TAG_RESULT_TRACED"
            );
            assert_eq!(
                is_response, is_response_name,
                "tag {name} (0x{byte:02x}) is in the wrong byte range"
            );
        }
    }

    #[test]
    fn name_of_resolves_registered_bytes_only() {
        assert_eq!(name_of(0x01), Some("TAG_QUERY"));
        assert_eq!(name_of(0x85), Some("TAG_RESULT_TRACED"));
        assert_eq!(name_of(0x7f), None);
    }
}
