//! The TCP remote service: the cache's remote branch over a real socket.
//!
//! Implements [`rcc_executor::RemoteService`] by shipping SQL text to a
//! [`crate::BackendNetServer`] through a [`BackendPool`], with per-call
//! deadlines (the pool's `io_timeout` bounds every read/write) and bounded
//! retry-with-backoff on transport failures. Application-level errors from
//! the back-end (bad SQL, rejected currency clause) are returned as-is and
//! never retried; transport failures that exhaust the retry budget become
//! [`rcc_common::Error::Unavailable`], which the cache degrades per the
//! session's `ViolationPolicy` — the same semantics `tests/
//! failure_injection.rs` establishes for the in-process link, now over a
//! real socket.

use crate::frame::{read_frame, write_frame, Request, Response, TraceContext, WireSpan};
use crate::pool::{BackendPool, PoolConfig};
use parking_lot::Mutex;
use rcc_common::{Error, Result, Row, Schema};
use rcc_executor::{wire, RemoteService};
use rcc_obs::{MetricsRegistry, SpanRecord, TraceRef, DEFAULT_LATENCY_BUCKETS};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded retry-with-backoff for transport failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles after each failure.
    pub initial_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(10),
        }
    }
}

/// A [`RemoteService`] that ships SQL over pooled TCP connections.
#[derive(Debug)]
pub struct TcpRemoteService {
    pool: BackendPool,
    retry: RetryPolicy,
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

/// One call attempt's failure mode: transport errors are retryable,
/// application errors are final.
enum CallError {
    Transport(io::Error),
    App(Error),
}

impl TcpRemoteService {
    /// A service dialing `addr` lazily (the first remote branch opens the
    /// first connection).
    pub fn new(
        addr: impl ToSocketAddrs,
        pool: PoolConfig,
        retry: RetryPolicy,
    ) -> io::Result<TcpRemoteService> {
        Ok(TcpRemoteService {
            pool: BackendPool::new(addr, pool)?,
            retry,
            metrics: Mutex::new(None),
        })
    }

    /// The underlying pool (occupancy inspection, draining).
    pub fn pool(&self) -> &BackendPool {
        &self.pool
    }

    /// Publish transport metrics: call latency histogram, retry/timeout/
    /// unavailable counters, and the pool occupancy gauges.
    pub fn set_metrics(&self, registry: Arc<MetricsRegistry>) {
        registry.describe(
            "rcc_net_remote_call_seconds",
            "Wall time of remote calls over the TCP transport (including retries).",
        );
        registry.describe(
            "rcc_net_remote_retries_total",
            "Remote-call attempts retried after a transport failure.",
        );
        registry.describe(
            "rcc_net_remote_timeouts_total",
            "Remote-call attempts that hit the per-call deadline.",
        );
        registry.describe(
            "rcc_net_remote_unavailable_total",
            "Remote calls that exhausted every retry and degraded per policy.",
        );
        self.pool.set_metrics(&registry);
        *self.metrics.lock() = Some(registry);
    }

    /// One framed request/response round trip on a pooled connection.
    fn call_once(
        &self,
        sql: &str,
        trace: Option<&TraceRef>,
    ) -> std::result::Result<(Schema, Vec<Row>, u64), CallError> {
        let stream = self.pool.checkout().map_err(CallError::Transport)?;
        match self.roundtrip(&stream, sql, trace) {
            Ok(out) => {
                self.pool.checkin(stream);
                Ok(out)
            }
            Err(CallError::App(e)) => {
                // the connection is still in protocol sync: reuse it
                self.pool.checkin(stream);
                Err(CallError::App(e))
            }
            Err(CallError::Transport(e)) => {
                self.pool.discard();
                Err(CallError::Transport(e))
            }
        }
    }

    fn roundtrip(
        &self,
        mut stream: &TcpStream,
        sql: &str,
        trace: Option<&TraceRef>,
    ) -> std::result::Result<(Schema, Vec<Row>, u64), CallError> {
        let req = match trace {
            Some(t) => Request::QueryTraced {
                sql: sql.to_string(),
                trace: TraceContext {
                    trace_id: t.id(),
                    parent_depth: t.current_depth() as u32,
                },
            },
            None => Request::Query {
                sql: sql.to_string(),
            },
        };
        // remote span offsets are relative to this moment on our timeline
        let sent_at = trace.map(|t| t.elapsed());
        write_frame(&mut stream, &req.encode()).map_err(CallError::Transport)?;
        let payload = read_frame(&mut stream)
            .map_err(CallError::Transport)?
            .ok_or_else(|| {
                CallError::Transport(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "back-end closed the connection",
                ))
            })?;
        match Response::decode(payload).map_err(CallError::App)? {
            Response::ResultSet { payload, .. } => {
                let bytes = payload.len() as u64;
                let (schema, rows) = wire::decode_result(payload).map_err(CallError::App)?;
                Ok((schema, rows, bytes))
            }
            Response::ResultSetTraced { spans, payload, .. } => {
                if let (Some(t), Some(offset)) = (trace, sent_at) {
                    t.merge_spans(t.current_depth(), offset, wire_spans_to_records(spans));
                }
                let bytes = payload.len() as u64;
                let (schema, rows) = wire::decode_result(payload).map_err(CallError::App)?;
                Ok((schema, rows, bytes))
            }
            Response::Error(e) => Err(CallError::App(e)),
            other => Err(CallError::App(Error::Remote(format!(
                "unexpected back-end response frame {other:?}"
            )))),
        }
    }

    fn counter(&self, name: &str) {
        if let Some(m) = &*self.metrics.lock() {
            m.counter(name, &[]).inc();
        }
    }

    /// The shared retry loop behind both `execute_with_bytes` and
    /// `execute_traced`.
    fn execute_inner(
        &self,
        sql: &str,
        trace: Option<&TraceRef>,
    ) -> Result<(Schema, Vec<Row>, u64)> {
        let started = Instant::now();
        let mut backoff = self.retry.initial_backoff;
        let attempts = self.retry.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.counter("rcc_net_remote_retries_total");
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match self.call_once(sql, trace) {
                Ok(out) => {
                    if let Some(m) = &*self.metrics.lock() {
                        m.histogram("rcc_net_remote_call_seconds", &[], DEFAULT_LATENCY_BUCKETS)
                            .observe(started.elapsed().as_secs_f64());
                    }
                    return Ok(out);
                }
                Err(CallError::App(e)) => return Err(e),
                Err(CallError::Transport(e)) => {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) {
                        self.counter("rcc_net_remote_timeouts_total");
                    }
                    last_err = Some(e);
                }
            }
        }
        self.counter("rcc_net_remote_unavailable_total");
        let detail = last_err
            .map(|e| e.to_string())
            .unwrap_or_else(|| "unknown transport failure".into());
        Err(Error::Unavailable(format!(
            "back-end at {} unreachable after {attempts} attempt(s): {detail}",
            self.pool.addr()
        )))
    }
}

/// Convert remote wire spans onto the local span-record shape (offsets
/// still relative to the remote request; the caller re-bases them).
fn wire_spans_to_records(spans: Vec<WireSpan>) -> Vec<SpanRecord> {
    spans
        .into_iter()
        .map(|s| SpanRecord {
            name: s.name,
            depth: s.depth as usize,
            start: Duration::from_micros(s.start_us),
            elapsed: Duration::from_micros(s.elapsed_us),
        })
        .collect()
}

impl RemoteService for TcpRemoteService {
    fn execute(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        self.execute_with_bytes(sql)
            .map(|(schema, rows, _)| (schema, rows))
    }

    fn execute_with_bytes(&self, sql: &str) -> Result<(Schema, Vec<Row>, u64)> {
        self.execute_inner(sql, None)
    }

    fn execute_traced(
        &self,
        sql: &str,
        trace: Option<&TraceRef>,
    ) -> Result<(Schema, Vec<Row>, u64)> {
        match trace {
            Some(t) => {
                // everything below — retries included — nests under one span
                let _call = t.span("remote_call");
                self.execute_inner(sql, trace)
            }
            None => self.execute_inner(sql, None),
        }
    }
}
