//! The cache front-end: an [`MTCache`] behind a TCP socket.
//!
//! Thread-per-connection with a bounded accept pool: at most
//! [`NetServerConfig::max_connections`] sessions are live at once; excess
//! connections receive an [`Error::Unavailable`] frame and are closed
//! immediately (clients see "server busy" instead of an unbounded queue).
//! Each connection owns one [`rcc_mtcache::Session`], so currency options
//! (violation policy, TIMEORDERED brackets) are isolated per client.
//! Shutdown is graceful: in-flight statements finish, idle connections
//! notice the stop flag within one poll interval, and every thread is
//! joined before [`NetServer::shutdown`] returns.

use crate::frame::{read_frame_interruptible, write_frame, Request, Response};
use parking_lot::Mutex;
use rcc_common::Error;
use rcc_executor::wire;
use rcc_mtcache::{MTCache, ViolationPolicy};
use rcc_obs::{MetricsRegistry, DEFAULT_LATENCY_BUCKETS};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the shutdown flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Tuning for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bounded accept pool: connections beyond this are refused with a
    /// busy error frame.
    pub max_connections: usize,
    /// Once a frame's first byte arrives, the peer has this long to
    /// deliver the rest (half-open connections cannot pin a thread).
    pub frame_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 64,
            frame_timeout: Duration::from_secs(10),
        }
    }
}

/// The TCP front-end server for one [`MTCache`].
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and serve `cache` from a
    /// background accept thread. Front-end metrics are published to the
    /// cache's own [`MetricsRegistry`].
    pub fn spawn(cache: Arc<MTCache>, bind: &str, cfg: NetServerConfig) -> io::Result<NetServer> {
        let registry = Arc::clone(cache.metrics());
        describe_metrics(&registry);
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rcc-net-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(mut stream) = stream else { continue };
                        registry.counter("rcc_net_connections_total", &[]).inc();
                        if active.load(Ordering::SeqCst) >= cfg.max_connections {
                            // bounded accept pool: refuse, don't queue
                            registry
                                .counter("rcc_net_connections_rejected_total", &[])
                                .inc();
                            let busy = Response::Error(Error::Unavailable(format!(
                                "server busy: {} connections already open",
                                cfg.max_connections
                            )));
                            let _ = write_frame(&mut stream, &busy.encode());
                            continue;
                        }
                        let slot = ActiveSlot::take(&active, &registry);
                        let cache = Arc::clone(&cache);
                        let shutdown = Arc::clone(&shutdown);
                        let registry = Arc::clone(&registry);
                        let frame_timeout = cfg.frame_timeout;
                        if let Ok(handle) = std::thread::Builder::new()
                            .name("rcc-net-conn".into())
                            .spawn(move || {
                                handle_conn(cache, stream, shutdown, registry, frame_timeout);
                                drop(slot);
                            })
                        {
                            conns.lock().push(handle);
                        }
                    }
                })?
        };
        Ok(NetServer {
            addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let in-flight statements finish,
    /// join every thread.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.conns.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// RAII guard for one slot of the bounded accept pool, mirrored into the
/// `rcc_net_connections_open` gauge.
struct ActiveSlot {
    active: Arc<AtomicUsize>,
    registry: Arc<MetricsRegistry>,
}

impl ActiveSlot {
    fn take(active: &Arc<AtomicUsize>, registry: &Arc<MetricsRegistry>) -> ActiveSlot {
        active.fetch_add(1, Ordering::SeqCst);
        registry.gauge("rcc_net_connections_open", &[]).inc();
        ActiveSlot {
            active: Arc::clone(active),
            registry: Arc::clone(registry),
        }
    }
}

impl Drop for ActiveSlot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.registry.gauge("rcc_net_connections_open", &[]).dec();
    }
}

fn describe_metrics(registry: &MetricsRegistry) {
    registry.describe(
        "rcc_net_connections_total",
        "TCP connections accepted by the cache front-end.",
    );
    registry.describe(
        "rcc_net_connections_open",
        "TCP connections currently open at the cache front-end.",
    );
    registry.describe(
        "rcc_net_connections_rejected_total",
        "Connections refused because the accept pool was full.",
    );
    registry.describe(
        "rcc_net_requests_total",
        "Protocol requests served, labelled by frame type.",
    );
    registry.describe(
        "rcc_net_request_errors_total",
        "Protocol requests answered with an error frame.",
    );
    registry.describe(
        "rcc_net_request_seconds",
        "Front-end request latency (read frame to response written).",
    );
}

fn handle_conn(
    cache: Arc<MTCache>,
    mut stream: TcpStream,
    shutdown: Arc<AtomicBool>,
    registry: Arc<MetricsRegistry>,
    frame_timeout: Duration,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    // per-connection session: currency options and timeline floors are
    // isolated from every other client
    let mut session = cache.session();
    let stop = || shutdown.load(Ordering::SeqCst);
    while let Ok(Some(payload)) = read_frame_interruptible(&mut stream, &stop, frame_timeout) {
        let started = Instant::now();
        let response = match Request::decode(payload) {
            Ok(Request::Query { sql }) => {
                registry
                    .counter("rcc_net_requests_total", &[("type", "query")])
                    .inc();
                match session.execute(&sql) {
                    Ok(r) => Response::ResultSet {
                        used_remote: r.used_remote,
                        warnings: r.warnings,
                        payload: wire::encode_result(&r.schema, &r.rows),
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Ok(Request::QueryTraced { sql, .. }) => {
                // accepted for protocol symmetry: the cache front-end
                // executes the query normally but does not stream its
                // internal spans to clients — the merged trace (including
                // back-end spans) is retained by the cache's tracer and is
                // visible via `SHOW TRACE` and the admin `/traces` route
                registry
                    .counter("rcc_net_requests_total", &[("type", "query_traced")])
                    .inc();
                match session.execute(&sql) {
                    Ok(r) => Response::ResultSetTraced {
                        used_remote: r.used_remote,
                        warnings: r.warnings,
                        spans: Vec::new(),
                        payload: wire::encode_result(&r.schema, &r.rows),
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Ok(Request::SetOption { name, value }) => {
                registry
                    .counter("rcc_net_requests_total", &[("type", "set_option")])
                    .inc();
                match apply_option(&mut session, &name, &value) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e),
                }
            }
            Ok(Request::Ping) => {
                registry
                    .counter("rcc_net_requests_total", &[("type", "ping")])
                    .inc();
                Response::Pong
            }
            Err(e) => Response::Error(e),
        };
        if matches!(response, Response::Error(_)) {
            registry.counter("rcc_net_request_errors_total", &[]).inc();
        }
        registry
            .histogram("rcc_net_request_seconds", &[], DEFAULT_LATENCY_BUCKETS)
            .observe(started.elapsed().as_secs_f64());
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
}

/// Apply a session option. Currently:
///
/// * `violation_policy` = `reject` | `serve_stale`
fn apply_option(
    session: &mut rcc_mtcache::Session<'_>,
    name: &str,
    value: &str,
) -> Result<(), Error> {
    if name.eq_ignore_ascii_case("violation_policy") {
        let policy = match value.to_ascii_lowercase().replace('-', "_").as_str() {
            "reject" => ViolationPolicy::Reject,
            "serve_stale" => ViolationPolicy::ServeStale,
            other => {
                return Err(Error::Config(format!(
                    "unknown violation_policy '{other}' (expected reject | serve_stale)"
                )))
            }
        };
        session.set_policy(policy);
        Ok(())
    } else {
        Err(Error::Config(format!("unknown session option '{name}'")))
    }
}
