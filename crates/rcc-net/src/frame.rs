//! Length-prefixed framed protocol between clients, the cache front-end,
//! and the back-end transport.
//!
//! Every message travels as one frame:
//!
//! ```text
//! ┌───────────────┬────────────────────────────────────────────┐
//! │ u32 LE length │ payload (length bytes)                     │
//! └───────────────┴────────────────────────────────────────────┘
//! payload:
//! ┌────────┬───────────────────────────────────────────────────┐
//! │ u8 tag │ body (tag-specific)                               │
//! └────────┴───────────────────────────────────────────────────┘
//! ```
//!
//! Request bodies (client → server):
//!
//! | tag  | frame       | body                                          |
//! |------|-------------|-----------------------------------------------|
//! | 0x01 | Query       | string `sql`                                  |
//! | 0x02 | SetOption   | string `name`, string `value`                 |
//! | 0x03 | Ping        | (empty)                                       |
//! | 0x04 | QueryTraced | string `sql`, u64 `trace_id`, u32             |
//! |      |             | `parent_depth`                                |
//!
//! Response bodies (server → client):
//!
//! | tag  | frame           | body                                      |
//! |------|-----------------|-------------------------------------------|
//! | 0x81 | ResultSet       | u8 flags (bit0 `used_remote`), u16        |
//! |      |                 | warning count, warnings as strings, then  |
//! |      |                 | the result encoded with                   |
//! |      |                 | [`rcc_executor::wire`]                    |
//! | 0x82 | Error           | u8 error code, string message             |
//! | 0x83 | Ok              | (empty)                                   |
//! | 0x84 | Pong            | (empty)                                   |
//! | 0x85 | ResultSetTraced | as ResultSet, with a u32 span count plus  |
//! |      |                 | spans (string name, u32 depth, u64        |
//! |      |                 | start_us, u64 elapsed_us) between the     |
//! |      |                 | warnings and the result payload           |
//!
//! Trace context rides on dedicated tags (0x04/0x85) rather than extra
//! bytes on the existing ones because decoding enforces exact body
//! lengths: appending fields to 0x01/0x81 would break every deployed peer.
//! Old clients never see the new tags (servers answer 0x85 only to 0x04),
//! and old servers reject 0x04 with a clean error — compatibility in both
//! directions is pinned by `legacy_byte_layout_is_frozen` below.
//!
//! Strings are `u32 LE length + UTF-8 bytes`. Decoding validates every
//! length against the bytes actually present — truncated or garbage
//! payloads produce [`rcc_common::Error::Remote`], never a panic (the
//! property tests in `tests/proptest_frame.rs` hold the codec to that).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rcc_common::{Error, Result};
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Upper bound on a frame payload (64 MiB): anything larger is a protocol
/// violation, rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 64 << 20;

const TAG_QUERY: u8 = 0x01;
const TAG_SET_OPTION: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_QUERY_TRACED: u8 = 0x04;

const TAG_RESULT: u8 = 0x81;
const TAG_ERROR: u8 = 0x82;
const TAG_OK: u8 = 0x83;
const TAG_PONG: u8 = 0x84;
const TAG_RESULT_TRACED: u8 = 0x85;

/// Trace context carried by [`Request::QueryTraced`]: enough for the
/// back-end to label its span tree so the front-end can graft it into the
/// originating query's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The originating query's trace id (front-end tracer scope).
    pub trace_id: u64,
    /// Span nesting depth at the call site; remote spans are re-based
    /// under it when merged.
    pub parent_depth: u32,
}

/// One span recorded by the remote peer, in wire form. Offsets are
/// microseconds relative to the remote request's own start — the merging
/// side shifts them onto the originating trace's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name (remote spans use a `backend:` prefix).
    pub name: String,
    /// Nesting depth within the remote span tree (0 = remote root).
    pub depth: u32,
    /// Microseconds from remote request start to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub elapsed_us: u64,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one SQL statement in the connection's session.
    Query {
        /// Statement text (may carry CURRENCY clauses, BEGIN TIMEORDERED…).
        sql: String,
    },
    /// Set a session option (e.g. `violation_policy` = `serve_stale`).
    SetOption {
        /// Option name, matched case-insensitively.
        name: String,
        /// Option value.
        value: String,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Like [`Request::Query`], carrying the caller's trace context; the
    /// server records spans while executing and answers with
    /// [`Response::ResultSetTraced`].
    QueryTraced {
        /// Statement text.
        sql: String,
        /// The originating query's trace identity.
        trace: TraceContext,
    },
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful query result.
    ResultSet {
        /// Did the cache contact the back-end to answer this query?
        used_remote: bool,
        /// Human-readable warnings (stale data served, etc.).
        warnings: Vec<String>,
        /// The rows, encoded with [`rcc_executor::wire::encode_result`].
        payload: Bytes,
    },
    /// The request failed; carries the reconstructed error.
    Error(Error),
    /// A request with no result (SetOption) succeeded.
    Ok,
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::QueryTraced`]: a result set plus the span tree
    /// the server recorded while producing it.
    ResultSetTraced {
        /// Did the cache contact the back-end to answer this query?
        used_remote: bool,
        /// Human-readable warnings (stale data served, etc.).
        warnings: Vec<String>,
        /// Spans recorded server-side, in completion order.
        spans: Vec<WireSpan>,
        /// The rows, encoded with [`rcc_executor::wire::encode_result`].
        payload: Bytes,
    },
}

impl Request {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            Request::Query { sql } => {
                buf.put_u8(TAG_QUERY);
                put_str(&mut buf, sql);
            }
            Request::SetOption { name, value } => {
                buf.put_u8(TAG_SET_OPTION);
                put_str(&mut buf, name);
                put_str(&mut buf, value);
            }
            Request::Ping => buf.put_u8(TAG_PING),
            Request::QueryTraced { sql, trace } => {
                buf.put_u8(TAG_QUERY_TRACED);
                put_str(&mut buf, sql);
                buf.put_u64_le(trace.trace_id);
                buf.put_u32_le(trace.parent_depth);
            }
        }
        buf.freeze()
    }

    /// Parse a frame payload. Rejects unknown tags, bad lengths, invalid
    /// UTF-8 and trailing bytes with a clean error.
    pub fn decode(mut buf: Bytes) -> Result<Request> {
        need(&buf, 1)?;
        let tag = buf.get_u8();
        let req = match tag {
            TAG_QUERY => Request::Query {
                sql: get_str(&mut buf)?,
            },
            TAG_SET_OPTION => Request::SetOption {
                name: get_str(&mut buf)?,
                value: get_str(&mut buf)?,
            },
            TAG_PING => Request::Ping,
            TAG_QUERY_TRACED => {
                let sql = get_str(&mut buf)?;
                need(&buf, 12)?;
                Request::QueryTraced {
                    sql,
                    trace: TraceContext {
                        trace_id: buf.get_u64_le(),
                        parent_depth: buf.get_u32_le(),
                    },
                }
            }
            other => return Err(Error::Remote(format!("bad request frame tag {other:#x}"))),
        };
        no_trailing(&buf)?;
        Ok(req)
    }
}

impl Response {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            Response::ResultSet {
                used_remote,
                warnings,
                payload,
            } => {
                buf.put_u8(TAG_RESULT);
                buf.put_u8(*used_remote as u8);
                buf.put_u16_le(warnings.len() as u16);
                for w in warnings {
                    put_str(&mut buf, w);
                }
                buf.put_slice(payload);
            }
            Response::Error(e) => {
                buf.put_u8(TAG_ERROR);
                buf.put_u8(error_code(e));
                put_str(&mut buf, &e.to_string());
            }
            Response::Ok => buf.put_u8(TAG_OK),
            Response::Pong => buf.put_u8(TAG_PONG),
            Response::ResultSetTraced {
                used_remote,
                warnings,
                spans,
                payload,
            } => {
                buf.put_u8(TAG_RESULT_TRACED);
                buf.put_u8(*used_remote as u8);
                buf.put_u16_le(warnings.len() as u16);
                for w in warnings {
                    put_str(&mut buf, w);
                }
                buf.put_u32_le(spans.len() as u32);
                for s in spans {
                    put_str(&mut buf, &s.name);
                    buf.put_u32_le(s.depth);
                    buf.put_u64_le(s.start_us);
                    buf.put_u64_le(s.elapsed_us);
                }
                buf.put_slice(payload);
            }
        }
        buf.freeze()
    }

    /// Parse a frame payload.
    pub fn decode(mut buf: Bytes) -> Result<Response> {
        need(&buf, 1)?;
        let tag = buf.get_u8();
        match tag {
            TAG_RESULT => {
                need(&buf, 3)?;
                let flags = buf.get_u8();
                let nwarn = buf.get_u16_le() as usize;
                let mut warnings = Vec::with_capacity(nwarn.min(64));
                for _ in 0..nwarn {
                    warnings.push(get_str(&mut buf)?);
                }
                // the rest of the payload is the wire-encoded result set;
                // its internal framing is validated by wire::decode_result
                Ok(Response::ResultSet {
                    used_remote: flags & 1 != 0,
                    warnings,
                    payload: buf,
                })
            }
            TAG_ERROR => {
                need(&buf, 1)?;
                let code = buf.get_u8();
                let message = get_str(&mut buf)?;
                no_trailing(&buf)?;
                Ok(Response::Error(error_from_code(code, message)))
            }
            TAG_OK => {
                no_trailing(&buf)?;
                Ok(Response::Ok)
            }
            TAG_PONG => {
                no_trailing(&buf)?;
                Ok(Response::Pong)
            }
            TAG_RESULT_TRACED => {
                need(&buf, 3)?;
                let flags = buf.get_u8();
                let nwarn = buf.get_u16_le() as usize;
                let mut warnings = Vec::with_capacity(nwarn.min(64));
                for _ in 0..nwarn {
                    warnings.push(get_str(&mut buf)?);
                }
                need(&buf, 4)?;
                let nspans = buf.get_u32_le() as usize;
                let mut spans = Vec::with_capacity(nspans.min(256));
                for _ in 0..nspans {
                    let name = get_str(&mut buf)?;
                    need(&buf, 20)?;
                    spans.push(WireSpan {
                        name,
                        depth: buf.get_u32_le(),
                        start_us: buf.get_u64_le(),
                        elapsed_us: buf.get_u64_le(),
                    });
                }
                Ok(Response::ResultSetTraced {
                    used_remote: flags & 1 != 0,
                    warnings,
                    spans,
                    payload: buf,
                })
            }
            other => Err(Error::Remote(format!("bad response frame tag {other:#x}"))),
        }
    }
}

// -------------------------------------------------------- error code map

const CODE_PARSE: u8 = 1;
const CODE_ANALYSIS: u8 = 2;
const CODE_NOT_FOUND: u8 = 3;
const CODE_CURRENCY: u8 = 4;
const CODE_REMOTE: u8 = 5;
const CODE_UNAVAILABLE: u8 = 6;
const CODE_EXECUTION: u8 = 7;
const CODE_CONFIG: u8 = 8;
const CODE_NO_PLAN: u8 = 9;
const CODE_OTHER: u8 = 0;

/// Map an error to its wire code. Lossy: the class survives the trip, the
/// exact variant does not (a client mostly needs to distinguish "your SQL
/// is wrong" from "your bound cannot be met" from "the server is sick").
fn error_code(e: &Error) -> u8 {
    match e {
        Error::Lex { .. } | Error::Parse { .. } => CODE_PARSE,
        Error::Analysis(_) | Error::Type(_) => CODE_ANALYSIS,
        Error::NotFound(_) | Error::AlreadyExists(_) => CODE_NOT_FOUND,
        Error::CurrencyViolation(_) => CODE_CURRENCY,
        Error::Remote(_) => CODE_REMOTE,
        Error::Unavailable(_) => CODE_UNAVAILABLE,
        Error::Execution(_) | Error::Storage(_) => CODE_EXECUTION,
        Error::Config(_) => CODE_CONFIG,
        Error::NoPlan(_) => CODE_NO_PLAN,
        Error::Internal(_) => CODE_OTHER,
    }
}

/// Reconstruct an error from its wire code; the message is the server-side
/// `Display` rendering.
fn error_from_code(code: u8, message: String) -> Error {
    match code {
        CODE_PARSE => Error::Parse {
            pos: 0,
            line: 0,
            col: 0,
            message,
        },
        CODE_ANALYSIS => Error::Analysis(message),
        CODE_NOT_FOUND => Error::NotFound(message),
        CODE_CURRENCY => Error::CurrencyViolation(message),
        CODE_REMOTE => Error::Remote(message),
        CODE_UNAVAILABLE => Error::Unavailable(message),
        CODE_EXECUTION => Error::Execution(message),
        CODE_CONFIG => Error::Config(message),
        CODE_NO_PLAN => Error::NoPlan(message),
        _ => Error::Internal(message),
    }
}

// ----------------------------------------------------------- primitives

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::Remote("truncated protocol frame".into()))
    } else {
        Ok(())
    }
}

fn no_trailing(buf: &Bytes) -> Result<()> {
    if buf.has_remaining() {
        Err(Error::Remote("trailing bytes in protocol frame".into()))
    } else {
        Ok(())
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    String::from_utf8(buf.copy_to_bytes(len).to_vec())
        .map_err(|_| Error::Remote("bad string encoding in protocol frame".into()))
}

// ------------------------------------------------------------- frame I/O

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF (the peer closed the
/// connection between frames); mid-frame EOF is an error. Partial reads
/// are handled — the transfer may arrive in arbitrarily small chunks.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Bytes>> {
    let mut head = [0u8; 4];
    match read_exact_or_eof(r, &mut head)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(head) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact` that reports clean EOF *before the first byte* as
/// [`ReadOutcome::Eof`] instead of an error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// Read one frame from a stream whose read timeout is set to a short poll
/// interval, so the loop can notice `should_stop` (server shutdown)
/// between chunks. Semantics:
///
/// * idle connection (no bytes yet): wait indefinitely, polling
///   `should_stop`; a stop request returns `Ok(None)` like a clean EOF;
/// * mid-frame: the peer has `mid_frame_timeout` to deliver the rest,
///   otherwise the read fails with `TimedOut` (half-open connections
///   cannot wedge a server thread forever).
pub fn read_frame_interruptible(
    r: &mut impl Read,
    should_stop: &dyn Fn() -> bool,
    mid_frame_timeout: Duration,
) -> io::Result<Option<Bytes>> {
    let mut head = [0u8; 4];
    if !read_poll(r, &mut head, should_stop, mid_frame_timeout, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(head) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_poll(r, &mut payload, should_stop, mid_frame_timeout, false)? {
        return Ok(None);
    }
    Ok(Some(Bytes::from(payload)))
}

/// Fill `buf`, tolerating poll timeouts. Returns `Ok(false)` for a clean
/// stop (EOF before any byte, or `should_stop` while still idle).
fn read_poll(
    r: &mut impl Read,
    buf: &mut [u8],
    should_stop: &dyn Fn() -> bool,
    mid_frame_timeout: Duration,
    idle_ok: bool,
) -> io::Result<bool> {
    let mut filled = 0;
    let mut first_byte_at: Option<Instant> = if idle_ok { None } else { Some(Instant::now()) };
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && idle_ok => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                filled += n;
                first_byte_at.get_or_insert_with(Instant::now);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                match first_byte_at {
                    None => {
                        // still idle: stopping here is a clean exit
                        if should_stop() {
                            return Ok(false);
                        }
                    }
                    Some(started) => {
                        if started.elapsed() > mid_frame_timeout {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "peer stalled mid-frame",
                            ));
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Query {
                sql: "SELECT 1 CURRENCY BOUND 5 SEC ON (t)".into(),
            },
            Request::SetOption {
                name: "violation_policy".into(),
                value: "serve_stale".into(),
            },
            Request::Ping,
        ] {
            assert_eq!(Request::decode(req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        use rcc_common::{Column, DataType, Row, Schema, Value};
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let payload = rcc_executor::wire::encode_result(&schema, &[Row::new(vec![Value::Int(7)])]);
        for resp in [
            Response::ResultSet {
                used_remote: true,
                warnings: vec!["stale".into()],
                payload: payload.clone(),
            },
            Response::Ok,
            Response::Pong,
        ] {
            assert_eq!(Response::decode(resp.encode()).unwrap(), resp);
        }
        // errors round-trip as class + Display rendering, not identical
        // payloads (see error_codes_preserve_class)
        let err = Error::CurrencyViolation("too stale".into());
        match Response::decode(Response::Error(err.clone()).encode()).unwrap() {
            Response::Error(Error::CurrencyViolation(m)) => assert_eq!(m, err.to_string()),
            other => panic!("expected a currency violation, got {other:?}"),
        }
    }

    #[test]
    fn error_codes_preserve_class() {
        for e in [
            Error::analysis("x"),
            Error::CurrencyViolation("x".into()),
            Error::Unavailable("x".into()),
            Error::Remote("x".into()),
            Error::Config("x".into()),
        ] {
            let decoded = match Response::decode(Response::Error(e.clone()).encode()).unwrap() {
                Response::Error(d) => d,
                other => panic!("expected error, got {other:?}"),
            };
            assert_eq!(
                std::mem::discriminant(&decoded),
                std::mem::discriminant(&e),
                "{e:?} vs {decoded:?}"
            );
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let frame = Request::SetOption {
            name: "violation_policy".into(),
            value: "reject".into(),
        }
        .encode();
        for cut in 0..frame.len() {
            assert!(Request::decode(frame.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn frame_io_roundtrip_over_cursor() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        write_frame(
            &mut wire,
            &Request::Query {
                sql: "SELECT 1".into(),
            }
            .encode(),
        )
        .unwrap();
        let mut r = std::io::Cursor::new(wire);
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Request::decode(f1).unwrap(), Request::Ping);
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(
            Request::decode(f2).unwrap(),
            Request::Query { .. }
        ));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn traced_request_roundtrip() {
        let req = Request::QueryTraced {
            sql: "SELECT 1 CURRENCY BOUND 5 SEC ON (t)".into(),
            trace: TraceContext {
                trace_id: 0xDEAD_BEEF_0042,
                parent_depth: 3,
            },
        };
        assert_eq!(Request::decode(req.encode()).unwrap(), req);
        // truncation at every split is an error, never a panic
        let frame = req.encode();
        for cut in 0..frame.len() {
            assert!(Request::decode(frame.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn traced_response_roundtrip() {
        use rcc_common::{Column, DataType, Row, Schema, Value};
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let payload = rcc_executor::wire::encode_result(&schema, &[Row::new(vec![Value::Int(7)])]);
        let resp = Response::ResultSetTraced {
            used_remote: false,
            warnings: vec!["stale".into()],
            spans: vec![
                WireSpan {
                    name: "backend:execute".into(),
                    depth: 0,
                    start_us: 12,
                    elapsed_us: 340,
                },
                WireSpan {
                    name: "backend:encode".into(),
                    depth: 1,
                    start_us: 360,
                    elapsed_us: 5,
                },
            ],
            payload,
        };
        assert_eq!(Response::decode(resp.encode()).unwrap(), resp);
    }

    #[test]
    fn legacy_byte_layout_is_frozen() {
        // Golden bytes: the pre-trace tags must keep their exact encoding
        // so peers speaking the old protocol interoperate. If this test
        // fails, the change broke wire compatibility.
        let query = Request::Query {
            sql: "SELECT 1".into(),
        }
        .encode();
        assert_eq!(
            query.as_ref(),
            [
                0x01, // TAG_QUERY
                8, 0, 0, 0, // string length
                b'S', b'E', b'L', b'E', b'C', b'T', b' ', b'1',
            ]
        );
        assert_eq!(Request::Ping.encode().as_ref(), [0x03]);
        assert_eq!(Response::Ok.encode().as_ref(), [0x83]);
        assert_eq!(Response::Pong.encode().as_ref(), [0x84]);
        let rs = Response::ResultSet {
            used_remote: true,
            warnings: vec!["w".into()],
            payload: Bytes::from(&b"xy"[..]),
        }
        .encode();
        assert_eq!(
            rs.as_ref(),
            [
                0x81, // TAG_RESULT
                1,    // flags: used_remote
                1, 0, // warning count
                1, 0, 0, 0, b'w', // warning string
                b'x', b'y', // wire payload
            ]
        );
        // an old peer rejects the new tags cleanly rather than misparsing
        let traced = Request::QueryTraced {
            sql: "SELECT 1".into(),
            trace: TraceContext {
                trace_id: 1,
                parent_depth: 0,
            },
        }
        .encode();
        assert_eq!(traced[0], 0x04);
    }

    #[test]
    fn oversized_frame_header_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = std::io::Cursor::new(wire);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn every_tag_const_matches_the_central_registry() {
        let declared: &[(u8, &str)] = &[
            (TAG_QUERY, "TAG_QUERY"),
            (TAG_SET_OPTION, "TAG_SET_OPTION"),
            (TAG_PING, "TAG_PING"),
            (TAG_QUERY_TRACED, "TAG_QUERY_TRACED"),
            (TAG_RESULT, "TAG_RESULT"),
            (TAG_ERROR, "TAG_ERROR"),
            (TAG_OK, "TAG_OK"),
            (TAG_PONG, "TAG_PONG"),
            (TAG_RESULT_TRACED, "TAG_RESULT_TRACED"),
        ];
        assert_eq!(declared.len(), crate::tags::FRAME_TAGS.len());
        for (byte, name) in declared {
            assert_eq!(crate::tags::name_of(*byte), Some(*name));
        }
    }
}
