#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! The network layer for the RC&C mid-tier cache.
//!
//! The paper's MTCache is a server real clients connect to over a network;
//! this crate makes the reproduction run in that shape. Three pieces, all
//! speaking the same length-prefixed framed protocol ([`frame`]):
//!
//! * [`NetServer`] — the cache front-end: a multi-threaded TCP server
//!   exposing one [`rcc_mtcache::MTCache`] to many concurrent client
//!   sessions, with a bounded accept pool and graceful shutdown. Each
//!   connection owns a server-side session, so currency options are
//!   per-client.
//! * [`BackendNetServer`] + [`TcpRemoteService`] — the back-end
//!   transport: the cache's remote branch ships SQL over pooled TCP
//!   connections to a [`rcc_mtcache::BackendServer`] running in another
//!   thread or process, with per-call deadlines and bounded
//!   retry-with-backoff. When the back-end is unreachable the call
//!   degrades per the session's `ViolationPolicy` instead of hanging.
//! * [`NetClient`] — a blocking client; the `rccsh` shell and the
//!   `net_load` generator are thin wrappers around it.
//!
//! Everything reports into `rcc-obs`: connection gauges, request/latency
//! histograms, retry/timeout counters, and pool occupancy.

pub mod admin;
pub mod backend_net;
pub mod client;
pub mod frame;
pub mod pool;
pub mod remote;
pub mod server;
pub mod tags;

pub use admin::AdminServer;
pub use backend_net::BackendNetServer;
pub use client::{ClientConfig, NetClient, NetQueryResult};
pub use frame::{
    read_frame, read_frame_interruptible, write_frame, Request, Response, MAX_FRAME_LEN,
};
pub use pool::{BackendPool, PoolConfig};
pub use remote::{RetryPolicy, TcpRemoteService};
pub use server::{NetServer, NetServerConfig};
