//! A connection pool for the back-end transport.
//!
//! Plain blocking TCP: a checkout pops an idle socket (or dials a new one
//! under a connect timeout), a checkin returns it for reuse up to the pool
//! cap, and any I/O error discards the socket instead of poisoning the
//! pool. Occupancy is published as `rcc_net_pool_idle` /
//! `rcc_net_pool_in_use` gauges.

use parking_lot::Mutex;
use rcc_obs::{Gauge, MetricsRegistry};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for [`BackendPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum idle sockets kept for reuse. Checkouts beyond the cap dial
    /// fresh connections (closed-loop callers self-limit concurrency).
    pub max_idle: usize,
    /// Dial timeout for new connections.
    pub connect_timeout: Duration,
    /// Per-call read/write deadline applied to every pooled socket.
    pub io_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle: 8,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// A pool of TCP connections to one back-end address.
#[derive(Debug)]
pub struct BackendPool {
    addr: SocketAddr,
    cfg: PoolConfig,
    idle: Mutex<Vec<TcpStream>>,
    in_use: AtomicUsize,
    gauges: Mutex<Option<(Gauge, Gauge)>>,
}

impl BackendPool {
    /// A pool dialing `addr`. The address is resolved once, eagerly, so a
    /// bad address fails at construction rather than on first query.
    pub fn new(addr: impl ToSocketAddrs, cfg: PoolConfig) -> io::Result<BackendPool> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(BackendPool {
            addr,
            cfg,
            idle: Mutex::new(Vec::new()),
            in_use: AtomicUsize::new(0),
            gauges: Mutex::new(None),
        })
    }

    /// The resolved back-end address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Publish `rcc_net_pool_idle` / `rcc_net_pool_in_use` gauges.
    pub fn set_metrics(&self, registry: &Arc<MetricsRegistry>) {
        registry.describe(
            "rcc_net_pool_idle",
            "Idle pooled TCP connections to the back-end.",
        );
        registry.describe(
            "rcc_net_pool_in_use",
            "Pooled TCP connections currently executing a remote call.",
        );
        let idle = registry.gauge("rcc_net_pool_idle", &[]);
        let in_use = registry.gauge("rcc_net_pool_in_use", &[]);
        *self.gauges.lock() = Some((idle, in_use));
    }

    fn publish(&self) {
        if let Some((idle, in_use)) = &*self.gauges.lock() {
            idle.set(self.idle.lock().len() as f64);
            in_use.set(self.in_use.load(Ordering::Relaxed) as f64);
        }
    }

    /// Get a connection: an idle one if available, otherwise a fresh dial
    /// under the connect timeout. Read/write deadlines are (re)applied.
    pub fn checkout(&self) -> io::Result<TcpStream> {
        let reused = self.idle.lock().pop();
        let stream = match reused {
            Some(s) => s,
            None => {
                let s = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
                s.set_nodelay(true)?;
                s
            }
        };
        stream.set_read_timeout(Some(self.cfg.io_timeout))?;
        stream.set_write_timeout(Some(self.cfg.io_timeout))?;
        self.in_use.fetch_add(1, Ordering::Relaxed);
        self.publish();
        Ok(stream)
    }

    /// Return a healthy connection for reuse (dropped if the idle list is
    /// at its cap).
    pub fn checkin(&self, stream: TcpStream) {
        {
            let mut idle = self.idle.lock();
            if idle.len() < self.cfg.max_idle {
                idle.push(stream);
            }
        }
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        self.publish();
    }

    /// Drop a connection that saw an I/O error (never reused).
    pub fn discard(&self) {
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        self.publish();
    }

    /// Close all idle connections (new checkouts will dial again).
    pub fn drain(&self) {
        self.idle.lock().clear();
        self.publish();
    }

    /// (idle, in-use) connection counts.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.idle.lock().len(), self.in_use.load(Ordering::Relaxed))
    }
}
