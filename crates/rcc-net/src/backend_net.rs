//! The back-end transport server: a [`BackendServer`] behind a socket.
//!
//! Accepts framed [`Request::Query`] messages carrying SQL shipped from
//! the cache and answers with the wire-encoded result set — the payload
//! [`rcc_mtcache::BackendServer::query_wire`] produces, shipped verbatim.
//! Taking ownership of the back-end's traffic pins its network model to
//! [`NetworkModel::Real`], so the simulated-latency knobs can never stack
//! on top of real socket time (they are ignored from then on).

use crate::frame::{read_frame_interruptible, write_frame, Request, Response, WireSpan};
use crate::server::POLL_INTERVAL;
use parking_lot::Mutex;
use rcc_common::{Error, NetworkModel};
use rcc_mtcache::BackendServer;
use rcc_obs::Tracer;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Mid-frame delivery deadline for back-end connections.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// A TCP server exposing one [`BackendServer`] to remote caches.
#[derive(Debug)]
pub struct BackendNetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl BackendNetServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `backend` from a background accept thread, one thread per
    /// connection.
    pub fn spawn(backend: Arc<BackendServer>, bind: &str) -> io::Result<BackendNetServer> {
        // a real transport now owns this back-end's traffic: disable the
        // simulated network so latency is never double-counted
        backend.set_network_model(NetworkModel::Real);
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rcc-backend-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let backend = Arc::clone(&backend);
                        let shutdown = Arc::clone(&shutdown);
                        if let Ok(handle) = std::thread::Builder::new()
                            .name("rcc-backend-conn".into())
                            .spawn(move || handle_conn(backend, stream, shutdown))
                        {
                            conns.lock().push(handle);
                        }
                    }
                })?
        };
        Ok(BackendNetServer {
            addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the accept thread, and join every
    /// connection thread. In-flight requests finish; idle connections
    /// observe the flag within one poll interval.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.conns.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for BackendNetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_conn(backend: Arc<BackendServer>, mut stream: TcpStream, shutdown: Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let stop = || shutdown.load(Ordering::SeqCst);
    while let Ok(Some(payload)) = read_frame_interruptible(&mut stream, &stop, FRAME_TIMEOUT) {
        let response = match Request::decode(payload) {
            Ok(Request::Query { sql }) => match backend.query_wire(&sql) {
                Ok(result_payload) => Response::ResultSet {
                    used_remote: false,
                    warnings: Vec::new(),
                    payload: result_payload,
                },
                Err(e) => Response::Error(e),
            },
            Ok(Request::QueryTraced { sql, trace }) => {
                // one throwaway tracer per request: its only job is to
                // collect this execution's spans for the response frame
                let tracer = Tracer::new(1);
                let mut handle = tracer.trace(format!("remote of trace #{}", trace.trace_id));
                match backend.query_wire_traced(&sql, &handle) {
                    Ok(result_payload) => {
                        let spans = handle.finish().map(|t| t.spans).unwrap_or_default();
                        Response::ResultSetTraced {
                            used_remote: false,
                            warnings: Vec::new(),
                            spans: spans
                                .into_iter()
                                .map(|s| WireSpan {
                                    name: s.name,
                                    depth: s.depth as u32,
                                    start_us: s.start.as_micros() as u64,
                                    elapsed_us: s.elapsed.as_micros() as u64,
                                })
                                .collect(),
                            payload: result_payload,
                        }
                    }
                    Err(e) => Response::Error(e),
                }
            }
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::SetOption { name, .. }) => Response::Error(Error::Config(format!(
                "the back-end transport has no session options (got {name})"
            ))),
            Err(e) => Response::Error(e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
}
