//! A blocking client for the cache front-end — what `rccsh` and the load
//! generator speak.

use crate::frame::{read_frame, write_frame, Request, Response};
use rcc_common::{Error, Result, Row, Schema};
use rcc_executor::wire;
use rcc_mtcache::ViolationPolicy;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side socket tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// Per-request read/write deadline.
    pub io_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// One query's answer, decoded from the wire.
#[derive(Debug, Clone)]
pub struct NetQueryResult {
    /// Output schema (wire-level: no binding qualifiers).
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Did the cache contact the back-end for this query?
    pub used_remote: bool,
    /// Warnings attached by the server (e.g. stale data served).
    pub warnings: Vec<String>,
    /// Size of the wire-encoded result payload.
    pub wire_bytes: u64,
}

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connect to `addr` under the config's dial timeout.
    pub fn connect(addr: impl ToSocketAddrs, cfg: &ClientConfig) -> Result<NetClient> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)
            .map_err(|e| Error::Unavailable(format!("connect to {addr}: {e}")))?;
        Self::from_stream(stream, cfg)
    }

    /// Connect, retrying for up to `total` (for freshly started servers:
    /// the CI smoke test races `rccd`'s bind).
    pub fn connect_retry(
        addr: impl ToSocketAddrs,
        cfg: &ClientConfig,
        total: Duration,
    ) -> Result<NetClient> {
        let addr = resolve(addr)?;
        let deadline = Instant::now() + total;
        loop {
            match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
                Ok(stream) => return Self::from_stream(stream, cfg),
                Err(e) if Instant::now() >= deadline => {
                    return Err(Error::Unavailable(format!(
                        "connect to {addr} (retried {total:?}): {e}"
                    )))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    fn from_stream(stream: TcpStream, cfg: &ClientConfig) -> Result<NetClient> {
        stream
            .set_read_timeout(Some(cfg.io_timeout))
            .and_then(|_| stream.set_write_timeout(Some(cfg.io_timeout)))
            .and_then(|_| stream.set_nodelay(true))
            .map_err(|e| Error::Unavailable(format!("socket setup: {e}")))?;
        Ok(NetClient { stream })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.stream.peer_addr().ok()
    }

    /// Execute one SQL statement.
    pub fn query(&mut self, sql: &str) -> Result<NetQueryResult> {
        let resp = self.roundtrip(&Request::Query {
            sql: sql.to_string(),
        })?;
        match resp {
            Response::ResultSet {
                used_remote,
                warnings,
                payload,
            } => {
                let wire_bytes = payload.len() as u64;
                let (schema, rows) = wire::decode_result(payload)?;
                Ok(NetQueryResult {
                    schema,
                    rows,
                    used_remote,
                    warnings,
                    wire_bytes,
                })
            }
            Response::Error(e) => Err(e),
            other => Err(Error::Remote(format!(
                "unexpected response to a query: {other:?}"
            ))),
        }
    }

    /// Set a session option on the server side.
    pub fn set_option(&mut self, name: &str, value: &str) -> Result<()> {
        match self.roundtrip(&Request::SetOption {
            name: name.to_string(),
            value: value.to_string(),
        })? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Remote(format!(
                "unexpected response to SetOption: {other:?}"
            ))),
        }
    }

    /// Set this session's violation policy.
    pub fn set_policy(&mut self, policy: ViolationPolicy) -> Result<()> {
        let value = match policy {
            ViolationPolicy::Reject => "reject",
            ViolationPolicy::ServeStale => "serve_stale",
        };
        self.set_option("violation_policy", value)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Remote(format!(
                "unexpected response to Ping: {other:?}"
            ))),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode()).map_err(io_unavailable)?;
        let payload = read_frame(&mut self.stream)
            .map_err(io_unavailable)?
            .ok_or_else(|| Error::Unavailable("server closed the connection".into()))?;
        Response::decode(payload)
    }
}

fn resolve(addr: impl ToSocketAddrs) -> Result<SocketAddr> {
    addr.to_socket_addrs()
        .map_err(|e| Error::Unavailable(format!("bad address: {e}")))?
        .next()
        .ok_or_else(|| Error::Unavailable("address resolved to nothing".into()))
}

fn io_unavailable(e: io::Error) -> Error {
    Error::Unavailable(format!("transport failure: {e}"))
}
