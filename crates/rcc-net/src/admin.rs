//! The admin HTTP endpoint: operational telemetry over plain HTTP/1.0.
//!
//! A deliberately tiny, dependency-free HTTP listener for scrapers and
//! humans with `curl` — not a general web server. It answers `GET` (plus
//! one `POST` route), ignores request headers, and closes the connection
//! after each response (HTTP/1.0 semantics), which is exactly what
//! Prometheus-style scraping and shell debugging need:
//!
//! | route      | content                                               |
//! |------------|-------------------------------------------------------|
//! | `/metrics` | the cache registry in Prometheus text format          |
//! | `/traces`  | recently finished query traces (merged span trees)    |
//! | `/events`  | the structured event journal as JSON                  |
//! | `/healthz` | liveness + per-region replication lag + pool occupancy + durability (WAL size, buffer-pool occupancy, checkpoint age) |
//! | `POST /shutdown` | request a graceful stop: the hosting process polls [`AdminServer::stop_requested`] and (in durable mode) writes a final checkpoint before exiting |
//!
//! Every request bumps `rcc_admin_requests_total{path=...}`; unknown
//! paths are labelled `other` so the counter's cardinality stays fixed.

use crate::remote::TcpRemoteService;
use crate::server::POLL_INTERVAL;
use parking_lot::Mutex;
use rcc_mtcache::MTCache;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on an admin request head (request line + headers). Anything
/// longer is rejected — admin requests are tiny by construction.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a client may take to deliver its request head.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// How many finished traces `/traces` renders.
const TRACES_SHOWN: usize = 16;

/// The admin HTTP server for one [`MTCache`].
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stop_requested: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AdminServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and serve the cache's telemetry
    /// from a background accept thread, one short-lived thread per
    /// request. Pass the cache's remote transport (when it has one) so
    /// `/healthz` can report back-end pool occupancy.
    pub fn spawn(
        cache: Arc<MTCache>,
        remote: Option<Arc<TcpRemoteService>>,
        bind: &str,
    ) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop_requested = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stop_requested = Arc::clone(&stop_requested);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rcc-admin-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let cache = Arc::clone(&cache);
                        let remote = remote.clone();
                        let stop_requested = Arc::clone(&stop_requested);
                        if let Ok(handle) = std::thread::Builder::new()
                            .name("rcc-admin-conn".into())
                            .spawn(move || {
                                handle_request(&cache, remote.as_deref(), &stop_requested, stream)
                            })
                        {
                            conns.lock().push(handle);
                        }
                    }
                })?
        };
        Ok(AdminServer {
            addr,
            shutdown,
            stop_requested,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client has asked the hosting process to stop
    /// (`POST /shutdown`). The admin server only records the request; the
    /// host polls this and owns the actual teardown (final checkpoint,
    /// process exit).
    pub fn stop_requested(&self) -> bool {
        self.stop_requested.load(Ordering::SeqCst)
    }

    /// Stop accepting and join every in-flight request thread.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.conns.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_request(
    cache: &MTCache,
    remote: Option<&TcpRemoteService>,
    stop_requested: &AtomicBool,
    mut stream: TcpStream,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let Some((method, path)) = read_request_path(&mut stream) else {
        let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let label = match path.as_str() {
        "/metrics" | "/traces" | "/events" | "/healthz" | "/shutdown" => path.as_str(),
        _ => "other",
    };
    cache
        .metrics()
        .counter("rcc_admin_requests_total", &[("path", label)])
        .inc();
    let result = match (method.as_str(), path.as_str()) {
        ("GET", "/metrics") => write_response(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &cache.metrics().render_prometheus(),
        ),
        ("GET", "/traces") => write_response(&mut stream, 200, "text/plain", &render_traces(cache)),
        ("GET", "/events") => {
            write_response(&mut stream, 200, "application/json", &render_events(cache))
        }
        ("GET", "/healthz") => write_response(
            &mut stream,
            200,
            "application/json",
            &render_health(cache, remote),
        ),
        ("POST", "/shutdown") => {
            stop_requested.store(true, Ordering::SeqCst);
            write_response(
                &mut stream,
                200,
                "application/json",
                "{\"shutting_down\":true}\n",
            )
        }
        _ => write_response(&mut stream, 404, "text/plain", "not found\n"),
    };
    let _ = result;
}

/// Read the request head (bounded, with a deadline) and return the method
/// and path from the request line, or `None` if the request is malformed.
/// Only `GET` and `POST` are admitted; routing decides which combinations
/// exist.
fn read_request_path(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let started = std::time::Instant::now();
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && !buf.windows(2).any(|w| w == b"\n\n") {
        if buf.len() > MAX_REQUEST_BYTES || started.elapsed() > REQUEST_TIMEOUT {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_ascii_uppercase();
    let target = parts.next()?;
    if method != "GET" && method != "POST" {
        return None;
    }
    // strip any query string: routes take no parameters
    let path = target.split('?').next().unwrap_or(target).to_string();
    Some((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn render_traces(cache: &MTCache) -> String {
    let traces = cache.tracer().recent(TRACES_SHOWN);
    if traces.is_empty() {
        return "no traces recorded yet\n".to_string();
    }
    let mut out = String::new();
    for trace in traces {
        out.push_str(&trace.render());
        out.push('\n');
    }
    out
}

fn render_events(cache: &MTCache) -> String {
    let journal = cache.journal();
    let events = journal.recent(usize::MAX);
    let mut out = String::from("{\"total_recorded\":");
    let _ = write!(out, "{},\"events\":[", journal.total());
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_ms\":{},\"kind\":\"{}\",\"cause\":{},\"policy\":{},\"session\":{},\"trace_id\":{}}}",
            e.seq,
            e.at_ms,
            e.kind.name(),
            json_str(&e.cause),
            json_str(&e.policy),
            json_str(&e.session),
            e.trace_id
        );
    }
    out.push_str("]}\n");
    out
}

fn render_health(cache: &MTCache, remote: Option<&TcpRemoteService>) -> String {
    let mut out = String::from("{\"status\":\"ok\",\"regions\":{");
    let mut regions = cache.catalog().regions();
    regions.sort_by(|a, b| a.name.cmp(&b.name));
    for (i, region) in regions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match cache.region_staleness(&region.name) {
            Some(lag) => {
                let _ = write!(out, "{}:{:.3}", json_str(&region.name), lag.as_secs_f64());
            }
            None => {
                let _ = write!(out, "{}:null", json_str(&region.name));
            }
        }
    }
    out.push('}');
    if let Some(remote) = remote {
        let (idle, in_use) = remote.pool().occupancy();
        let _ = write!(
            out,
            ",\"backend_pool\":{{\"idle\":{idle},\"in_use\":{in_use}}}"
        );
    }
    if let Some(d) = cache.durability_status() {
        let _ = write!(
            out,
            ",\"durability\":{{\"policy\":{},\"wal_bytes\":{},\"wal_records\":{},\
             \"wal_fsyncs\":{},\"bufpool_frames_in_use\":{},\"bufpool_capacity\":{},\
             \"bufpool_evictions\":{},\"last_checkpoint_age_seconds\":",
            json_str(d.policy),
            d.wal_bytes,
            d.wal_records,
            d.wal_fsyncs,
            d.bufpool_frames_in_use,
            d.bufpool_capacity,
            d.bufpool_evictions,
        );
        match d.last_checkpoint_age_seconds {
            Some(age) => {
                let _ = write!(out, "{age:.3}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("}\n");
    out
}

/// Render a string as a JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut body = String::new();
        let mut line = String::new();
        // skip headers
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn routes_serve_metrics_events_traces_health() {
        let cache = Arc::new(MTCache::new());
        cache
            .execute("CREATE REGION cr1 INTERVAL 1 SEC DELAY 0 MS")
            .unwrap();
        // run one traced statement so /traces has something to show
        let _ = cache.execute("SELECT 1");
        let mut admin = AdminServer::spawn(Arc::clone(&cache), None, "127.0.0.1:0").unwrap();
        let addr = admin.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("rcc_admin_requests_total"), "{body}");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"cr1\""), "{body}");

        let (status, body) = get(addr, "/events");
        assert_eq!(status, 200);
        assert!(body.contains("\"events\":["), "{body}");

        let (status, _) = get(addr, "/traces");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // the counter saw every labelled route plus the unknown one
        let snap = cache.metrics().snapshot();
        assert_eq!(
            snap.counter("rcc_admin_requests_total{path=\"/metrics\"}"),
            1
        );
        assert_eq!(snap.counter("rcc_admin_requests_total{path=\"other\"}"), 1);
        admin.shutdown();
    }

    #[test]
    fn post_shutdown_sets_stop_flag() {
        let cache = Arc::new(MTCache::new());
        let mut admin = AdminServer::spawn(Arc::clone(&cache), None, "127.0.0.1:0").unwrap();
        let addr = admin.addr();
        assert!(!admin.stop_requested());

        // GET on /shutdown must not trigger it
        let (status, _) = get(addr, "/shutdown");
        assert_eq!(status, 404);
        assert!(!admin.stop_requested());

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /shutdown HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        BufReader::new(stream).read_to_string(&mut body).unwrap();
        assert!(body.contains("\"shutting_down\":true"), "{body}");
        assert!(admin.stop_requested());
        admin.shutdown();
    }

    #[test]
    fn healthz_reports_durability() {
        let cache = Arc::new(MTCache::new());
        assert!(
            !render_health(&cache, None).contains("durability"),
            "in-memory rig has no durability section"
        );

        let dir = std::env::temp_dir().join(format!("rcc-admin-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(MTCache::new_durable(&dir, rcc_storage::SyncPolicy::Always).unwrap());
        cache
            .execute("CREATE TABLE t (k INT, PRIMARY KEY (k))")
            .unwrap();
        cache.execute("INSERT INTO t VALUES (1)").unwrap();
        let body = render_health(&cache, None);
        assert!(
            body.contains("\"durability\":{\"policy\":\"always\""),
            "{body}"
        );
        assert!(body.contains("\"wal_records\":"), "{body}");
        assert!(body.contains("\"bufpool_capacity\":"), "{body}");
        assert!(
            body.contains("\"last_checkpoint_age_seconds\":null"),
            "{body}"
        );
        cache.checkpoint().unwrap();
        let body = render_health(&cache, None);
        assert!(
            body.contains("\"last_checkpoint_age_seconds\":0.000"),
            "{body}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
