//! Loopback integration: N concurrent clients against one [`NetServer`],
//! checking result correctness, per-session isolation of currency options,
//! and that the front-end request counters add up exactly.

use rcc_common::Duration as SimDuration;
use rcc_common::Error;
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::{MTCache, ViolationPolicy};
use rcc_net::{
    BackendNetServer, ClientConfig, NetClient, NetServer, NetServerConfig, PoolConfig, RetryPolicy,
    TcpRemoteService,
};
use rcc_obs::EventKind;
use std::sync::Arc;

const N_CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 25;

const Q: &str = "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";

fn rig() -> (Arc<MTCache>, NetServer) {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    let cache = Arc::new(cache);
    let server = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .unwrap();
    (cache, server)
}

#[test]
fn concurrent_clients_get_correct_rows_and_counters_add_up() {
    let (cache, mut server) = rig();
    let addr = server.addr();

    let workers: Vec<_> = (0..N_CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr, &ClientConfig::default()).unwrap();
                client.ping().unwrap();
                for _ in 0..QUERIES_PER_CLIENT {
                    let r = client.query(Q).unwrap();
                    assert_eq!(r.rows.len(), 1, "custkey 5 exists exactly once");
                    assert_eq!(r.schema.columns().len(), 1);
                    assert!(!r.used_remote, "fresh cache answers locally");
                    assert!(r.wire_bytes > 0);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // every request the clients sent is accounted for, exactly once
    let snap = cache.metrics().snapshot();
    assert_eq!(
        snap.counter("rcc_net_requests_total{type=\"query\"}"),
        (N_CLIENTS * QUERIES_PER_CLIENT) as u64,
        "query counter must equal clients × queries"
    );
    assert_eq!(
        snap.counter("rcc_net_requests_total{type=\"ping\"}"),
        N_CLIENTS as u64
    );
    assert_eq!(snap.counter("rcc_net_connections_total"), N_CLIENTS as u64);
    assert_eq!(snap.counter("rcc_net_request_errors_total"), 0);

    server.shutdown();
    // graceful shutdown drains the open-connections gauge
    let snap = cache.metrics().snapshot();
    assert_eq!(snap.gauge("rcc_net_connections_open"), Some(0.0));
}

#[test]
fn currency_options_are_isolated_per_connection() {
    let (cache, server) = rig();
    let addr = server.addr();

    // two sessions on the same server: A opts into stale serving, B keeps
    // the default Reject policy
    let cfg = ClientConfig::default();
    let mut a = NetClient::connect(addr, &cfg).unwrap();
    let mut b = NetClient::connect(addr, &cfg).unwrap();
    a.set_policy(ViolationPolicy::ServeStale).unwrap();

    // make CR1 stale beyond the bound with the back-end unreachable, so
    // the policy is the only thing deciding each session's outcome
    cache.set_region_stalled("CR1", true);
    cache.advance(SimDuration::from_secs(90)).unwrap();
    cache.set_backend_available(false);

    let ra = a.query(Q).expect("ServeStale session still gets rows");
    assert_eq!(ra.rows.len(), 1);
    assert!(
        !ra.warnings.is_empty(),
        "stale rows must carry a warning over the wire"
    );

    let eb = b.query(Q).expect_err("Reject session must get an error");
    assert!(
        matches!(eb, Error::CurrencyViolation(_)),
        "wire preserves the error class: {eb:?}"
    );

    // ...and B flipping its own policy works without touching A
    b.set_policy(ViolationPolicy::ServeStale).unwrap();
    assert_eq!(b.query(Q).unwrap().rows.len(), 1);
}

#[test]
fn bad_sql_and_bad_options_return_errors_not_disconnects() {
    let (_cache, server) = rig();
    let mut client = NetClient::connect(server.addr(), &ClientConfig::default()).unwrap();

    assert!(client.query("SELEC nonsense").is_err());
    assert!(client.set_option("no_such_option", "x").is_err());
    // the connection survives both errors
    let r = client
        .query("SELECT c_name FROM customer WHERE c_custkey = 1")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn accept_pool_is_bounded() {
    let cache = Arc::new({
        let c = paper_setup(0.001, 7).unwrap();
        warm_up(&c).unwrap();
        c
    });
    let server = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: 2,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let cfg = ClientConfig::default();
    let mut a = NetClient::connect(server.addr(), &cfg).unwrap();
    let mut b = NetClient::connect(server.addr(), &cfg).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // the third connection is refused with a busy frame, not queued (the
    // refusal may race the ping and surface as a reset — either way the
    // client sees Unavailable, never a hang or a served request)
    let mut c = NetClient::connect(server.addr(), &cfg).unwrap();
    let err = c.ping().expect_err("third connection must be refused");
    assert!(matches!(err, Error::Unavailable(_)), "{err:?}");
    assert!(
        cache
            .metrics()
            .snapshot()
            .counter("rcc_net_connections_rejected_total")
            >= 1
    );

    // a slot frees up once an admitted client leaves
    drop(a);
    let mut d = loop {
        let mut cand = NetClient::connect(server.addr(), &cfg).unwrap();
        if cand.ping().is_ok() {
            break cand;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    d.ping().unwrap();
}

#[test]
fn remote_query_merges_backend_spans_into_one_trace() {
    // full rig: cache front-end + back-end behind its own TCP listener,
    // remote branch over the pooled transport (the trace-context path)
    let cache = Arc::new({
        let c = paper_setup(0.001, 7).unwrap();
        warm_up(&c).unwrap();
        c
    });
    let _backend_srv = BackendNetServer::spawn(Arc::clone(cache.backend()), "127.0.0.1:0").unwrap();
    let remote = TcpRemoteService::new(
        _backend_srv.addr(),
        PoolConfig::default(),
        RetryPolicy::default(),
    )
    .unwrap();
    remote.set_metrics(Arc::clone(cache.metrics()));
    cache.set_remote_service(Some(Arc::new(remote)));
    let server = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .unwrap();

    // make CR1 too stale for the bound so the guard routes the query to
    // the back-end over TCP
    cache.set_region_stalled("CR1", true);
    cache.advance(SimDuration::from_secs(90)).unwrap();

    let mut client = NetClient::connect(server.addr(), &ClientConfig::default()).unwrap();
    let r = client.query(Q).unwrap();
    assert!(r.used_remote, "stale CR1 must route to the back-end");
    assert_eq!(r.rows.len(), 1);

    // the query produced exactly one trace on the cache's tracer, and it
    // contains both the local transport span and the back-end's own span
    // tree, merged below it
    let trace = cache
        .tracer()
        .recent(8)
        .into_iter()
        .rev()
        .find(|t| t.label.contains("c_custkey = 5"))
        .expect("the query's trace is in the ring");
    let call = trace
        .spans
        .iter()
        .find(|s| s.name == "remote_call")
        .expect("transport span present");
    let backend_spans: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("backend:"))
        .collect();
    assert!(
        !backend_spans.is_empty(),
        "back-end spans merged into the front-end trace: {:#?}",
        trace.spans
    );
    for s in &backend_spans {
        assert!(
            s.depth > call.depth,
            "remote span {} nests under remote_call",
            s.name
        );
        assert!(
            s.start >= call.start,
            "remote span {} starts after the call went out",
            s.name
        );
    }
    // the back-end recorded its execution phases
    let names: Vec<&str> = backend_spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"backend:execute"), "{names:?}");
}

#[test]
fn outage_lands_degradation_event_with_policy_arm() {
    let (cache, server) = rig();
    let addr = server.addr();

    let cfg = ClientConfig::default();
    let mut stale_ok = NetClient::connect(addr, &cfg).unwrap();
    let mut strict = NetClient::connect(addr, &cfg).unwrap();
    stale_ok.set_policy(ViolationPolicy::ServeStale).unwrap();

    cache.set_region_stalled("CR1", true);
    cache.advance(SimDuration::from_secs(90)).unwrap();
    cache.set_backend_available(false);

    stale_ok
        .query(Q)
        .expect("ServeStale degrades, still serves");
    strict.query(Q).expect_err("Reject surfaces the violation");

    let events = cache.journal().recent(usize::MAX);
    let failover = events
        .iter()
        .find(|e| e.kind == EventKind::Failover)
        .expect("marking the back-end down is journalled");
    assert!(failover.cause.contains("unavailable"), "{}", failover.cause);

    let degradation = events
        .iter()
        .find(|e| e.kind == EventKind::Degradation)
        .expect("ServeStale degradation is journalled");
    assert_eq!(degradation.policy, "serve_stale");
    assert!(degradation.cause.contains("back-end unreachable"));
    assert!(
        degradation.session.starts_with("session-"),
        "{}",
        degradation.session
    );
    assert!(
        degradation.trace_id > 0,
        "event carries the query's trace id"
    );

    let violation = events
        .iter()
        .find(|e| e.kind == EventKind::Violation)
        .expect("Reject violation is journalled");
    assert_eq!(violation.policy, "reject");
    assert_ne!(
        violation.session, degradation.session,
        "each connection has its own session label"
    );

    // the journal feeds the events counter
    let snap = cache.metrics().snapshot();
    assert!(snap.counter("rcc_events_total{kind=\"degradation\"}") >= 1);
    assert!(snap.counter("rcc_events_total{kind=\"violation\"}") >= 1);
    assert!(snap.counter("rcc_events_total{kind=\"failover\"}") >= 1);

    // ...and SHOW EVENTS surfaces the journal over the wire
    let r = stale_ok.query("SHOW EVENTS").unwrap();
    assert!(!r.rows.is_empty(), "SHOW EVENTS returns the journal rows");
}
