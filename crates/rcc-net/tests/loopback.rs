//! Loopback integration: N concurrent clients against one [`NetServer`],
//! checking result correctness, per-session isolation of currency options,
//! and that the front-end request counters add up exactly.

use rcc_common::Duration as SimDuration;
use rcc_common::Error;
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::{MTCache, ViolationPolicy};
use rcc_net::{ClientConfig, NetClient, NetServer, NetServerConfig};
use std::sync::Arc;

const N_CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 25;

const Q: &str = "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";

fn rig() -> (Arc<MTCache>, NetServer) {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    let cache = Arc::new(cache);
    let server = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .unwrap();
    (cache, server)
}

#[test]
fn concurrent_clients_get_correct_rows_and_counters_add_up() {
    let (cache, mut server) = rig();
    let addr = server.addr();

    let workers: Vec<_> = (0..N_CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr, &ClientConfig::default()).unwrap();
                client.ping().unwrap();
                for _ in 0..QUERIES_PER_CLIENT {
                    let r = client.query(Q).unwrap();
                    assert_eq!(r.rows.len(), 1, "custkey 5 exists exactly once");
                    assert_eq!(r.schema.columns().len(), 1);
                    assert!(!r.used_remote, "fresh cache answers locally");
                    assert!(r.wire_bytes > 0);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // every request the clients sent is accounted for, exactly once
    let snap = cache.metrics().snapshot();
    assert_eq!(
        snap.counter("rcc_net_requests_total{type=\"query\"}"),
        (N_CLIENTS * QUERIES_PER_CLIENT) as u64,
        "query counter must equal clients × queries"
    );
    assert_eq!(
        snap.counter("rcc_net_requests_total{type=\"ping\"}"),
        N_CLIENTS as u64
    );
    assert_eq!(snap.counter("rcc_net_connections_total"), N_CLIENTS as u64);
    assert_eq!(snap.counter("rcc_net_request_errors_total"), 0);

    server.shutdown();
    // graceful shutdown drains the open-connections gauge
    let snap = cache.metrics().snapshot();
    assert_eq!(snap.gauge("rcc_net_connections_open"), Some(0.0));
}

#[test]
fn currency_options_are_isolated_per_connection() {
    let (cache, server) = rig();
    let addr = server.addr();

    // two sessions on the same server: A opts into stale serving, B keeps
    // the default Reject policy
    let cfg = ClientConfig::default();
    let mut a = NetClient::connect(addr, &cfg).unwrap();
    let mut b = NetClient::connect(addr, &cfg).unwrap();
    a.set_policy(ViolationPolicy::ServeStale).unwrap();

    // make CR1 stale beyond the bound with the back-end unreachable, so
    // the policy is the only thing deciding each session's outcome
    cache.set_region_stalled("CR1", true);
    cache.advance(SimDuration::from_secs(90)).unwrap();
    cache.set_backend_available(false);

    let ra = a.query(Q).expect("ServeStale session still gets rows");
    assert_eq!(ra.rows.len(), 1);
    assert!(
        !ra.warnings.is_empty(),
        "stale rows must carry a warning over the wire"
    );

    let eb = b.query(Q).expect_err("Reject session must get an error");
    assert!(
        matches!(eb, Error::CurrencyViolation(_)),
        "wire preserves the error class: {eb:?}"
    );

    // ...and B flipping its own policy works without touching A
    b.set_policy(ViolationPolicy::ServeStale).unwrap();
    assert_eq!(b.query(Q).unwrap().rows.len(), 1);
}

#[test]
fn bad_sql_and_bad_options_return_errors_not_disconnects() {
    let (_cache, server) = rig();
    let mut client = NetClient::connect(server.addr(), &ClientConfig::default()).unwrap();

    assert!(client.query("SELEC nonsense").is_err());
    assert!(client.set_option("no_such_option", "x").is_err());
    // the connection survives both errors
    let r = client
        .query("SELECT c_name FROM customer WHERE c_custkey = 1")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn accept_pool_is_bounded() {
    let cache = Arc::new({
        let c = paper_setup(0.001, 7).unwrap();
        warm_up(&c).unwrap();
        c
    });
    let server = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: 2,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let cfg = ClientConfig::default();
    let mut a = NetClient::connect(server.addr(), &cfg).unwrap();
    let mut b = NetClient::connect(server.addr(), &cfg).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // the third connection is refused with a busy frame, not queued (the
    // refusal may race the ping and surface as a reset — either way the
    // client sees Unavailable, never a hang or a served request)
    let mut c = NetClient::connect(server.addr(), &cfg).unwrap();
    let err = c.ping().expect_err("third connection must be refused");
    assert!(matches!(err, Error::Unavailable(_)), "{err:?}");
    assert!(
        cache
            .metrics()
            .snapshot()
            .counter("rcc_net_connections_rejected_total")
            >= 1
    );

    // a slot frees up once an admitted client leaves
    drop(a);
    let mut d = loop {
        let mut cand = NetClient::connect(server.addr(), &cfg).unwrap();
        if cand.ping().is_ok() {
            break cand;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    d.ping().unwrap();
}
