//! Property tests for the frame codec: round-trips survive arbitrary read
//! fragmentation, and no input — truncated, oversized, or garbage — makes
//! the decoder panic.

use bytes::Bytes;
use proptest::prelude::*;
use rcc_common::{Column, DataType, Row, Schema, Value};
use rcc_net::frame::{read_frame, write_frame, Request, Response, TraceContext, WireSpan};
use std::io::{self, Read};

/// A reader that hands out at most `chunk` bytes per call, exercising every
/// partial-read path in `read_frame`.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn printable(bytes: Vec<u8>) -> String {
    String::from_utf8(bytes).expect("printable ASCII is UTF-8")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn request_roundtrips_under_any_fragmentation(
        sql in prop::collection::vec(32u8..127, 0..80).prop_map(printable),
        name in prop::collection::vec(97u8..123, 1..16).prop_map(printable),
        value in prop::collection::vec(32u8..127, 0..24).prop_map(printable),
        which in 0u8..3,
        chunk in 1usize..9,
    ) {
        let req = match which {
            0 => Request::Query { sql },
            1 => Request::SetOption { name, value },
            _ => Request::Ping,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut reader = ChunkedReader { data: wire, pos: 0, chunk };
        let payload = read_frame(&mut reader).unwrap().expect("one whole frame");
        prop_assert_eq!(Request::decode(payload).unwrap(), req);
        // nothing left: the next read is a clean EOF
        prop_assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn resultset_roundtrips_under_any_fragmentation(
        ints in prop::collection::vec(-1000i64..1000, 0..20),
        warnings in prop::collection::vec(
            prop::collection::vec(32u8..127, 0..30).prop_map(printable),
            0..4,
        ),
        used_remote in 0u8..2,
        chunk in 1usize..9,
    ) {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows: Vec<Row> = ints.iter().map(|&i| Row::new(vec![Value::Int(i)])).collect();
        let resp = Response::ResultSet {
            used_remote: used_remote == 1,
            warnings,
            payload: rcc_executor::wire::encode_result(&schema, &rows),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode()).unwrap();
        let mut reader = ChunkedReader { data: wire, pos: 0, chunk };
        let payload = read_frame(&mut reader).unwrap().expect("one whole frame");
        let decoded = Response::decode(payload).unwrap();
        prop_assert_eq!(&decoded, &resp);
        if let Response::ResultSet { payload, .. } = decoded {
            let (s, r) = rcc_executor::wire::decode_result(payload).unwrap();
            prop_assert_eq!(s.columns().len(), 1);
            prop_assert_eq!(r, rows);
        }
    }

    #[test]
    fn traced_request_roundtrips_under_any_fragmentation(
        sql in prop::collection::vec(32u8..127, 0..80).prop_map(printable),
        trace_id in 0u64..=u64::MAX,
        parent_depth in 0u32..=u32::MAX,
        chunk in 1usize..9,
    ) {
        let req = Request::QueryTraced {
            sql,
            trace: TraceContext { trace_id, parent_depth },
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut reader = ChunkedReader { data: wire.clone(), pos: 0, chunk };
        let payload = read_frame(&mut reader).unwrap().expect("one whole frame");
        prop_assert_eq!(Request::decode(payload).unwrap(), req);
        // any truncation of the encoded frame must error, never panic or
        // decode to something else (old/new compatibility: a peer that cuts
        // the trace context off the tail cannot alias a legacy Query)
        for cut in 0..wire.len() {
            let mut reader = ChunkedReader { data: wire[..cut].to_vec(), pos: 0, chunk: 7 };
            match read_frame(&mut reader) {
                Ok(None) => prop_assert!(cut < 4),
                Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
            }
        }
    }

    #[test]
    fn traced_response_roundtrips_under_any_fragmentation(
        ints in prop::collection::vec(-1000i64..1000, 0..8),
        names in prop::collection::vec(
            prop::collection::vec(97u8..123, 1..12).prop_map(printable),
            0..6,
        ),
        depths in prop::collection::vec(0u32..8, 6),
        starts in prop::collection::vec(0u64..1_000_000, 6),
        used_remote in 0u8..2,
        chunk in 1usize..9,
    ) {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let rows: Vec<Row> = ints.iter().map(|&i| Row::new(vec![Value::Int(i)])).collect();
        let spans: Vec<WireSpan> = names
            .iter()
            .enumerate()
            .map(|(i, name)| WireSpan {
                name: name.clone(),
                depth: depths[i],
                start_us: starts[i],
                elapsed_us: starts[i] / 2,
            })
            .collect();
        let resp = Response::ResultSetTraced {
            used_remote: used_remote == 1,
            warnings: vec![],
            spans,
            payload: rcc_executor::wire::encode_result(&schema, &rows),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode()).unwrap();
        let mut reader = ChunkedReader { data: wire, pos: 0, chunk };
        let payload = read_frame(&mut reader).unwrap().expect("one whole frame");
        let decoded = Response::decode(payload).unwrap();
        prop_assert_eq!(&decoded, &resp);
        if let Response::ResultSetTraced { payload, .. } = decoded {
            let (_, r) = rcc_executor::wire::decode_result(payload).unwrap();
            prop_assert_eq!(r, rows);
        }
    }

    #[test]
    fn truncated_frames_error_cleanly(
        sql in prop::collection::vec(32u8..127, 0..60).prop_map(printable),
        fraction in 0usize..1000,
    ) {
        let req = Request::Query { sql };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let cut = fraction * wire.len() / 1000; // strictly short of a frame
        let mut reader = ChunkedReader { data: wire[..cut].to_vec(), pos: 0, chunk: 3 };
        match read_frame(&mut reader) {
            // lost before the length prefix completes: clean EOF
            Ok(None) => prop_assert!(cut < 4),
            // lost mid-payload: an explicit error, never a hang or panic
            Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
        }
    }

    #[test]
    fn garbage_never_panics_the_decoders(
        bytes in prop::collection::vec(0u8..=255, 0..120),
    ) {
        // decoding arbitrary payloads must return Ok or Err, never panic
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Response::decode(Bytes::from(bytes.clone()));
        // and reading arbitrary bytes as a frame stream must not panic
        // either (oversized length prefixes are rejected before allocation)
        let mut reader = ChunkedReader { data: bytes, pos: 0, chunk: 5 };
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let _ = Request::decode(payload.clone());
            let _ = Response::decode(payload);
        }
    }
}
