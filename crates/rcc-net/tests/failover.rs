//! The acceptance scenario: a CURRENCY BOUND query arriving over TCP takes
//! the remote branch through the pooled TCP [`TcpRemoteService`] to a
//! [`BackendNetServer`] in another thread — and when that back-end dies
//! mid-run, sessions degrade per their `ViolationPolicy` (error for
//! Reject, stale rows + warning for ServeStale) within a bounded time
//! instead of hanging.

use rcc_common::Duration as SimDuration;
use rcc_common::Error;
use rcc_mtcache::paper::{paper_setup, warm_up};
use rcc_mtcache::{MTCache, ViolationPolicy};
use rcc_net::{
    BackendNetServer, ClientConfig, NetClient, NetServer, NetServerConfig, PoolConfig, RetryPolicy,
    TcpRemoteService,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const Q: &str = "SELECT c_acctbal FROM customer WHERE c_custkey = 5 \
                 CURRENCY BOUND 30 SEC ON (customer)";

/// Pool/retry tuning tight enough that a dead back-end is detected in well
/// under a second: 2 attempts, 10 ms backoff, 500 ms per-call deadline.
fn tight_remote(addr: std::net::SocketAddr) -> TcpRemoteService {
    TcpRemoteService::new(
        addr,
        PoolConfig {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(500),
            ..PoolConfig::default()
        },
        RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_millis(10),
        },
    )
    .unwrap()
}

/// Build the full two-process-shaped rig in one test process: cache with a
/// TCP front-end, back-end behind its own listener, remote branch rewired
/// through the pooled TCP transport.
fn rig() -> (Arc<MTCache>, NetServer, BackendNetServer) {
    let cache = paper_setup(0.001, 7).unwrap();
    warm_up(&cache).unwrap();
    let cache = Arc::new(cache);
    let backend_srv = BackendNetServer::spawn(Arc::clone(cache.backend()), "127.0.0.1:0").unwrap();
    let remote = tight_remote(backend_srv.addr());
    remote.set_metrics(Arc::clone(cache.metrics()));
    cache.set_remote_service(Some(Arc::new(remote)));
    let front = NetServer::spawn(
        Arc::clone(&cache),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .unwrap();
    (cache, front, backend_srv)
}

/// Make CR1 stale beyond the 30 s bound so `Q` must take the remote branch.
fn go_stale(cache: &MTCache) {
    cache.set_region_stalled("CR1", true);
    cache.advance(SimDuration::from_secs(90)).unwrap();
}

#[test]
fn currency_bound_query_ships_over_pooled_tcp() {
    let (cache, front, _backend_srv) = rig();
    let mut client = NetClient::connect(front.addr(), &ClientConfig::default()).unwrap();

    // healthy and fresh: local
    assert!(!client.query(Q).unwrap().used_remote);

    // stale region: the guard routes the probe to the back-end — over TCP
    go_stale(&cache);
    cache
        .execute("UPDATE customer SET c_acctbal = 777.0 WHERE c_custkey = 5")
        .unwrap();
    let r = client.query(Q).unwrap();
    assert!(r.used_remote, "stale region must ship to the back-end");
    assert_eq!(
        r.rows[0].values()[0],
        rcc_common::Value::Float(777.0),
        "the TCP remote branch sees the latest committed value"
    );

    // the transport really ran: remote-call latency was recorded and the
    // pool holds a warm connection
    let snap = cache.metrics().snapshot();
    let calls = snap
        .histogram("rcc_net_remote_call_seconds")
        .expect("remote call histogram exists")
        .count;
    assert!(calls >= 1, "at least one pooled TCP remote call");
}

#[test]
fn killing_the_backend_degrades_per_policy_without_hanging() {
    let (cache, front, mut backend_srv) = rig();
    let cfg = ClientConfig::default();
    let mut reject = NetClient::connect(front.addr(), &cfg).unwrap();
    let mut stale = NetClient::connect(front.addr(), &cfg).unwrap();
    stale.set_policy(ViolationPolicy::ServeStale).unwrap();

    go_stale(&cache);
    // both sessions are healthy while the back-end lives
    assert!(reject.query(Q).unwrap().used_remote);
    assert!(stale.query(Q).unwrap().used_remote);

    // kill the back-end mid-run: pooled connections die, later dials are
    // refused
    backend_srv.shutdown();

    // Reject: a policy-conformant error, within the retry budget's bound
    let started = Instant::now();
    let err = reject.query(Q).expect_err("reject session must error");
    let elapsed = started.elapsed();
    // Reject surfaces as a currency violation explaining the outage — the
    // same class the in-process failure-injection suite establishes
    match &err {
        Error::CurrencyViolation(m) => {
            assert!(
                m.contains("unreachable"),
                "violation must name the outage: {m}"
            )
        }
        other => panic!("expected CurrencyViolation, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "degradation must be bounded by deadlines, took {elapsed:?}"
    );

    // ServeStale: rows from the stale cache, flagged with a warning
    let r = stale.query(Q).expect("serve-stale session must get rows");
    assert_eq!(r.rows.len(), 1);
    assert!(
        r.warnings
            .iter()
            .any(|w| w.to_lowercase().contains("stale")),
        "stale service must be flagged: {:?}",
        r.warnings
    );
    assert!(!r.used_remote, "the answer came from the local cache");

    // the transport recorded the outage
    let snap = cache.metrics().snapshot();
    assert!(snap.counter("rcc_net_remote_unavailable_total") >= 2);
    assert!(snap.counter("rcc_net_remote_retries_total") >= 1);
}

#[test]
fn backend_recovery_restores_remote_service() {
    let (cache, front, mut backend_srv) = rig();
    let mut client = NetClient::connect(front.addr(), &ClientConfig::default()).unwrap();
    go_stale(&cache);
    assert!(client.query(Q).unwrap().used_remote);

    backend_srv.shutdown();
    assert!(client.query(Q).is_err(), "outage surfaces as an error");

    // bring a new back-end up on a fresh port and swap the remote service
    // — the next query ships again
    let revived = BackendNetServer::spawn(Arc::clone(cache.backend()), "127.0.0.1:0").unwrap();
    let remote = tight_remote(revived.addr());
    remote.set_metrics(Arc::clone(cache.metrics()));
    cache.set_remote_service(Some(Arc::new(remote)));
    let r = client.query(Q).unwrap();
    assert!(r.used_remote, "service restored after recovery");
}
