//! Model checks for `rcc-net`'s two lock-free-ish coordination surfaces:
//! [`BackendPool`]'s checkout/checkin/discard accounting and
//! [`NetServer`]'s shutdown-vs-accept race.
//!
//! Built on the workspace's loom stand-in (`compat/loom`): each model runs
//! many times with perturbed scheduling injected at `loom::thread::yield_now`
//! call sites; `RUSTFLAGS="--cfg loom"` (the CI model-check job) multiplies
//! the iteration count for a deeper search. Invariants checked:
//!
//! * pool: `in_use` returns to zero once every checkout is matched by a
//!   checkin or discard, the idle list never exceeds `max_idle`, and no
//!   interleaving loses or double-counts a slot;
//! * server: `shutdown()` always joins the accept thread and every
//!   connection thread, no matter how many clients are mid-connect, and the
//!   bounded accept pool's slot count returns to zero.

use loom::thread;
use rcc_net::{BackendPool, NetServer, NetServerConfig, PoolConfig};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A loopback acceptor that accepts (and immediately drops) connections
/// until told to stop. The pool under test never does I/O on the sockets,
/// so dropping the server half is fine.
fn accept_loop() -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                drop(stream);
            }
        })
    };
    (addr, stop, handle)
}

fn stop_accept_loop(
    addr: std::net::SocketAddr,
    stop: &Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    let _ = handle.join();
}

#[test]
fn pool_checkout_checkin_accounting_is_linearizable() {
    let (addr, stop, handle) = accept_loop();
    loom::model(move || {
        let pool = Arc::new(
            BackendPool::new(
                addr,
                PoolConfig {
                    max_idle: 2,
                    connect_timeout: Duration::from_secs(1),
                    io_timeout: Duration::from_secs(1),
                },
            )
            .expect("pool"),
        );
        let workers: Vec<_> = (0..3)
            .map(|w| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    for op in 0..3 {
                        let conn = pool.checkout().expect("checkout");
                        thread::yield_now();
                        // Mix the three completion paths across workers/ops.
                        if (w + op) % 3 == 0 {
                            drop(conn);
                            pool.discard();
                        } else {
                            pool.checkin(conn);
                        }
                        thread::yield_now();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let (idle, in_use) = pool.occupancy();
        assert_eq!(in_use, 0, "every checkout must be checked in or discarded");
        assert!(idle <= 2, "idle list exceeded max_idle: {idle}");

        // Concurrent drain vs checkin must never leave phantom occupancy.
        let c = pool.checkout().expect("checkout");
        let drainer = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                thread::yield_now();
                pool.drain();
            })
        };
        pool.checkin(c);
        drainer.join().expect("drainer");
        let (idle, in_use) = pool.occupancy();
        assert_eq!(in_use, 0);
        assert!(idle <= 2);
    });
    stop_accept_loop(addr, &stop, handle);
}

#[test]
fn server_shutdown_vs_concurrent_connects_joins_cleanly() {
    // One cache for all iterations: MTCache construction is the expensive
    // part and carries no per-iteration state the model depends on.
    let cache = Arc::new(rcc_mtcache::MTCache::new());
    loom::model(move || {
        let mut server = NetServer::spawn(
            Arc::clone(&cache),
            "127.0.0.1:0",
            NetServerConfig {
                max_connections: 2,
                frame_timeout: Duration::from_secs(1),
            },
        )
        .expect("spawn");
        let addr = server.addr();

        // Clients race the shutdown: some sneak in before the flag, some
        // hit the closed listener. Both outcomes must be clean.
        let clients: Vec<_> = (0..3)
            .map(|_| {
                thread::spawn(move || {
                    thread::yield_now();
                    if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
                        thread::yield_now();
                        drop(s);
                    }
                })
            })
            .collect();
        thread::yield_now();
        server.shutdown();
        for c in clients {
            c.join().expect("client");
        }
        // Shutdown joined the accept thread and every connection thread;
        // the bounded accept pool must read as empty again.
        let open = cache
            .metrics()
            .snapshot()
            .gauge("rcc_net_connections_open")
            .unwrap_or(0.0);
        assert_eq!(open, 0.0, "connection slots leaked across shutdown");
        // A second shutdown is a no-op, not a deadlock.
        server.shutdown();
    });
}
