//! Currency regions.

use rcc_common::{Duration, RegionId};

/// A *currency region*: the set of cached views maintained by one
/// distribution agent, hence guaranteed mutually consistent at all times
/// (paper Sec. 3.1).
///
/// The paper's prototype models regions as three catalog columns on views —
/// `cid`, `update_interval`, `update_delay` — where interval and delay "can
/// be estimates because they are used only for cost estimation". We promote
/// the region to a first-class catalog object carrying the same data plus
/// the heartbeat rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurrencyRegion {
    /// Region id (`cid` in the paper's catalog).
    pub id: RegionId,
    /// Human-readable name, e.g. `"CR1"`.
    pub name: String,
    /// How often the distribution agent wakes up and propagates updates
    /// (`update_interval`, the paper's `f`).
    pub update_interval: Duration,
    /// Delay for an update to reach the cache once propagated
    /// (`update_delay`, the paper's `d`): the minimal currency this region
    /// can guarantee.
    pub update_delay: Duration,
    /// How often the back-end heartbeat row for this region beats
    /// (Sec. 3.1: "at regular intervals, say every 2 seconds").
    pub heartbeat_interval: Duration,
}

impl CurrencyRegion {
    /// Construct a region with the default 2-second heartbeat.
    pub fn new(
        id: RegionId,
        name: impl Into<String>,
        update_interval: Duration,
        update_delay: Duration,
    ) -> CurrencyRegion {
        CurrencyRegion {
            id,
            name: name.into(),
            update_interval,
            update_delay,
            heartbeat_interval: Duration::from_secs(2),
        }
    }

    /// The minimal staleness bound any data in this region can ever meet:
    /// the propagation delay `d`. A query whose currency bound is below
    /// this can never be answered from this region, and the optimizer
    /// discards local plans outright (paper Sec. 3.2.2, last paragraph).
    pub fn min_guaranteed_currency(&self) -> Duration {
        self.update_delay
    }

    /// The worst-case staleness of data in this region under healthy
    /// replication: `d + f` (paper Fig. 3.2 — currency ramps from `d` to
    /// `d + f` over a propagation cycle).
    pub fn max_healthy_staleness(&self) -> Duration {
        self.update_delay.plus(self.update_interval)
    }

    /// Name of this region's local heartbeat table at the cache
    /// (`Heartbeat_R` in the paper's currency-guard predicate).
    pub fn heartbeat_table_name(&self) -> String {
        format!("heartbeat_{}", self.name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr1() -> CurrencyRegion {
        CurrencyRegion::new(
            RegionId(1),
            "CR1",
            Duration::from_secs(15),
            Duration::from_secs(5),
        )
    }

    #[test]
    fn derived_bounds() {
        let r = cr1();
        assert_eq!(r.min_guaranteed_currency(), Duration::from_secs(5));
        assert_eq!(r.max_healthy_staleness(), Duration::from_secs(20));
    }

    #[test]
    fn heartbeat_table_name_is_lowercased() {
        assert_eq!(cr1().heartbeat_table_name(), "heartbeat_cr1");
    }

    #[test]
    fn default_heartbeat_rate() {
        assert_eq!(cr1().heartbeat_interval, Duration::from_secs(2));
    }
}
