#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Catalog for the RCC mini-DBMS.
//!
//! Holds the metadata both servers need: base-table descriptions (the
//! *shadow database* on the cache has the same table definitions as the
//! back-end but empty tables — paper Sec. 3 point 1), cached materialized
//! view definitions (point 2), **currency regions** (Sec. 3.1) and
//! back-end statistics used for cost estimation.

pub mod catalog;
pub mod region;
pub mod table_meta;
pub mod view;

pub use catalog::Catalog;
pub use region::CurrencyRegion;
pub use table_meta::{IndexMeta, TableMeta};
pub use view::{CachedViewDef, ViewPredicate};
