//! The catalog proper: registries for tables, views, regions and stats.

use crate::region::CurrencyRegion;
use crate::table_meta::TableMeta;
use crate::view::CachedViewDef;
use parking_lot::RwLock;
use rcc_common::{Error, RegionId, Result, TableId, ViewId};
use rcc_storage::TableStats;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe catalog shared by the planner, optimizer and executor.
///
/// On the back-end server it describes the master database; on the cache it
/// is the *shadow catalog*: identical table definitions, **back-end**
/// statistics, plus the cached-view and currency-region registries only the
/// cache has.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    tables: HashMap<String, Arc<TableMeta>>,
    tables_by_id: HashMap<TableId, String>,
    views: HashMap<String, Arc<CachedViewDef>>,
    regions: HashMap<RegionId, Arc<CurrencyRegion>>,
    regions_by_name: HashMap<String, RegionId>,
    /// Stats keyed by object name (table or view).
    stats: HashMap<String, Arc<TableStats>>,
    next_table_id: u32,
    next_view_id: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Allocate the next table id.
    pub fn next_table_id(&self) -> TableId {
        let mut inner = self.inner.write();
        inner.next_table_id += 1;
        TableId(inner.next_table_id)
    }

    /// Allocate the next view id.
    pub fn next_view_id(&self) -> ViewId {
        let mut inner = self.inner.write();
        inner.next_view_id += 1;
        ViewId(inner.next_view_id)
    }

    /// Register a base table.
    pub fn register_table(&self, meta: TableMeta) -> Result<Arc<TableMeta>> {
        let mut inner = self.inner.write();
        if inner.tables.contains_key(&meta.name) {
            return Err(Error::AlreadyExists(format!("table {}", meta.name)));
        }
        let arc = Arc::new(meta);
        inner.tables_by_id.insert(arc.id, arc.name.clone());
        inner.tables.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Replace a base table's metadata (e.g. after adding an index).
    pub fn update_table(&self, meta: TableMeta) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.tables.contains_key(&meta.name) {
            return Err(Error::NotFound(format!("table {}", meta.name)));
        }
        let arc = Arc::new(meta);
        inner.tables_by_id.insert(arc.id, arc.name.clone());
        inner.tables.insert(arc.name.clone(), arc);
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.inner
            .read()
            .tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<TableMeta>> {
        let inner = self.inner.read();
        let name = inner
            .tables_by_id
            .get(&id)
            .ok_or_else(|| Error::NotFound(format!("table {id}")))?;
        Ok(Arc::clone(&inner.tables[name]))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register a cached view (validates the definition).
    pub fn register_view(&self, view: CachedViewDef) -> Result<Arc<CachedViewDef>> {
        view.validate()?;
        let mut inner = self.inner.write();
        if inner.views.contains_key(&view.name) || inner.tables.contains_key(&view.name) {
            return Err(Error::AlreadyExists(format!("object {}", view.name)));
        }
        if !inner.regions.contains_key(&view.region) {
            return Err(Error::NotFound(format!("currency region {}", view.region)));
        }
        let arc = Arc::new(view);
        inner.views.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Remove a cached view; returns its definition.
    pub fn drop_view(&self, name: &str) -> Result<Arc<CachedViewDef>> {
        self.inner
            .write()
            .views
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(format!("view {name}")))
    }

    /// Look up a view by name.
    pub fn view(&self, name: &str) -> Result<Arc<CachedViewDef>> {
        self.inner
            .read()
            .views
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("view {name}")))
    }

    /// All cached views over base table `table`, in registration order —
    /// the candidate set for view matching.
    pub fn views_over(&self, table: TableId) -> Vec<Arc<CachedViewDef>> {
        let inner = self.inner.read();
        let mut views: Vec<Arc<CachedViewDef>> = inner
            .views
            .values()
            .filter(|v| v.base_table == table)
            .cloned()
            .collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// All cached views, sorted by id.
    pub fn all_views(&self) -> Vec<Arc<CachedViewDef>> {
        let mut views: Vec<Arc<CachedViewDef>> =
            self.inner.read().views.values().cloned().collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// Register a currency region.
    pub fn register_region(&self, region: CurrencyRegion) -> Result<Arc<CurrencyRegion>> {
        let mut inner = self.inner.write();
        if inner.regions.contains_key(&region.id)
            || inner
                .regions_by_name
                .contains_key(&region.name.to_ascii_lowercase())
        {
            return Err(Error::AlreadyExists(format!("region {}", region.name)));
        }
        let arc = Arc::new(region);
        inner
            .regions_by_name
            .insert(arc.name.to_ascii_lowercase(), arc.id);
        inner.regions.insert(arc.id, Arc::clone(&arc));
        Ok(arc)
    }

    /// Look up a region by id.
    pub fn region(&self, id: RegionId) -> Result<Arc<CurrencyRegion>> {
        self.inner
            .read()
            .regions
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("region {id}")))
    }

    /// Look up a region by name.
    pub fn region_by_name(&self, name: &str) -> Result<Arc<CurrencyRegion>> {
        let inner = self.inner.read();
        let id = inner
            .regions_by_name
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::NotFound(format!("region {name}")))?;
        Ok(Arc::clone(&inner.regions[id]))
    }

    /// All regions, sorted by id.
    pub fn regions(&self) -> Vec<Arc<CurrencyRegion>> {
        let mut rs: Vec<Arc<CurrencyRegion>> =
            self.inner.read().regions.values().cloned().collect();
        rs.sort_by_key(|r| r.id);
        rs
    }

    /// Install statistics for a table or view (the shadow database carries
    /// back-end stats — paper Sec. 3 point 1).
    pub fn set_stats(&self, object: &str, stats: TableStats) {
        self.inner
            .write()
            .stats
            .insert(object.to_ascii_lowercase(), Arc::new(stats));
    }

    /// Statistics for a table or view; empty stats if never installed.
    pub fn stats(&self, object: &str) -> Arc<TableStats> {
        self.inner
            .read()
            .stats
            .get(&object.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Duration, Schema};

    fn table(cat: &Catalog, name: &str) -> Arc<TableMeta> {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let meta = TableMeta::new(cat.next_table_id(), name, schema, vec!["id".into()]).unwrap();
        cat.register_table(meta).unwrap()
    }

    fn region(cat: &Catalog, id: u32, name: &str) -> Arc<CurrencyRegion> {
        cat.register_region(CurrencyRegion::new(
            RegionId(id),
            name,
            Duration::from_secs(10),
            Duration::from_secs(5),
        ))
        .unwrap()
    }

    fn view_over(cat: &Catalog, name: &str, t: &TableMeta, r: RegionId) -> CachedViewDef {
        CachedViewDef {
            id: cat.next_view_id(),
            name: name.into(),
            region: r,
            base_table: t.id,
            base_table_name: t.name.clone(),
            columns: vec!["id".into()],
            predicate: None,
            schema: t.schema.clone().with_qualifier(name),
            key_ordinals: vec![0],
            local_indexes: vec![],
        }
    }

    #[test]
    fn table_registry() {
        let cat = Catalog::new();
        let t = table(&cat, "Customer");
        assert_eq!(cat.table("CUSTOMER").unwrap().id, t.id);
        assert_eq!(cat.table_by_id(t.id).unwrap().name, "customer");
        assert!(cat.table("nope").is_err());
        assert!(cat
            .register_table(
                TableMeta::new(TableId(99), "customer", t.schema.clone(), vec!["id".into()])
                    .unwrap()
            )
            .is_err());
    }

    #[test]
    fn view_requires_region_and_unique_name() {
        let cat = Catalog::new();
        let t = table(&cat, "customer");
        let v = view_over(&cat, "cust_prj", &t, RegionId(1));
        assert!(cat.register_view(v.clone()).is_err(), "region missing");
        region(&cat, 1, "CR1");
        cat.register_view(v.clone()).unwrap();
        assert!(cat.register_view(v).is_err(), "duplicate");
        // view name colliding with a table name is rejected too
        let mut v2 = view_over(&cat, "customer", &t, RegionId(1));
        v2.id = cat.next_view_id();
        assert!(cat.register_view(v2).is_err());
    }

    #[test]
    fn views_over_filters_by_base_table() {
        let cat = Catalog::new();
        let t1 = table(&cat, "customer");
        let t2 = table(&cat, "orders");
        region(&cat, 1, "CR1");
        cat.register_view(view_over(&cat, "v1", &t1, RegionId(1)))
            .unwrap();
        cat.register_view(view_over(&cat, "v2", &t2, RegionId(1)))
            .unwrap();
        cat.register_view(view_over(&cat, "v3", &t1, RegionId(1)))
            .unwrap();
        let vs = cat.views_over(t1.id);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].name, "v1");
        assert_eq!(vs[1].name, "v3");
        assert_eq!(cat.all_views().len(), 3);
    }

    #[test]
    fn region_lookup_by_name_case_insensitive() {
        let cat = Catalog::new();
        region(&cat, 1, "CR1");
        assert_eq!(cat.region_by_name("cr1").unwrap().id, RegionId(1));
        assert_eq!(cat.region(RegionId(1)).unwrap().name, "CR1");
        assert!(cat.region(RegionId(9)).is_err());
        assert_eq!(cat.regions().len(), 1);
    }

    #[test]
    fn stats_roundtrip_with_default() {
        let cat = Catalog::new();
        assert_eq!(cat.stats("t").row_count, 0);
        let stats = TableStats {
            row_count: 42,
            avg_row_bytes: 10.0,
            columns: Default::default(),
        };
        cat.set_stats("T", stats);
        assert_eq!(cat.stats("t").row_count, 42);
    }

    #[test]
    fn id_allocation_monotonic() {
        let cat = Catalog::new();
        assert!(cat.next_table_id() < cat.next_table_id());
        assert!(cat.next_view_id() < cat.next_view_id());
    }
}
