//! Base-table and index metadata.

use rcc_common::{Error, IndexId, Result, Schema, TableId};

/// Metadata for one index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMeta {
    /// Index id.
    pub id: IndexId,
    /// Index name.
    pub name: String,
    /// Indexed column names, in key order.
    pub columns: Vec<String>,
    /// True for the clustered (primary-key) index.
    pub clustered: bool,
}

/// Metadata for one base table (master copy at the back-end; shadow copy at
/// the cache with the same definition but no rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Table id — the atom of consistency properties.
    pub id: TableId,
    /// Table name (lower-cased).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Clustered key column names, in key order.
    pub key: Vec<String>,
    /// Secondary indexes *at the back-end*. The cache's local views declare
    /// their own (usually poorer) indexing, which is what makes the paper's
    /// Q6/Q7 experiment interesting.
    pub indexes: Vec<IndexMeta>,
}

impl TableMeta {
    /// Create table metadata; validates the key references real columns.
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        schema: Schema,
        key: Vec<String>,
    ) -> Result<TableMeta> {
        let name = name.into().to_ascii_lowercase();
        if key.is_empty() {
            return Err(Error::Config(format!("table {name} needs a primary key")));
        }
        for k in &key {
            schema.resolve(None, k).map_err(|_| {
                Error::Config(format!("key column {k} not in schema of table {name}"))
            })?;
        }
        Ok(TableMeta {
            id,
            name,
            schema,
            key,
            indexes: Vec::new(),
        })
    }

    /// Ordinals of the clustered key columns.
    pub fn key_ordinals(&self) -> Vec<usize> {
        self.key
            .iter()
            .map(|k| self.schema.resolve(None, k).expect("validated key"))
            .collect()
    }

    /// Register a secondary index at the back-end.
    pub fn add_index(
        &mut self,
        id: IndexId,
        name: impl Into<String>,
        columns: Vec<String>,
    ) -> Result<()> {
        for c in &columns {
            self.schema.resolve(None, c).map_err(|_| {
                Error::Config(format!(
                    "index column {c} not in schema of table {}",
                    self.name
                ))
            })?;
        }
        self.indexes.push(IndexMeta {
            id,
            name: name.into(),
            columns,
            clustered: false,
        });
        Ok(())
    }

    /// Find a back-end index whose leading column is `column`.
    pub fn index_on(&self, column: &str) -> Option<&IndexMeta> {
        self.indexes.iter().find(|ix| {
            ix.columns
                .first()
                .map(|c| c.eq_ignore_ascii_case(column))
                .unwrap_or(false)
        })
    }

    /// Is `column` the leading clustered-key column (so a range predicate on
    /// it turns a scan into a clustered seek)?
    pub fn is_leading_key(&self, column: &str) -> bool {
        self.key
            .first()
            .map(|k| k.eq_ignore_ascii_case(column))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType};

    fn customer() -> TableMeta {
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int),
            Column::new("c_name", DataType::Str),
            Column::new("c_acctbal", DataType::Float),
        ]);
        TableMeta::new(TableId(1), "Customer", schema, vec!["c_custkey".into()]).unwrap()
    }

    #[test]
    fn name_lowercased_and_key_validated() {
        let t = customer();
        assert_eq!(t.name, "customer");
        assert_eq!(t.key_ordinals(), vec![0]);
        assert!(t.is_leading_key("C_CUSTKEY"));
        assert!(!t.is_leading_key("c_name"));
    }

    #[test]
    fn bad_key_rejected() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        assert!(TableMeta::new(TableId(1), "t", schema.clone(), vec!["zz".into()]).is_err());
        assert!(TableMeta::new(TableId(1), "t", schema, vec![]).is_err());
    }

    #[test]
    fn index_lookup_by_leading_column() {
        let mut t = customer();
        t.add_index(IndexId(1), "ix_bal", vec!["c_acctbal".into()])
            .unwrap();
        assert!(t.index_on("c_acctbal").is_some());
        assert!(t.index_on("c_name").is_none());
        assert!(t
            .add_index(IndexId(2), "bad", vec!["ghost".into()])
            .is_err());
    }
}
