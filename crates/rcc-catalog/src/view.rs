//! Cached materialized view definitions.

use rcc_common::{Error, RegionId, Result, Schema, TableId, ViewId};
use rcc_storage::KeyRange;

/// The selection predicate of a cached view, restricted to a single-column
/// range — the paper's prototype caches "selections and projections of
/// tables or materialized views on the back-end server" (Sec. 3 point 2),
/// and a column range is the selection shape its view-matching machinery
/// (and ours) reasons about for subsumption.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewPredicate {
    /// Name of the restricted column (must be one of the view's columns).
    pub column: String,
    /// The retained range.
    pub range: KeyRange,
}

/// Definition of a materialized view cached at the mid-tier DBMS: a
/// projection (and optional selection) over one back-end base table,
/// maintained by the distribution agent of its currency region.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedViewDef {
    /// View id.
    pub id: ViewId,
    /// View name (lower-cased).
    pub name: String,
    /// The currency region maintaining this view.
    pub region: RegionId,
    /// The base table this view projects.
    pub base_table: TableId,
    /// Base table name, for convenience.
    pub base_table_name: String,
    /// Names of the retained base-table columns, in view column order.
    /// Must include the base table's full clustered key so replication can
    /// apply deletes/updates by key.
    pub columns: Vec<String>,
    /// Optional selection predicate over a retained column.
    pub predicate: Option<ViewPredicate>,
    /// Schema of the view (the retained columns, qualified by view name).
    pub schema: Schema,
    /// Clustered key ordinals *within the view schema*.
    pub key_ordinals: Vec<usize>,
    /// Secondary indexes declared on the view at the cache: (name, leading
    /// column name). The paper's cust_prj/orders_prj have none, which is
    /// load-bearing for the Q6 experiment.
    pub local_indexes: Vec<(String, String)>,
}

impl CachedViewDef {
    /// Validate internal consistency of a definition.
    pub fn validate(&self) -> Result<()> {
        if self.columns.len() != self.schema.len() {
            return Err(Error::Config(format!(
                "view {}: column list and schema disagree",
                self.name
            )));
        }
        for &k in &self.key_ordinals {
            if k >= self.schema.len() {
                return Err(Error::Config(format!(
                    "view {}: key ordinal out of range",
                    self.name
                )));
            }
        }
        if let Some(p) = &self.predicate {
            if !self
                .columns
                .iter()
                .any(|c| c.eq_ignore_ascii_case(&p.column))
            {
                return Err(Error::Config(format!(
                    "view {}: predicate column {} not retained",
                    self.name, p.column
                )));
            }
        }
        Ok(())
    }

    /// Does this view retain base-table column `name`?
    pub fn covers_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.eq_ignore_ascii_case(name))
    }

    /// Ordinal of base-table column `name` within the view, if retained.
    pub fn ordinal_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Does the view have a local secondary index led by `column`?
    pub fn local_index_on(&self, column: &str) -> Option<&str> {
        self.local_indexes
            .iter()
            .find(|(_, lead)| lead.eq_ignore_ascii_case(column))
            .map(|(name, _)| name.as_str())
    }

    /// Is `column` the leading clustered-key column of the view?
    pub fn is_leading_key(&self, column: &str) -> bool {
        self.key_ordinals
            .first()
            .map(|&k| self.columns[k].eq_ignore_ascii_case(column))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Value};

    fn cust_prj() -> CachedViewDef {
        let schema = Schema::new(vec![
            Column::new("c_custkey", DataType::Int).with_source(TableId(1)),
            Column::new("c_name", DataType::Str).with_source(TableId(1)),
            Column::new("c_acctbal", DataType::Float).with_source(TableId(1)),
        ])
        .with_qualifier("cust_prj");
        CachedViewDef {
            id: ViewId(1),
            name: "cust_prj".into(),
            region: RegionId(1),
            base_table: TableId(1),
            base_table_name: "customer".into(),
            columns: vec!["c_custkey".into(), "c_name".into(), "c_acctbal".into()],
            predicate: None,
            schema,
            key_ordinals: vec![0],
            local_indexes: vec![],
        }
    }

    #[test]
    fn validates_clean_definition() {
        assert!(cust_prj().validate().is_ok());
    }

    #[test]
    fn rejects_mismatched_columns() {
        let mut v = cust_prj();
        v.columns.pop();
        assert!(v.validate().is_err());
    }

    #[test]
    fn rejects_unretained_predicate_column() {
        let mut v = cust_prj();
        v.predicate = Some(ViewPredicate {
            column: "c_nationkey".into(),
            range: KeyRange::eq(Value::Int(1)),
        });
        assert!(v.validate().is_err());
        v.predicate = Some(ViewPredicate {
            column: "c_acctbal".into(),
            range: KeyRange::at_least(Value::Float(0.0)),
        });
        assert!(v.validate().is_ok());
    }

    #[test]
    fn column_coverage_and_ordinals() {
        let v = cust_prj();
        assert!(v.covers_column("C_NAME"));
        assert!(!v.covers_column("c_nationkey"));
        assert_eq!(v.ordinal_of("c_acctbal"), Some(2));
        assert!(v.is_leading_key("c_custkey"));
        assert!(!v.is_leading_key("c_name"));
    }

    #[test]
    fn local_index_lookup() {
        let mut v = cust_prj();
        assert!(v.local_index_on("c_acctbal").is_none());
        v.local_indexes.push(("ix_bal".into(), "c_acctbal".into()));
        assert_eq!(v.local_index_on("C_ACCTBAL"), Some("ix_bal"));
    }
}
