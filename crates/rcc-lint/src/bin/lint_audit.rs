//! `lint-audit`: sweep the generated C&C corpus plus the adversarial lint
//! corpus through the Layer-1 currency-clause lint.
//!
//! ```text
//! cargo run -p rcc-lint --bin lint-audit -- [--queries N] [--seed S] [--scale F]
//! ```
//!
//! Two assertions, both deterministic:
//!
//! * every query in `rcc_tpcd::currency_corpus` lints clean apart from
//!   `L007` — the generator deliberately draws bounds on both sides of
//!   the regions' healthy-replication envelopes to exercise local and
//!   remote plan shapes, so statically-dead-guard advisories are expected
//!   there; any *other* diagnostic is a lint false positive;
//! * every query in `rcc_tpcd::adversarial_lint_corpus` produces *exactly*
//!   its expected diagnostic-code set — a missed or spurious code fails
//!   the sweep, so lint regressions can't land silently.

use rcc_lint::lint_select;
use rcc_sql::ast::Statement;
use rcc_verify::rig;
use std::process::ExitCode;

struct Args {
    queries: usize,
    seed: u64,
    scale: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: 250,
        seed: 7,
        scale: 0.01,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--queries" => {
                args.queries = grab("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--seed" => {
                args.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                args.scale = grab("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--help" | "-h" => {
                println!("usage: lint-audit [--queries N] [--seed S] [--scale F]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let (catalog, _master) = match rig::audit_catalog(args.scale, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-audit: failed to build audit catalog: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;

    // Phase 1: the generated corpus must be diagnostic-free apart from
    // L007 — its bounds intentionally straddle the envelopes, so the
    // dead-guard advisory fires on the extreme draws by construction.
    let max_custkey = catalog.stats("customer").row_count.max(1) as i64;
    let corpus = rcc_tpcd::currency_corpus(args.queries, args.seed, max_custkey);
    let mut dead_guard_advisories = 0usize;
    for (qi, sql) in corpus.iter().enumerate() {
        let select = match rcc_sql::parser::parse_statement(sql) {
            Ok(Statement::Select(s)) => s,
            Ok(_) => {
                eprintln!("query {qi}: generator produced a non-SELECT statement");
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("query {qi}: parse error: {e}\n  {sql}");
                failures += 1;
                continue;
            }
        };
        let diags = lint_select(&catalog, &select);
        let (dead, other): (Vec<_>, Vec<_>) = diags
            .iter()
            .partition(|d| d.code == rcc_lint::codes::DEAD_GUARD);
        dead_guard_advisories += dead.len();
        if !other.is_empty() {
            failures += 1;
            eprintln!("FALSE POSITIVE on generated query {qi}:\n  {sql}");
            for d in &other {
                eprintln!("  {d}");
            }
        }
    }

    // Phase 2: the adversarial corpus must produce exactly its expected
    // diagnostic-code sets.
    let adversarial = rcc_tpcd::adversarial_lint_corpus();
    let adversarial_len = adversarial.len();
    let mut diagnostics_seen = 0usize;
    for (qi, (sql, expected)) in adversarial.into_iter().enumerate() {
        let select = match rcc_sql::parser::parse_statement(sql) {
            Ok(Statement::Select(s)) | Ok(Statement::Lint(s)) => s,
            Ok(other) => {
                eprintln!("adversarial {qi}: expected a query, parsed {other:?}");
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("adversarial {qi}: parse error: {e}\n  {sql}");
                failures += 1;
                continue;
            }
        };
        let diags = lint_select(&catalog, &select);
        diagnostics_seen += diags.len();
        let mut got: Vec<&str> = diags.iter().map(|d| d.code).collect();
        got.sort_unstable();
        if got != expected {
            failures += 1;
            eprintln!(
                "MISMATCH on adversarial query {qi}:\n  {sql}\n  expected {expected:?}, got {got:?}"
            );
            for d in &diags {
                eprintln!("  {d}");
            }
        }
    }

    println!(
        "lint-audit: {} generated + {} adversarial queries, {} dead-guard \
         advisories on generated set, {} diagnostics on adversarial set, \
         {} failures",
        corpus.len(),
        adversarial_len,
        dead_guard_advisories,
        diagnostics_seen,
        failures
    );
    if failures == 0 {
        println!("lint-audit: lint is clean on generated queries and exact on adversarial ones");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
