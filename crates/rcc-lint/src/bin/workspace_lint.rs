//! `workspace-lint`: run the Layer-2 source analyzer over every workspace
//! crate and fail on any violation.
//!
//! ```text
//! cargo run -p rcc-lint --bin workspace-lint -- [--root DIR]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` (the workspace's own code; `compat/`
//! vendored stand-ins are out of scope) and enforces:
//!
//! * no lock-wrapped raw `Table` outside `rcc-storage` library sources;
//! * an acyclic lock-acquisition-order graph across `Mutex`/`RwLock`
//!   fields;
//! * every `rcc_*` metric literal registered exactly once in
//!   `rcc-obs/src/names.rs`, with no unused registrations;
//! * no direct `std::fs` / `fs::` file I/O in library sources outside
//!   `rcc-storage` and `rcc-bench` (durability must flow through the
//!   storage layer's WAL/checkpoint protocol);
//! * every `const TAG_*: u8` wire-frame tag in `rcc-net` declared exactly
//!   once in `rcc-net/src/tags.rs`'s `FRAME_TAGS` registry under the same
//!   byte, every registered tag declared and used, and no wire byte
//!   reused;
//! * every `L0xx` diagnostic-code literal declared exactly once in
//!   `rcc-lint/src/lib.rs`'s `codes` module and every declared code used
//!   (corpora assert exact expected code sets against this registry).
//!
//! Violations are fixed at the source, never allowlisted here.

use rcc_lint::source::{
    check_frame_tags, check_fs_io, check_lint_codes, check_lock_order, check_metric_names,
    check_raw_table, collect_code_registry, collect_registry, collect_tag_registry, prepare,
    FileKind, SourceFile,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default workspace root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args() -> Result<PathBuf, String> {
    let mut root = default_root();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root requires a value")?);
            }
            "--help" | "-h" => {
                println!("usage: workspace-lint [--root DIR]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(root)
}

/// Collect `.rs` files under `dir` recursively, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lexed workspace sources plus the two extracted registries (metric
/// names from `rcc-obs`, wire-frame tags from `rcc-net`) and their paths.
struct Workspace {
    files: Vec<SourceFile>,
    metrics: Vec<(String, u32)>,
    metrics_path: String,
    tags: Vec<(u8, String, u32)>,
    tags_path: String,
    codes: Vec<(String, String, u32)>,
    codes_path: String,
}

fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let registry_rel = "crates/rcc-obs/src/names.rs";
    let registry_src = std::fs::read_to_string(root.join(registry_rel))?;
    // `prepare` drops the file's own test module before extraction.
    let registry_file = prepare("rcc-obs", registry_rel, FileKind::Lib, &registry_src);
    let registry = collect_registry(&registry_file.toks);

    let tags_rel = "crates/rcc-net/src/tags.rs";
    let tags_src = std::fs::read_to_string(root.join(tags_rel))?;
    let tags_file = prepare("rcc-net", tags_rel, FileKind::Lib, &tags_src);
    let tags = collect_tag_registry(&tags_file.toks);

    // The diagnostic-code registry file stays in `files` (it is a normal
    // library source for the other checks); `check_lint_codes` skips its
    // declaration literals by line.
    let codes_rel = "crates/rcc-lint/src/lib.rs";
    let codes_src = std::fs::read_to_string(root.join(codes_rel))?;
    let codes_file = prepare("rcc-lint", codes_rel, FileKind::Lib, &codes_src);
    let codes = collect_code_registry(&codes_file.toks);

    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rs_files(&src_dir, &mut paths)?;
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rel == registry_rel || rel == tags_rel {
                continue; // the registries themselves are not usage sites
            }
            let kind = if rel.contains("/src/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            let src = std::fs::read_to_string(&path)?;
            files.push(prepare(&crate_name, &rel, kind, &src));
        }
    }
    Ok(Workspace {
        files,
        metrics: registry,
        metrics_path: registry_rel.to_string(),
        tags,
        tags_path: tags_rel.to_string(),
        codes,
        codes_path: codes_rel.to_string(),
    })
}

fn main() -> ExitCode {
    let root = match parse_args() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("workspace-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let ws = match load_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("workspace-lint: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let files = &ws.files;
    let mut findings = check_raw_table(files);
    findings.extend(check_lock_order(files));
    findings.extend(check_metric_names(files, &ws.metrics, &ws.metrics_path));
    findings.extend(check_fs_io(files));
    findings.extend(check_frame_tags(files, &ws.tags, &ws.tags_path));
    findings.extend(check_lint_codes(files, &ws.codes, &ws.codes_path));

    for f in &findings {
        eprintln!("{f}");
    }
    println!(
        "workspace-lint: {} files in {} crates, {} registered metrics, {} registered tags, \
         {} declared codes, {} findings",
        files.len(),
        files
            .iter()
            .map(|f| f.crate_name.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        ws.metrics.len(),
        ws.tags.len(),
        ws.codes.len(),
        findings.len()
    );
    if findings.is_empty() {
        println!("workspace-lint: source invariants hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
