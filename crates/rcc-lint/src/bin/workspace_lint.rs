//! `workspace-lint`: run the Layer-2 source analyzer over every workspace
//! crate and fail on any violation.
//!
//! ```text
//! cargo run -p rcc-lint --bin workspace-lint -- [--root DIR]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` (the workspace's own code; `compat/`
//! vendored stand-ins are out of scope) and enforces:
//!
//! * no lock-wrapped raw `Table` outside `rcc-storage` library sources;
//! * an acyclic lock-acquisition-order graph across `Mutex`/`RwLock`
//!   fields;
//! * every `rcc_*` metric literal registered exactly once in
//!   `rcc-obs/src/names.rs`, with no unused registrations;
//! * no direct `std::fs` / `fs::` file I/O in library sources outside
//!   `rcc-storage` and `rcc-bench` (durability must flow through the
//!   storage layer's WAL/checkpoint protocol).
//!
//! Violations are fixed at the source, never allowlisted here.

use rcc_lint::source::{
    check_fs_io, check_lock_order, check_metric_names, check_raw_table, collect_registry, prepare,
    FileKind, SourceFile,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default workspace root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args() -> Result<PathBuf, String> {
    let mut root = default_root();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root requires a value")?);
            }
            "--help" | "-h" => {
                println!("usage: workspace-lint [--root DIR]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(root)
}

/// Collect `.rs` files under `dir` recursively, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lexed workspace sources, the metric registry, and the registry's path.
type Workspace = (Vec<SourceFile>, Vec<(String, u32)>, String);

fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let registry_rel = "crates/rcc-obs/src/names.rs";
    let registry_src = std::fs::read_to_string(root.join(registry_rel))?;
    // `prepare` drops the file's own test module before extraction.
    let registry_file = prepare("rcc-obs", registry_rel, FileKind::Lib, &registry_src);
    let registry = collect_registry(&registry_file.toks);

    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rs_files(&src_dir, &mut paths)?;
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rel == registry_rel {
                continue; // the registry itself is not a usage site
            }
            let kind = if rel.contains("/src/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            let src = std::fs::read_to_string(&path)?;
            files.push(prepare(&crate_name, &rel, kind, &src));
        }
    }
    Ok((files, registry, registry_rel.to_string()))
}

fn main() -> ExitCode {
    let root = match parse_args() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("workspace-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let (files, registry, registry_path) = match load_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("workspace-lint: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut findings = check_raw_table(&files);
    findings.extend(check_lock_order(&files));
    findings.extend(check_metric_names(&files, &registry, &registry_path));
    findings.extend(check_fs_io(&files));

    for f in &findings {
        eprintln!("{f}");
    }
    println!(
        "workspace-lint: {} files in {} crates, {} registered metrics, {} findings",
        files.len(),
        files
            .iter()
            .map(|f| f.crate_name.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        registry.len(),
        findings.len()
    );
    if findings.is_empty() {
        println!("workspace-lint: source invariants hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
