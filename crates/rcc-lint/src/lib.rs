#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Static analysis for the RCC stack, on two layers.
//!
//! **Layer 1 (this module): currency-clause semantic lint.** A dataflow
//! pass over the `rcc-sql` AST plus the catalog that flags queries which
//! are syntactically valid but semantically absurd under the paper's
//! normalization rules (Sec. 3.2.1): contradictory or subsumed bounds,
//! dead specs, `BY` groupings that match no key, cross-block class
//! conflicts, clauses made redundant by the session default, and bounds
//! on tables no cached view covers (unverifiable at guard time).
//! Complementary to `rcc-verify`, which proves *optimized plans* conform
//! to the clause: lint runs before any plan exists and costs one AST walk.
//!
//! **Layer 2 ([`source`]): workspace source analyzer.** Token-level checks
//! over the repository's own Rust source enforcing invariants the compiler
//! can't (raw-`Table` access discipline, lock-acquisition ordering,
//! metric-name registration).
//!
//! Diagnostics are coded (`L001`…) so corpora can assert exact expected
//! sets and sweeps stay deterministic.

pub mod source;

use rcc_catalog::{Catalog, TableMeta};
use rcc_common::Duration;
use rcc_sql::{CurrencyClause, CurrencySpec, Expr, SelectStmt, TableRef};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Diagnostic codes emitted by the Layer-1 lint pass.
pub mod codes {
    /// Contradictory / subsumed bounds within one clause.
    pub const SUBSUMED_BOUND: &str = "L001";
    /// Dead spec: a table name resolving to no FROM binding in scope.
    pub const DEAD_SPEC: &str = "L002";
    /// `BY` columns naming or covering no key / index of the grouped table.
    pub const BY_NOT_KEY: &str = "L003";
    /// Cross-block class conflict: same operand, incompatible bounds.
    pub const CROSS_BLOCK_CONFLICT: &str = "L004";
    /// Clause trivially satisfied by the session default (bound 0).
    pub const REDUNDANT_CLAUSE: &str = "L005";
    /// Positive bound on a base table no cached view covers: nothing
    /// tracks its staleness, so the bound is unverifiable at guard time.
    pub const UNVERIFIABLE_BOUND: &str = "L006";
    /// Statically-dead currency guard: every cached view that could serve
    /// this bound has the same compile-time verdict under healthy
    /// replication (the `rcc-flow` envelope analysis), so the runtime
    /// branch is already decided — the guard always passes (redundant
    /// check) or never passes (unreachable relaxed arm).
    pub const DEAD_GUARD: &str = "L007";
}

/// One lint finding: a stable code, the offending spec rendered as SQL,
/// an explanation, and the spec's source span (0/0 when synthesized).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`L001`…).
    pub code: &'static str,
    /// The offending currency spec, rendered.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// 1-based source line of the spec (0 = unknown).
    pub line: u32,
    /// 1-based source column of the spec (0 = unknown).
    pub col: u32,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} [{}:{}] {}: {}",
                self.code, self.line, self.col, self.subject, self.message
            )
        } else {
            write!(f, "{} {}: {}", self.code, self.subject, self.message)
        }
    }
}

/// Render a spec the way it was written (`10min ON (b, r) BY b.isbn`).
fn spec_sql(spec: &CurrencySpec) -> String {
    let mut s = format!("{} ON ({})", spec.bound, spec.tables.join(", "));
    if !spec.by.is_empty() {
        let cols: Vec<String> = spec
            .by
            .iter()
            .map(|(q, c)| match q {
                Some(q) => format!("{q}.{c}"),
                None => c.clone(),
            })
            .collect();
        s.push_str(&format!(" BY {}", cols.join(", ")));
    }
    s
}

/// What one FROM-visible name binds to: a base-table operand (fresh id per
/// mention, as in the optimizer's binder) or a derived table covering the
/// operands of its defining block.
#[derive(Clone)]
struct Binding {
    ops: BTreeSet<u32>,
    /// Base-table metadata when the binding is a named base table.
    meta: Option<Arc<TableMeta>>,
}

/// One resolved currency spec with provenance, for cross-block analysis.
struct SpecInfo {
    block: usize,
    bound: Duration,
    ops: BTreeSet<u32>,
    subject: String,
    line: u32,
    col: u32,
}

struct Linter<'a> {
    catalog: &'a Catalog,
    scopes: Vec<Vec<(String, Binding)>>,
    next_op: u32,
    next_block: usize,
    specs: Vec<SpecInfo>,
    diags: Vec<Diagnostic>,
}

/// Lint a SELECT statement against `catalog`. Returns every diagnostic in
/// deterministic order (outer blocks before inner, clause order within a
/// block, cross-block conflicts last).
pub fn lint_select(catalog: &Catalog, stmt: &SelectStmt) -> Vec<Diagnostic> {
    let mut l = Linter {
        catalog,
        scopes: Vec::new(),
        next_op: 0,
        next_block: 0,
        specs: Vec::new(),
        diags: Vec::new(),
    };
    l.block(stmt);
    l.cross_block();
    l.diags
}

impl Linter<'_> {
    fn block(&mut self, stmt: &SelectStmt) {
        let block_id = self.next_block;
        self.next_block += 1;
        self.scopes.push(Vec::new());
        for item in &stmt.from {
            self.bind_table_ref(item);
        }
        if let Some(clause) = &stmt.currency {
            self.lint_clause(block_id, clause);
        }
        // Subquery blocks in WHERE/HAVING see this block's bindings (the
        // clause scopes like WHERE, so inner clauses may name outer tables).
        for e in stmt.filter.iter().chain(stmt.having.iter()) {
            self.subqueries_in(e);
        }
        self.scopes.pop();
    }

    fn bind_table_ref(&mut self, item: &TableRef) {
        match item {
            TableRef::Named { name, alias } => {
                let id = self.next_op;
                self.next_op += 1;
                let meta = self.catalog.table(name).ok();
                let binding = Binding {
                    ops: [id].into_iter().collect(),
                    meta,
                };
                let visible = alias.clone().unwrap_or_else(|| name.clone());
                self.declare(visible, binding);
            }
            TableRef::Subquery { query, alias } => {
                let before = self.next_op;
                self.block(query);
                let ops: BTreeSet<u32> = (before..self.next_op).collect();
                self.declare(alias.clone(), Binding { ops, meta: None });
            }
            TableRef::Join { left, right, .. } => {
                self.bind_table_ref(left);
                self.bind_table_ref(right);
            }
        }
    }

    fn declare(&mut self, name: String, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("block pushed a scope")
            .push((name.to_ascii_lowercase(), binding));
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        let lname = name.to_ascii_lowercase();
        self.scopes
            .iter()
            .rev()
            .flat_map(|frame| frame.iter())
            .find(|(n, _)| *n == lname)
            .map(|(_, b)| b)
    }

    fn subqueries_in(&mut self, e: &Expr) {
        // Expr::visit does not descend into subquery blocks, so recurse
        // manually where they appear.
        match e {
            Expr::Exists { subquery, .. } => self.block(subquery),
            Expr::InSubquery { expr, subquery, .. } => {
                self.subqueries_in(expr);
                self.block(subquery);
            }
            Expr::Binary { left, right, .. } => {
                self.subqueries_in(left);
                self.subqueries_in(right);
            }
            Expr::Unary { expr, .. } => self.subqueries_in(expr),
            Expr::Function { args, .. } => {
                for a in args {
                    self.subqueries_in(a);
                }
            }
            Expr::InList { expr, list, .. } => {
                self.subqueries_in(expr);
                for a in list {
                    self.subqueries_in(a);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.subqueries_in(expr);
                self.subqueries_in(low);
                self.subqueries_in(high);
            }
            Expr::IsNull { expr, .. } => self.subqueries_in(expr),
            Expr::Column { .. } | Expr::Literal(_) | Expr::Parameter(_) => {}
        }
    }

    fn lint_clause(&mut self, block_id: usize, clause: &CurrencyClause) {
        let mut resolved: Vec<(BTreeSet<u32>, &CurrencySpec)> = Vec::new();
        for spec in &clause.specs {
            let subject = spec_sql(spec);
            let mut ops = BTreeSet::new();
            for t in &spec.tables {
                match self.lookup(t).map(|b| (b.ops.clone(), b.meta.clone())) {
                    Some((bops, meta)) => {
                        ops.extend(bops);
                        // L006: a positive bound admits a stale cached
                        // read, but only the heartbeat of a cached view's
                        // currency region tracks staleness. A base table
                        // no view covers has nothing to verify the bound
                        // against — the guard can never accept it.
                        if let Some(meta) = meta {
                            if !spec.bound.is_zero() {
                                let views = self.catalog.views_over(meta.id);
                                if views.is_empty() {
                                    self.diags.push(Diagnostic {
                                        code: codes::UNVERIFIABLE_BOUND,
                                        subject: subject.clone(),
                                        message: format!(
                                            "no cached view covers table '{}'; no currency \
                                             region tracks its staleness, so the bound is \
                                             unverifiable at guard time",
                                            meta.name
                                        ),
                                        line: spec.line,
                                        col: spec.col,
                                    });
                                } else {
                                    self.lint_dead_guard(&views, &meta, spec, &subject);
                                }
                            }
                        }
                    }
                    None => self.diags.push(Diagnostic {
                        code: codes::DEAD_SPEC,
                        subject: subject.clone(),
                        message: format!(
                            "table '{t}' is not in this block's or any enclosing FROM; \
                             the spec can never constrain an input"
                        ),
                        line: spec.line,
                        col: spec.col,
                    }),
                }
            }
            if spec.bound.is_zero() {
                self.diags.push(Diagnostic {
                    code: codes::REDUNDANT_CLAUSE,
                    subject: subject.clone(),
                    message: "bound 0 restates the session default (all inputs \
                              transactionally current); the spec is redundant"
                        .into(),
                    line: spec.line,
                    col: spec.col,
                });
            }
            self.lint_by(spec, &subject);
            resolved.push((ops.clone(), spec));
            self.specs.push(SpecInfo {
                block: block_id,
                bound: spec.bound,
                ops,
                subject,
                line: spec.line,
                col: spec.col,
            });
        }
        // L001: overlapping specs within one clause merge to the tighter
        // bound, so the looser bound can never take effect.
        for i in 0..resolved.len() {
            for j in (i + 1)..resolved.len() {
                let (ops_i, spec_i) = &resolved[i];
                let (ops_j, spec_j) = &resolved[j];
                if ops_i.is_empty() || ops_i.is_disjoint(ops_j) {
                    continue;
                }
                if spec_i.bound == spec_j.bound {
                    if ops_i == ops_j {
                        self.diags.push(Diagnostic {
                            code: codes::SUBSUMED_BOUND,
                            subject: spec_sql(spec_j),
                            message: format!(
                                "duplicates spec {} earlier in the clause",
                                spec_sql(spec_i)
                            ),
                            line: spec_j.line,
                            col: spec_j.col,
                        });
                    }
                    continue;
                }
                let (loose, tight) = if spec_i.bound > spec_j.bound {
                    (spec_i, spec_j)
                } else {
                    (spec_j, spec_i)
                };
                self.diags.push(Diagnostic {
                    code: codes::SUBSUMED_BOUND,
                    subject: spec_sql(loose),
                    message: format!(
                        "overlaps spec {} in the same clause; merged classes take \
                         the tighter bound, so {} never applies",
                        spec_sql(tight),
                        loose.bound
                    ),
                    line: loose.line,
                    col: loose.col,
                });
            }
        }
    }

    /// L003: each `BY` column must name a key or indexed column of its
    /// grouped table, and per grouped table the attributed columns must
    /// cover the full key or a full index (otherwise grouping on them does
    /// not identify consistency groups).
    fn lint_by(&mut self, spec: &CurrencySpec, subject: &str) {
        if spec.by.is_empty() {
            return;
        }
        let grouped: Vec<(String, Option<Arc<TableMeta>>)> = spec
            .tables
            .iter()
            .map(|t| (t.clone(), self.lookup(t).and_then(|b| b.meta.clone())))
            .collect();
        for (q, c) in &spec.by {
            let shown = match q {
                Some(q) => format!("{q}.{c}"),
                None => c.clone(),
            };
            let targets: Vec<&Arc<TableMeta>> = match q {
                Some(q) => {
                    if !spec.tables.iter().any(|t| t.eq_ignore_ascii_case(q)) {
                        self.diags.push(Diagnostic {
                            code: codes::BY_NOT_KEY,
                            subject: subject.to_string(),
                            message: format!(
                                "BY column {shown} qualifies a table outside the \
                                 spec's ON list"
                            ),
                            line: spec.line,
                            col: spec.col,
                        });
                        continue;
                    }
                    grouped
                        .iter()
                        .filter(|(t, _)| t.eq_ignore_ascii_case(q))
                        .filter_map(|(_, m)| m.as_ref())
                        .collect()
                }
                None => grouped.iter().filter_map(|(_, m)| m.as_ref()).collect(),
            };
            if targets.is_empty() {
                continue; // derived table or unknown object: nothing to check
            }
            let key_like = targets.iter().any(|m| {
                m.key.iter().any(|k| k.eq_ignore_ascii_case(c))
                    || m.indexes
                        .iter()
                        .any(|ix| ix.columns.iter().any(|ic| ic.eq_ignore_ascii_case(c)))
            });
            if !key_like {
                self.diags.push(Diagnostic {
                    code: codes::BY_NOT_KEY,
                    subject: subject.to_string(),
                    message: format!(
                        "BY column {shown} is not part of any key or index of the \
                         grouped tables; it cannot identify consistency groups"
                    ),
                    line: spec.line,
                    col: spec.col,
                });
            }
        }
        // Coverage: per grouped base table with attributed BY columns, the
        // columns must contain the whole key or a whole index.
        for (t, meta) in &grouped {
            let Some(meta) = meta else { continue };
            let attributed: BTreeSet<String> = spec
                .by
                .iter()
                .filter(|(q, _)| match q {
                    Some(q) => q.eq_ignore_ascii_case(t),
                    None => true,
                })
                .map(|(_, c)| c.to_ascii_lowercase())
                .collect();
            if attributed.is_empty() {
                continue; // grouped transitively through the join: allowed
            }
            let covers_key = meta
                .key
                .iter()
                .all(|k| attributed.contains(&k.to_ascii_lowercase()));
            let covers_index = meta.indexes.iter().any(|ix| {
                ix.columns
                    .iter()
                    .all(|c| attributed.contains(&c.to_ascii_lowercase()))
            });
            if !covers_key && !covers_index {
                self.diags.push(Diagnostic {
                    code: codes::BY_NOT_KEY,
                    subject: subject.to_string(),
                    message: format!(
                        "BY columns attributed to '{t}' cover neither its key \
                         ({}) nor any full index",
                        meta.key.join(", ")
                    ),
                    line: spec.line,
                    col: spec.col,
                });
            }
        }
    }

    /// L007: a bound every candidate cached view decides identically at
    /// compile time. The verdict comes from `rcc-flow`'s healthy-replication
    /// envelope: a bound above every view's envelope always passes (the
    /// runtime guard is redundant), one below every view's replication
    /// delay never passes (the relaxed arm is unreachable). A single
    /// contingent or disagreeing view keeps the guard honest — the lint
    /// stays silent because the optimizer may pick any covering view.
    fn lint_dead_guard(
        &mut self,
        views: &[Arc<rcc_catalog::CachedViewDef>],
        meta: &TableMeta,
        spec: &CurrencySpec,
        subject: &str,
    ) {
        use rcc_flow::GuardVerdict;
        let mut verdicts = Vec::with_capacity(views.len());
        for v in views {
            // An unresolvable region means the catalog is mid-DDL; stay
            // silent rather than lint against half a topology.
            let Ok(region) = self.catalog.region(v.region) else {
                return;
            };
            verdicts.push(rcc_flow::region_verdict(&region, spec.bound));
        }
        let all_always = verdicts
            .iter()
            .all(|v| matches!(v, GuardVerdict::AlwaysPass { .. }));
        let all_never = verdicts
            .iter()
            .all(|v| matches!(v, GuardVerdict::NeverPass));
        let message = if all_always {
            format!(
                "bound {} exceeds the healthy-replication envelope of every \
                 cached view over '{}'; the guard is always satisfied and the \
                 runtime check is redundant",
                spec.bound, meta.name
            )
        } else if all_never {
            format!(
                "bound {} is below the replication delay of every cached view \
                 over '{}'; the guard can never pass, so the relaxed arm is \
                 unreachable and every read goes to the back-end",
                spec.bound, meta.name
            )
        } else {
            return;
        };
        self.diags.push(Diagnostic {
            code: codes::DEAD_GUARD,
            subject: subject.to_string(),
            message,
            line: spec.line,
            col: spec.col,
        });
    }

    /// L004: specs from different blocks whose operand sets overlap with
    /// different bounds — normalization merges them to the tighter bound,
    /// so the looser block's bound silently never applies.
    fn cross_block(&mut self) {
        for i in 0..self.specs.len() {
            for j in (i + 1)..self.specs.len() {
                let (a, b) = (&self.specs[i], &self.specs[j]);
                if a.block == b.block
                    || a.bound == b.bound
                    || a.ops.is_empty()
                    || a.ops.is_disjoint(&b.ops)
                {
                    continue;
                }
                let (loose, tight) = if a.bound > b.bound { (a, b) } else { (b, a) };
                self.diags.push(Diagnostic {
                    code: codes::CROSS_BLOCK_CONFLICT,
                    subject: loose.subject.clone(),
                    message: format!(
                        "conflicts with {} in another block over a shared table; \
                         multi-block merging takes the tighter bound, so {} never \
                         applies",
                        tight.subject, loose.bound
                    ),
                    line: loose.line,
                    col: loose.col,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{DataType, Schema};

    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::new(vec![
            rcc_common::Column::new("c_custkey", DataType::Int),
            rcc_common::Column::new("c_name", DataType::Str),
            rcc_common::Column::new("c_nationkey", DataType::Int),
        ]);
        let mut meta = TableMeta::new(
            catalog.next_table_id(),
            "customer",
            schema,
            vec!["c_custkey".into()],
        )
        .unwrap();
        meta.add_index(
            rcc_common::IndexId(1),
            "ix_cust_nation",
            vec!["c_nationkey".into()],
        )
        .unwrap();
        catalog.register_table(meta).unwrap();

        let schema = Schema::new(vec![
            rcc_common::Column::new("o_orderkey", DataType::Int),
            rcc_common::Column::new("o_line", DataType::Int),
            rcc_common::Column::new("o_custkey", DataType::Int),
        ]);
        let meta = TableMeta::new(
            catalog.next_table_id(),
            "orders",
            schema,
            vec!["o_orderkey".into(), "o_line".into()],
        )
        .unwrap();
        catalog.register_table(meta).unwrap();

        // `nation` is deliberately left uncovered by any cached view —
        // the L006 target. The other tables get one projection view each
        // so positive bounds on them are verifiable.
        let schema = Schema::new(vec![
            rcc_common::Column::new("n_nationkey", DataType::Int),
            rcc_common::Column::new("n_name", DataType::Str),
        ]);
        let meta = TableMeta::new(
            catalog.next_table_id(),
            "nation",
            schema,
            vec!["n_nationkey".into()],
        )
        .unwrap();
        catalog.register_table(meta).unwrap();

        catalog
            .register_region(rcc_catalog::CurrencyRegion::new(
                rcc_common::RegionId(1),
                "CR1",
                Duration::from_secs(15),
                Duration::from_secs(5),
            ))
            .unwrap();
        for (view, table) in [("cust_v", "customer"), ("orders_v", "orders")] {
            let base = catalog.table(table).unwrap();
            let key_ordinals = base
                .key
                .iter()
                .map(|k| base.schema.resolve(None, k).unwrap())
                .collect();
            catalog
                .register_view(rcc_catalog::CachedViewDef {
                    id: catalog.next_view_id(),
                    name: view.into(),
                    region: rcc_common::RegionId(1),
                    base_table: base.id,
                    base_table_name: base.name.clone(),
                    columns: base
                        .schema
                        .columns()
                        .iter()
                        .map(|c| c.name.clone())
                        .collect(),
                    predicate: None,
                    schema: base.schema.clone(),
                    key_ordinals,
                    local_indexes: Vec::new(),
                })
                .unwrap();
        }
        catalog
    }

    fn lint(sql: &str) -> Vec<Diagnostic> {
        let stmt = rcc_sql::parse_statement(sql).unwrap();
        let select = match stmt {
            rcc_sql::Statement::Select(s) | rcc_sql::Statement::Lint(s) => s,
            other => panic!("expected a query, got {other:?}"),
        };
        lint_select(&catalog(), &select)
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    // Bounds on view-covered tables deliberately sit inside CR1's
    // contingent window (delay 5 s ≤ B ≤ envelope 22 s) so the guard is
    // genuinely runtime-dependent and L007 stays out of the expected sets.

    #[test]
    fn clean_query_has_no_diagnostics() {
        let d = lint(
            "SELECT c_name FROM customer c WHERE c.c_custkey = 1 \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_custkey",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l001_subsumed_bound_in_one_clause() {
        let d = lint(
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c), 5 SEC ON (c)",
        );
        assert_eq!(codes_of(&d), vec![codes::SUBSUMED_BOUND]);
        assert!(d[0].subject.contains("15s"), "{d:?}");
        assert!(d[0].line >= 1 && d[0].col > 1, "span missing: {d:?}");
    }

    #[test]
    fn l001_duplicate_spec() {
        let d = lint(
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c), 15 SEC ON (c)",
        );
        assert_eq!(codes_of(&d), vec![codes::SUBSUMED_BOUND]);
    }

    #[test]
    fn l002_dead_spec() {
        let d = lint("SELECT c_name FROM customer c CURRENCY BOUND 10 MIN ON (orders)");
        assert_eq!(codes_of(&d), vec![codes::DEAD_SPEC]);
    }

    #[test]
    fn l003_by_not_key() {
        let d = lint(
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_name",
        );
        // Per-column check and coverage check both fire.
        assert_eq!(
            codes_of(&d),
            vec![codes::BY_NOT_KEY, codes::BY_NOT_KEY],
            "{d:?}"
        );
    }

    #[test]
    fn l003_secondary_index_column_accepted() {
        let d = lint(
            "SELECT c_name FROM customer c \
             CURRENCY BOUND 15 SEC ON (c) BY c.c_nationkey",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l003_partial_composite_key_coverage() {
        let clean = lint(
            "SELECT o_line FROM orders o \
             CURRENCY BOUND 15 SEC ON (o) BY o.o_orderkey, o.o_line",
        );
        assert!(clean.is_empty(), "{clean:?}");
        // Mutation: drop one BY column of the composite key — flips failing.
        let d = lint(
            "SELECT o_line FROM orders o \
             CURRENCY BOUND 15 SEC ON (o) BY o.o_orderkey",
        );
        assert_eq!(codes_of(&d), vec![codes::BY_NOT_KEY]);
    }

    #[test]
    fn l004_cross_block_conflict() {
        let clean = lint(
            "SELECT c_name FROM customer c WHERE EXISTS \
             (SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey \
              CURRENCY BOUND 15 SEC ON (o, c)) \
             CURRENCY BOUND 15 SEC ON (c)",
        );
        assert!(clean.is_empty(), "{clean:?}");
        // Mutation: swap the outer bound — the looser inner spec is flagged.
        let d = lint(
            "SELECT c_name FROM customer c WHERE EXISTS \
             (SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey \
              CURRENCY BOUND 15 SEC ON (o, c)) \
             CURRENCY BOUND 5 SEC ON (c)",
        );
        assert_eq!(codes_of(&d), vec![codes::CROSS_BLOCK_CONFLICT], "{d:?}");
        assert!(d[0].subject.contains("15s"));
    }

    #[test]
    fn l005_redundant_zero_bound() {
        let d = lint("SELECT c_name FROM customer c CURRENCY BOUND 0 SEC ON (c)");
        assert_eq!(codes_of(&d), vec![codes::REDUNDANT_CLAUSE]);
    }

    #[test]
    fn l006_unverifiable_bound_on_uncovered_table() {
        // Mutation: point the bound at a table no cached view covers —
        // flips the clean covered-table query to failing.
        let covered = lint("SELECT c_name FROM customer c CURRENCY BOUND 15 SEC ON (c)");
        assert!(covered.is_empty(), "{covered:?}");
        let d = lint("SELECT n_name FROM nation n CURRENCY BOUND 10 MIN ON (n)");
        assert_eq!(codes_of(&d), vec![codes::UNVERIFIABLE_BOUND]);
        assert!(d[0]
            .message
            .contains("no cached view covers table 'nation'"));
    }

    #[test]
    fn l006_only_the_uncovered_operand_is_flagged() {
        let d = lint(
            "SELECT c_name, n_name FROM customer c, nation n \
             WHERE c.c_nationkey = n.n_nationkey \
             CURRENCY BOUND 15 SEC ON (c, n)",
        );
        assert_eq!(codes_of(&d), vec![codes::UNVERIFIABLE_BOUND], "{d:?}");
    }

    #[test]
    fn l006_not_raised_for_zero_bound() {
        // Bound 0 never reads the cache, so there is nothing to verify;
        // it is L005's redundancy, not an unverifiable bound.
        let d = lint("SELECT n_name FROM nation n CURRENCY BOUND 0 SEC ON (n)");
        assert_eq!(codes_of(&d), vec![codes::REDUNDANT_CLAUSE], "{d:?}");
    }

    #[test]
    fn l007_always_satisfied_bound_is_dead() {
        // CR1 envelope H = delay 5 s + interval 15 s + heartbeat 2 s = 22 s.
        // 30 s > H: under healthy replication the guard cannot fail.
        let d = lint("SELECT c_name FROM customer c CURRENCY BOUND 30 SEC ON (c)");
        assert_eq!(codes_of(&d), vec![codes::DEAD_GUARD], "{d:?}");
        assert!(d[0].message.contains("always satisfied"), "{d:?}");
    }

    #[test]
    fn l007_unsatisfiable_bound_is_dead() {
        // 2 s < delay 5 s: no replica can ever be that fresh.
        let d = lint("SELECT c_name FROM customer c CURRENCY BOUND 2 SEC ON (c)");
        assert_eq!(codes_of(&d), vec![codes::DEAD_GUARD], "{d:?}");
        assert!(d[0].message.contains("unreachable"), "{d:?}");
    }

    #[test]
    fn l007_envelope_boundary_is_contingent() {
        // B == H (22 s) and B == d (5 s) stay contingent — conservative in
        // both directions, so neither boundary is flagged.
        let at_h = lint("SELECT c_name FROM customer c CURRENCY BOUND 22 SEC ON (c)");
        assert!(at_h.is_empty(), "{at_h:?}");
        let at_d = lint("SELECT c_name FROM customer c CURRENCY BOUND 5 SEC ON (c)");
        assert!(at_d.is_empty(), "{at_d:?}");
        // Mutation: one second past the envelope flips to dead.
        let past = lint("SELECT c_name FROM customer c CURRENCY BOUND 23 SEC ON (c)");
        assert_eq!(codes_of(&past), vec![codes::DEAD_GUARD]);
    }

    #[test]
    fn l007_requires_all_candidate_views_to_agree() {
        // A second, faster region (H = 5 + 10 + 2 = 17 s) covering orders:
        // a 20 s bound is always-pass there but contingent on CR1, so the
        // verdict depends on which view the optimizer picks — no lint.
        let catalog = catalog();
        catalog
            .register_region(rcc_catalog::CurrencyRegion::new(
                rcc_common::RegionId(2),
                "CR2",
                Duration::from_secs(10),
                Duration::from_secs(5),
            ))
            .unwrap();
        let base = catalog.table("orders").unwrap();
        let key_ordinals = base
            .key
            .iter()
            .map(|k| base.schema.resolve(None, k).unwrap())
            .collect();
        catalog
            .register_view(rcc_catalog::CachedViewDef {
                id: catalog.next_view_id(),
                name: "orders_fast".into(),
                region: rcc_common::RegionId(2),
                base_table: base.id,
                base_table_name: base.name.clone(),
                columns: base
                    .schema
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
                predicate: None,
                schema: base.schema.clone(),
                key_ordinals,
                local_indexes: Vec::new(),
            })
            .unwrap();
        let stmt =
            rcc_sql::parse_statement("SELECT o_line FROM orders o CURRENCY BOUND 20 SEC ON (o)")
                .unwrap();
        let select = match stmt {
            rcc_sql::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let mixed = lint_select(&catalog, &select);
        assert!(mixed.is_empty(), "mixed verdicts must not lint: {mixed:?}");
        // Mutation: past both envelopes every view agrees — flips to dead.
        let stmt =
            rcc_sql::parse_statement("SELECT o_line FROM orders o CURRENCY BOUND 30 SEC ON (o)")
                .unwrap();
        let select = match stmt {
            rcc_sql::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let agreed = lint_select(&catalog, &select);
        assert_eq!(codes_of(&agreed), vec![codes::DEAD_GUARD], "{agreed:?}");
    }

    #[test]
    fn derived_table_binding_covers_inner_operands() {
        let d = lint(
            "SELECT x FROM (SELECT c_custkey AS x FROM customer \
             CURRENCY BOUND 5 SEC ON (customer)) q \
             CURRENCY BOUND 10 MIN ON (q)",
        );
        // Outer 10min on q overlaps inner 5s on customer: cross-block.
        assert_eq!(codes_of(&d), vec![codes::CROSS_BLOCK_CONFLICT], "{d:?}");
    }

    #[test]
    fn diagnostics_are_deterministic() {
        let sql = "SELECT c_name FROM customer c, orders o \
                   CURRENCY BOUND 0 SEC ON (c), 10 MIN ON (missing) BY c.c_name";
        let a = lint(sql);
        let b = lint(sql);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_includes_span() {
        let d = lint("SELECT c_name FROM customer c CURRENCY BOUND 0 SEC ON (c)");
        let shown = d[0].to_string();
        assert!(shown.starts_with("L005 ["), "{shown}");
    }
}
