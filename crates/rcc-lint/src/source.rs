//! Layer 2: workspace source analyzer.
//!
//! Token-level checks over the repository's own Rust source (lexed by the
//! vendored `syn` stand-in) enforcing invariants the compiler can't:
//!
//! * **Raw-`Table` discipline** — outside `rcc-storage`, no lock-wrapped
//!   `Table` (`Mutex<Table>` / `RwLock<Table>`): readers must go through
//!   `TableCell::snapshot()`, the invariant the lock-free snapshot reads
//!   of PR 4 rest on. Scoped to library sources; `src/bin/` measurement
//!   rigs (e.g. the deliberate locked-table baseline in `scan_parallel`)
//!   are out of scope by construction, not allowlisted.
//! * **Lock-acquisition order** — a directed graph over `Mutex`/`RwLock`
//!   *fields*, with an edge A→B whenever B is acquired while a guard on A
//!   is held (let-bound guards live to the end of their block or an
//!   explicit `drop`). Any cycle is reported with one witness per edge.
//!   Lock identity is `(crate, field name)`: coarse, but deterministic and
//!   conservative in the safe direction for this codebase.
//! * **Metric-name discipline** — every `rcc_*` string literal in the
//!   workspace must be registered exactly once in `rcc-obs`'s
//!   `names::METRICS` table, and every registered name must be used.
//! * **File-I/O confinement** — no direct `std::fs` / `fs::` tokens in
//!   library sources outside `rcc-storage` and `rcc-bench`: durability
//!   (WAL, checkpoints, recovery) must flow through the storage layer, so
//!   no other crate may write files the recovery protocol doesn't know
//!   about.
//! * **Wire-tag discipline** — every `const TAG_*: u8` frame-tag
//!   declaration in `rcc-net` must be registered exactly once (same
//!   byte) in its `tags::FRAME_TAGS`, every registered tag must be
//!   declared and used, and no byte is ever reused: the frozen wire format
//!   is what keeps old and new peers interoperable.
//! * **Diagnostic-code discipline** — every `L0xx` lint-code string
//!   literal in the workspace must be declared exactly once in
//!   `rcc-lint`'s `codes` module, and every declared code must be used
//!   (by const reference or literal): corpora assert exact expected code
//!   sets, so a code that drifts or leaks outside the closed registry
//!   silently rots those assertions.
//!
//! Test modules are excluded by truncating each file at its first
//! `#[cfg(test)]` marker (the repo convention keeps unit tests at the
//! bottom of the file).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use syn::{Tok, TokKind};

/// How a source file participates in the checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**` outside `src/bin/`).
    Lib,
    /// Binary source (`src/bin/**`): exempt from the raw-`Table` check.
    Bin,
}

/// One lexed source file ready for analysis.
pub struct SourceFile {
    /// Owning crate (`rcc-mtcache`, ...).
    pub crate_name: String,
    /// Path shown in findings.
    pub path: String,
    /// Library or binary source.
    pub kind: FileKind,
    /// Tokens, truncated at the first `#[cfg(test)]`.
    pub toks: Vec<Tok>,
}

/// A Layer-2 finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which check fired (`raw-table`, `lock-order`, `metric-names`,
    /// `fs-io`, `frame-tags`, `lint-codes`).
    pub check: &'static str,
    /// Offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.check, self.path, self.line, self.message
        )
    }
}

/// Lex `src` and truncate at the first `#[cfg(test)]` attribute.
pub fn prepare(crate_name: &str, path: &str, kind: FileKind, src: &str) -> SourceFile {
    let mut toks = syn::lex_file(src);
    if let Some(cut) = find_cfg_test(&toks) {
        toks.truncate(cut);
    }
    SourceFile {
        crate_name: crate_name.to_string(),
        path: path.to_string(),
        kind,
        toks,
    }
}

fn find_cfg_test(toks: &[Tok]) -> Option<usize> {
    (0..toks.len().saturating_sub(6)).find(|&i| {
        toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']')
    })
}

// ------------------------------------------------------------- raw Table

/// Flag lock-wrapped raw `Table` types outside `rcc-storage` lib sources.
pub fn check_raw_table(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name == "rcc-storage" || f.kind != FileKind::Lib {
            continue;
        }
        let t = &f.toks;
        for i in 0..t.len() {
            let lock = match &t[i].kind {
                TokKind::Ident(s) if s == "Mutex" || s == "RwLock" => s.clone(),
                _ => continue,
            };
            if i + 1 >= t.len() || !t[i + 1].is_punct('<') {
                continue;
            }
            let mut depth = 0i32;
            for tok in &t[i + 1..] {
                match &tok.kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(s) if s == "Table" => {
                        out.push(Finding {
                            check: "raw-table",
                            path: f.path.clone(),
                            line: t[i].line,
                            message: format!(
                                "{lock}<Table> outside rcc-storage: readers must go \
                                 through TableCell::snapshot()"
                            ),
                        });
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

// ------------------------------------------------------------ lock order

/// Collect `(crate, field)` lock identities: struct fields (and typed
/// bindings) of the shape `name: [Arc<]Mutex/RwLock<...>`.
fn collect_lock_fields(files: &[SourceFile]) -> BTreeSet<(String, String)> {
    let mut fields = BTreeSet::new();
    for f in files {
        let t = &f.toks;
        for i in 0..t.len().saturating_sub(2) {
            let TokKind::Ident(name) = &t[i].kind else {
                continue;
            };
            if !t[i + 1].is_punct(':') || (i + 2 < t.len() && t[i + 2].is_punct(':')) {
                continue; // `::` path, not a field
            }
            // Scan the type until a top-level `,`, `;`, `}` or `)`.
            let mut angle = 0i32;
            for tok in &t[i + 2..] {
                match &tok.kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct(',')
                    | TokKind::Punct(';')
                    | TokKind::Punct('}')
                    | TokKind::Punct(')')
                        if angle <= 0 =>
                    {
                        break;
                    }
                    TokKind::Punct('{') | TokKind::Punct('=') => break,
                    TokKind::Ident(s) if s == "Mutex" || s == "RwLock" => {
                        fields.insert((f.crate_name.clone(), name.clone()));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Build the acquisition-order graph and report every cycle.
pub fn check_lock_order(files: &[SourceFile]) -> Vec<Finding> {
    let fields = collect_lock_fields(files);
    // edge (from, to) -> first witness
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    struct Guard {
        var: String,
        lock: String,
        depth: i32,
    }
    for f in files {
        let t = &f.toks;
        let mut held: Vec<Guard> = Vec::new();
        let mut depth = 0i32;
        let mut pending_let: Option<String> = None;
        let mut i = 0;
        while i < t.len() {
            match &t[i].kind {
                TokKind::Punct('{') => {
                    depth += 1;
                    pending_let = None;
                }
                TokKind::Punct('}') => {
                    depth -= 1;
                    held.retain(|g| g.depth <= depth);
                    pending_let = None;
                }
                TokKind::Punct(';') => pending_let = None,
                TokKind::Ident(s) if s == "let" => {
                    let mut j = i + 1;
                    if j < t.len() && t[j].is_ident("mut") {
                        j += 1;
                    }
                    pending_let = match t.get(j).map(|tok| &tok.kind) {
                        Some(TokKind::Ident(name)) => Some(name.clone()),
                        _ => None,
                    };
                }
                TokKind::Ident(s)
                    if s == "drop"
                        && i + 3 < t.len()
                        && t[i + 1].is_punct('(')
                        && t[i + 3].is_punct(')') =>
                {
                    if let TokKind::Ident(var) = &t[i + 2].kind {
                        if let Some(k) = held.iter().rposition(|g| g.var == *var) {
                            held.remove(k);
                        }
                    }
                }
                TokKind::Ident(method)
                    if (method == "lock" || method == "read" || method == "write")
                        && i >= 2
                        && t[i - 1].is_punct('.')
                        && i + 2 < t.len()
                        && t[i + 1].is_punct('(')
                        && t[i + 2].is_punct(')') =>
                {
                    if let TokKind::Ident(recv) = &t[i - 2].kind {
                        let key = (f.crate_name.clone(), recv.clone());
                        if fields.contains(&key) {
                            let lock = format!("{}::{}", key.0, key.1);
                            for g in &held {
                                if g.lock != lock {
                                    edges
                                        .entry((g.lock.clone(), lock.clone()))
                                        .or_insert_with(|| (f.path.clone(), t[i].line));
                                }
                            }
                            if let Some(var) = pending_let.take() {
                                held.push(Guard { var, lock, depth });
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    find_cycles(&edges)
}

/// DFS over the edge set; one finding per discovered cycle.
fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let mut out = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        if done.contains(start) {
            continue;
        }
        // color: 0 unvisited, 1 on stack, 2 finished
        let mut color: BTreeMap<&str, u8> = BTreeMap::new();
        let mut path: Vec<&str> = Vec::new();
        dfs(start, &adj, &mut color, &mut path, edges, &mut out);
        done.extend(color.keys().copied());
    }
    out
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    color: &mut BTreeMap<&'a str, u8>,
    path: &mut Vec<&'a str>,
    edges: &BTreeMap<(String, String), (String, u32)>,
    out: &mut Vec<Finding>,
) {
    color.insert(node, 1);
    path.push(node);
    for &next in adj.get(node).into_iter().flatten() {
        match color.get(next).copied().unwrap_or(0) {
            0 => dfs(next, adj, color, path, edges, out),
            1 => {
                // cycle: path from `next` to `node`, closed by node->next
                let from = path.iter().position(|&n| n == next).unwrap_or(0);
                let cycle: Vec<&str> = path[from..].to_vec();
                let mut witnesses = Vec::new();
                for k in 0..cycle.len() {
                    let a = cycle[k];
                    let b = cycle[(k + 1) % cycle.len()];
                    if let Some((p, l)) = edges.get(&(a.to_string(), b.to_string())) {
                        witnesses.push(format!("{a} -> {b} at {p}:{l}"));
                    }
                }
                let (path0, line0) = edges
                    .get(&(node.to_string(), next.to_string()))
                    .cloned()
                    .unwrap_or_default();
                out.push(Finding {
                    check: "lock-order",
                    path: path0,
                    line: line0,
                    message: format!(
                        "lock acquisition cycle: {} ({})",
                        cycle.join(" -> "),
                        witnesses.join("; ")
                    ),
                });
            }
            _ => {}
        }
    }
    path.pop();
    color.insert(node, 2);
}

// --------------------------------------------------------------- file I/O

/// Crates whose library sources may touch the filesystem directly.
const FS_ALLOWED_CRATES: &[&str] = &["rcc-storage", "rcc-bench"];

/// Flag direct file-I/O tokens (`std::fs`, `fs::...`) outside the durable
/// storage layer.
///
/// Everything else must go through `rcc-storage`'s `DurableStore` (or stay
/// in memory) so that durability, recovery and the WAL-before-publish
/// protocol cannot be bypassed by ad-hoc file writes. Binary sources
/// (`src/bin/` measurement rigs and CLIs) are out of scope, like the
/// raw-`Table` check.
pub fn check_fs_io(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if FS_ALLOWED_CRATES.contains(&f.crate_name.as_str()) || f.kind != FileKind::Lib {
            continue;
        }
        let t = &f.toks;
        for i in 0..t.len() {
            // `std :: fs`
            if t[i].is_ident("std")
                && i + 3 < t.len()
                && t[i + 1].is_punct(':')
                && t[i + 2].is_punct(':')
                && t[i + 3].is_ident("fs")
            {
                out.push(Finding {
                    check: "fs-io",
                    path: f.path.clone(),
                    line: t[i].line,
                    message: format!(
                        "direct std::fs usage outside {}: file I/O must go \
                         through rcc-storage's durable layer",
                        FS_ALLOWED_CRATES.join("/")
                    ),
                });
                continue;
            }
            // bare `fs :: item` (e.g. after `use std::fs;`), not the tail
            // of `std :: fs` which the arm above already reported
            if t[i].is_ident("fs")
                && i + 2 < t.len()
                && t[i + 1].is_punct(':')
                && t[i + 2].is_punct(':')
                && !(i >= 3
                    && t[i - 3].is_ident("std")
                    && t[i - 2].is_punct(':')
                    && t[i - 1].is_punct(':'))
            {
                out.push(Finding {
                    check: "fs-io",
                    path: f.path.clone(),
                    line: t[i].line,
                    message: format!(
                        "direct fs:: usage outside {}: file I/O must go \
                         through rcc-storage's durable layer",
                        FS_ALLOWED_CRATES.join("/")
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------- metric names

/// Is `s` shaped like a metric name (`rcc_` plus `[a-z0-9_]+`)?
pub fn is_metric_name(s: &str) -> bool {
    s.len() > 4
        && s.starts_with("rcc_")
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Registry entries extracted from `rcc-obs`'s `names.rs` tokens, in order.
pub fn collect_registry(toks: &[Tok]) -> Vec<(String, u32)> {
    toks.iter()
        .filter_map(|t| match &t.kind {
            TokKind::Str(s) if is_metric_name(s) => Some((s.clone(), t.line)),
            _ => None,
        })
        .collect()
}

/// Enforce: every used `rcc_*` literal is registered; no duplicate or
/// unused registrations. `registry_path` is only used in messages.
pub fn check_metric_names(
    files: &[SourceFile],
    registry: &[(String, u32)],
    registry_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
    for (name, line) in registry {
        if let Some(first) = seen.insert(name, *line) {
            out.push(Finding {
                check: "metric-names",
                path: registry_path.to_string(),
                line: *line,
                message: format!("metric '{name}' registered twice (first at line {first})"),
            });
        }
    }
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        for t in &f.toks {
            let TokKind::Str(s) = &t.kind else { continue };
            if !is_metric_name(s) {
                continue;
            }
            if !seen.contains_key(s.as_str()) {
                out.push(Finding {
                    check: "metric-names",
                    path: f.path.clone(),
                    line: t.line,
                    message: format!("metric '{s}' is not registered in rcc-obs names::METRICS"),
                });
            }
            if let Some(hit) = seen.get_key_value(s.as_str()) {
                used.insert(hit.0);
            }
        }
    }
    for (name, line) in registry {
        if seen.get(name.as_str()) == Some(line) && !used.contains(name.as_str()) {
            out.push(Finding {
                check: "metric-names",
                path: registry_path.to_string(),
                line: *line,
                message: format!("metric '{name}' is registered but never used"),
            });
        }
    }
    out
}

// ------------------------------------------------------------ frame tags

/// Is `s` shaped like a wire-frame tag constant name (`TAG_` plus
/// `[A-Z0-9_]+`)?
pub fn is_tag_name(s: &str) -> bool {
    s.len() > 4
        && s.starts_with("TAG_")
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Parse a lexed numeric literal as a tag byte (`0x04`, `0x85`, `129`).
fn parse_tag_byte(num: &str) -> Option<u8> {
    let clean: String = num.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u8::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

/// Registry entries `(byte, name, line)` extracted from `rcc-net`'s
/// `tags.rs` tokens: each `(0xNN, "TAG_*")` pair in `FRAME_TAGS`.
pub fn collect_tag_registry(toks: &[Tok]) -> Vec<(u8, String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        let TokKind::Num(num) = &toks[i].kind else {
            continue;
        };
        if !toks[i + 1].is_punct(',') {
            continue;
        }
        let TokKind::Str(name) = &toks[i + 2].kind else {
            continue;
        };
        if !is_tag_name(name) {
            continue;
        }
        if let Some(byte) = parse_tag_byte(num) {
            out.push((byte, name.clone(), toks[i].line));
        }
    }
    out
}

/// `rcc-net` declarations `const TAG_*: u8 = <byte>;` as
/// `(name, byte, path, line)`. Scoped to the `rcc-net` crate: other
/// crates own other tag byte spaces (WAL record tags in `rcc-storage`,
/// value wire tags in `rcc-executor`) that legitimately reuse bytes.
fn collect_tag_decls(files: &[SourceFile]) -> Vec<(String, u8, String, u32)> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name != "rcc-net" {
            continue;
        }
        let t = &f.toks;
        for i in 0..t.len().saturating_sub(5) {
            if !t[i].is_ident("const") {
                continue;
            }
            let TokKind::Ident(name) = &t[i + 1].kind else {
                continue;
            };
            if !is_tag_name(name)
                || !t[i + 2].is_punct(':')
                || !t[i + 3].is_ident("u8")
                || !t[i + 4].is_punct('=')
            {
                continue;
            }
            let TokKind::Num(num) = &t[i + 5].kind else {
                continue;
            };
            if let Some(byte) = parse_tag_byte(num) {
                out.push((name.clone(), byte, f.path.clone(), t[i + 1].line));
            }
        }
    }
    out
}

/// Enforce the wire-tag registry invariant: every `const TAG_*: u8`
/// declaration in `rcc-net` is registered (under the same byte) in
/// `rcc-net`'s `tags::FRAME_TAGS`, exactly once; every registered tag is
/// declared and used; no byte or name appears twice in the registry.
/// `registry_path` is only used in messages.
pub fn check_frame_tags(
    files: &[SourceFile],
    registry: &[(u8, String, u32)],
    registry_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut by_name: BTreeMap<&str, (u8, u32)> = BTreeMap::new();
    let mut by_byte: BTreeMap<u8, u32> = BTreeMap::new();
    for (byte, name, line) in registry {
        if let Some((_, first)) = by_name.insert(name, (*byte, *line)) {
            out.push(Finding {
                check: "frame-tags",
                path: registry_path.to_string(),
                line: *line,
                message: format!("tag '{name}' registered twice (first at line {first})"),
            });
        }
        if let Some(first) = by_byte.insert(*byte, *line) {
            out.push(Finding {
                check: "frame-tags",
                path: registry_path.to_string(),
                line: *line,
                message: format!(
                    "tag byte 0x{byte:02x} registered twice (first at line {first}): \
                     wire bytes are never reused"
                ),
            });
        }
    }

    let decls = collect_tag_decls(files);
    let mut declared: BTreeMap<&str, (String, u32)> = BTreeMap::new();
    for (name, byte, path, line) in &decls {
        if let Some((first_path, first_line)) = declared.insert(name, (path.clone(), *line)) {
            out.push(Finding {
                check: "frame-tags",
                path: path.clone(),
                line: *line,
                message: format!(
                    "tag '{name}' declared twice (first at {first_path}:{first_line}): \
                     each tag byte has exactly one declaration"
                ),
            });
        }
        match by_name.get(name.as_str()) {
            None => out.push(Finding {
                check: "frame-tags",
                path: path.clone(),
                line: *line,
                message: format!("tag '{name}' is not registered in rcc-net tags::FRAME_TAGS"),
            }),
            Some((reg_byte, _)) if reg_byte != byte => out.push(Finding {
                check: "frame-tags",
                path: path.clone(),
                line: *line,
                message: format!(
                    "tag '{name}' declared as 0x{byte:02x} but registered as 0x{reg_byte:02x}"
                ),
            }),
            Some(_) => {}
        }
    }

    // A declaration must also be *used* — a tag no codec path reads or
    // writes is dead wire surface.
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        let t = &f.toks;
        for i in 0..t.len() {
            let TokKind::Ident(name) = &t[i].kind else {
                continue;
            };
            if !is_tag_name(name) || (i > 0 && t[i - 1].is_ident("const")) {
                continue;
            }
            if let Some(hit) = declared.get_key_value(name.as_str()) {
                used.insert(hit.0);
            }
        }
    }
    for (name, (byte, line)) in &by_name {
        match declared.get(name) {
            None => out.push(Finding {
                check: "frame-tags",
                path: registry_path.to_string(),
                line: *line,
                message: format!("tag '{name}' (0x{byte:02x}) is registered but never declared"),
            }),
            Some((path, decl_line)) if !used.contains(name) => out.push(Finding {
                check: "frame-tags",
                path: path.clone(),
                line: *decl_line,
                message: format!("tag '{name}' is declared but never used"),
            }),
            Some(_) => {}
        }
    }
    out
}

// ------------------------------------------------------------- lint codes

/// Is `s` shaped like a Layer-1 diagnostic code (`L` plus three digits)?
pub fn is_lint_code(s: &str) -> bool {
    s.len() == 4 && s.starts_with('L') && s[1..].chars().all(|c| c.is_ascii_digit())
}

/// Registry entries `(const_name, code, line)` extracted from `rcc-lint`'s
/// `codes` module tokens: each `const NAME: &str = "L0xx";` declaration.
pub fn collect_code_registry(toks: &[Tok]) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(6) {
        if !toks[i].is_ident("const") {
            continue;
        }
        let TokKind::Ident(name) = &toks[i + 1].kind else {
            continue;
        };
        if !toks[i + 2].is_punct(':')
            || !toks[i + 3].is_punct('&')
            || !toks[i + 4].is_ident("str")
            || !toks[i + 5].is_punct('=')
        {
            continue;
        }
        let TokKind::Str(code) = &toks[i + 6].kind else {
            continue;
        };
        if is_lint_code(code) {
            out.push((name.clone(), code.clone(), toks[i + 6].line));
        }
    }
    out
}

/// Enforce the diagnostic-code registry invariant: every `L0xx` string
/// literal in the workspace names a code declared in `rcc-lint`'s `codes`
/// module; no code or const is declared twice; and every declared code is
/// used somewhere — by const reference (`codes::DEAD_GUARD`) or by literal
/// (a corpus expected-set entry). `registry_path` identifies the file the
/// registry was extracted from, so its own declarations don't count as
/// usage sites.
pub fn check_lint_codes(
    files: &[SourceFile],
    registry: &[(String, String, u32)],
    registry_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut by_code: BTreeMap<&str, u32> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, u32> = BTreeMap::new();
    for (name, code, line) in registry {
        if let Some(first) = by_code.insert(code, *line) {
            out.push(Finding {
                check: "lint-codes",
                path: registry_path.to_string(),
                line: *line,
                message: format!("code '{code}' declared twice (first at line {first})"),
            });
        }
        if let Some(first) = by_name.insert(name, *line) {
            out.push(Finding {
                check: "lint-codes",
                path: registry_path.to_string(),
                line: *line,
                message: format!("const '{name}' declared twice (first at line {first})"),
            });
        }
    }
    let declared_at: BTreeSet<(&str, u32)> = registry
        .iter()
        .map(|(_, code, line)| (code.as_str(), *line))
        .collect();
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        for (i, t) in f.toks.iter().enumerate() {
            match &t.kind {
                TokKind::Str(s) if is_lint_code(s) => {
                    // the declaration itself is not a usage site
                    if f.path == registry_path && declared_at.contains(&(s.as_str(), t.line)) {
                        continue;
                    }
                    match by_code.get_key_value(s.as_str()) {
                        Some((code, _)) => {
                            used.insert(code);
                        }
                        None => out.push(Finding {
                            check: "lint-codes",
                            path: f.path.clone(),
                            line: t.line,
                            message: format!(
                                "code '{s}' is not declared in rcc-lint's codes module"
                            ),
                        }),
                    }
                }
                TokKind::Ident(name) if by_name.contains_key(name.as_str()) => {
                    // a const reference, not the declaration
                    if i > 0 && f.toks[i - 1].is_ident("const") {
                        continue;
                    }
                    if let Some((_, code, _)) = registry.iter().find(|(n, _, _)| n == name) {
                        if let Some(hit) = by_code.get_key_value(code.as_str()) {
                            used.insert(hit.0);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    for (name, code, line) in registry {
        if by_code.get(code.as_str()) == Some(line) && !used.contains(code.as_str()) {
            out.push(Finding {
                check: "lint-codes",
                path: registry_path.to_string(),
                line: *line,
                message: format!("code '{code}' ({name}) is declared but never used"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, kind: FileKind, src: &str) -> SourceFile {
        prepare(crate_name, &format!("{crate_name}/src/x.rs"), kind, src)
    }

    #[test]
    fn raw_table_flagged_outside_storage() {
        let f = file(
            "rcc-backend",
            FileKind::Lib,
            "struct Db { t: Arc<RwLock<Table>> }",
        );
        let findings = check_raw_table(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("RwLock<Table>"));
    }

    #[test]
    fn raw_table_allowed_in_storage_bins_and_other_types() {
        for f in [
            file(
                "rcc-storage",
                FileKind::Lib,
                "struct S { t: RwLock<Table> }",
            ),
            file("rcc-bench", FileKind::Bin, "struct S { t: RwLock<Table> }"),
            file(
                "rcc-mtcache",
                FileKind::Lib,
                "struct S { t: RwLock<TableSnapshot>, c: Mutex<TableCell> }",
            ),
            file(
                "rcc-mtcache",
                FileKind::Lib,
                "// RwLock<Table> in a comment\nconst X: &str = \"RwLock<Table>\";",
            ),
        ] {
            assert!(check_raw_table(&[f]).is_empty());
        }
    }

    #[test]
    fn raw_table_in_test_module_ignored() {
        let f = file(
            "rcc-executor",
            FileKind::Lib,
            "fn main() {}\n#[cfg(test)]\nmod tests { struct S { t: Mutex<Table> } }",
        );
        assert!(check_raw_table(&[f]).is_empty());
    }

    const ORDERED: &str = "
        struct S { a: Mutex<u32>, b: Mutex<u32> }
        impl S {
            fn f(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
            fn g(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
        }";

    const REORDERED: &str = "
        struct S { a: Mutex<u32>, b: Mutex<u32> }
        impl S {
            fn f(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
            fn g(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
        }";

    #[test]
    fn consistent_lock_order_is_clean() {
        let f = file("rcc-x", FileKind::Lib, ORDERED);
        assert!(check_lock_order(&[f]).is_empty());
    }

    #[test]
    fn reordered_acquisitions_flagged() {
        // Mutation: reorder two lock acquisitions — flips clean to failing.
        let f = file("rcc-x", FileKind::Lib, REORDERED);
        let findings = check_lock_order(&[f]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("cycle"), "{findings:?}");
    }

    #[test]
    fn block_scope_and_drop_release_guards() {
        // Guard released by `}` or drop(): no overlap, no edge, no cycle.
        let src = "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) { { let ga = self.a.lock(); } let gb = self.b.lock(); }
                fn g(&self) { let gb = self.b.lock(); drop(gb); let ga = self.a.lock(); }
            }";
        let f = file("rcc-x", FileKind::Lib, src);
        assert!(check_lock_order(&[f]).is_empty());
    }

    #[test]
    fn temporary_guards_do_not_hold() {
        let src = "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) { self.a.lock().push(1); self.b.lock().push(2); }
                fn g(&self) { self.b.lock().push(1); self.a.lock().push(2); }
            }";
        let f = file("rcc-x", FileKind::Lib, src);
        assert!(check_lock_order(&[f]).is_empty());
    }

    fn reg(names: &[&str]) -> Vec<(String, u32)> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), i as u32 + 1))
            .collect()
    }

    #[test]
    fn unregistered_metric_flagged() {
        // Mutation: add an unregistered metric — flips clean to failing.
        let f = file(
            "rcc-x",
            FileKind::Lib,
            "fn f(m: &M) { m.counter(\"rcc_known_total\", &[]); }",
        );
        let clean = check_metric_names(&[f], &reg(&["rcc_known_total"]), "names.rs");
        assert!(clean.is_empty(), "{clean:?}");
        let f = file(
            "rcc-x",
            FileKind::Lib,
            "fn f(m: &M) { m.counter(\"rcc_known_total\", &[]); m.counter(\"rcc_bogus_total\", &[]); }",
        );
        let findings = check_metric_names(&[f], &reg(&["rcc_known_total"]), "names.rs");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("rcc_bogus_total"));
    }

    #[test]
    fn duplicate_and_unused_registrations_flagged() {
        let f = file(
            "rcc-x",
            FileKind::Lib,
            "fn f(m: &M) { m.counter(\"rcc_a_total\", &[]); }",
        );
        let findings = check_metric_names(
            &[f],
            &reg(&["rcc_a_total", "rcc_a_total", "rcc_idle_total"]),
            "names.rs",
        );
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("registered twice")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("rcc_idle_total") && m.contains("never used")),
            "{msgs:?}"
        );
    }

    #[test]
    fn fs_io_flagged_outside_storage() {
        // Mutation: add a std::fs call outside rcc-storage/rcc-bench —
        // flips clean to failing.
        let clean = file(
            "rcc-backend",
            FileKind::Lib,
            "fn f(store: &DurableStore) { store.checkpoint().unwrap(); }",
        );
        assert!(check_fs_io(&[clean]).is_empty());
        let dirty = file(
            "rcc-backend",
            FileKind::Lib,
            "fn f() { std::fs::write(\"sneaky\", b\"x\").unwrap(); }",
        );
        let findings = check_fs_io(&[dirty]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].check, "fs-io");
        assert!(findings[0].message.contains("std::fs"), "{findings:?}");
    }

    #[test]
    fn bare_fs_path_flagged_once() {
        // `use std::fs;` then `fs::read(..)`: one finding per site, and
        // the `std :: fs` arm does not double-report the `fs :: read`.
        let f = file(
            "rcc-replication",
            FileKind::Lib,
            "use std::fs;\nfn f() { let _ = fs::read(\"x\"); }",
        );
        let findings = check_fs_io(&[f]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
        let qualified = file(
            "rcc-replication",
            FileKind::Lib,
            "fn f() { let _ = std::fs::read(\"x\"); }",
        );
        assert_eq!(check_fs_io(&[qualified]).len(), 1, "no double report");
    }

    #[test]
    fn fs_io_allowed_in_storage_bench_bins_and_tests() {
        for f in [
            file(
                "rcc-storage",
                FileKind::Lib,
                "fn f() { std::fs::rename(a, b).unwrap(); }",
            ),
            file(
                "rcc-bench",
                FileKind::Lib,
                "fn f() { std::fs::write(\"BENCH_wal.json\", s).unwrap(); }",
            ),
            file(
                "rcc-net",
                FileKind::Bin,
                "fn main() { std::fs::create_dir_all(\"data\").unwrap(); }",
            ),
            file(
                "rcc-backend",
                FileKind::Lib,
                "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { std::fs::remove_dir_all(d); } }",
            ),
        ] {
            assert!(check_fs_io(&[f]).is_empty());
        }
    }

    #[test]
    fn non_fs_idents_ignored() {
        // Other `fs`-like identifiers and strings must not trip the check.
        let f = file(
            "rcc-obs",
            FileKind::Lib,
            "const A: &str = \"std::fs\"; fn f(fsyncs: u64) -> u64 { fsyncs }",
        );
        assert!(check_fs_io(&[f]).is_empty());
    }

    #[test]
    fn non_metric_strings_ignored() {
        let f = file(
            "rcc-x",
            FileKind::Lib,
            "const A: &str = \"rcc-common\"; const B: &str = \"not rcc_x here\";",
        );
        assert!(check_metric_names(&[f], &reg(&[]), "names.rs").is_empty());
    }

    fn tag_reg(entries: &[(u8, &str)]) -> Vec<(u8, String, u32)> {
        entries
            .iter()
            .enumerate()
            .map(|(i, (b, n))| (*b, n.to_string(), i as u32 + 1))
            .collect()
    }

    const TAGS_OK: &str = "const TAG_A: u8 = 0x01;\nconst TAG_B: u8 = 0x81;\n\
         fn f(b: u8) -> bool { b == TAG_A || b == TAG_B }";

    #[test]
    fn registry_roundtrip_from_tokens() {
        let f = file(
            "rcc-net",
            FileKind::Lib,
            "pub const FRAME_TAGS: &[(u8, &str)] = &[(0x01, \"TAG_A\"), (0x81, \"TAG_B\")];",
        );
        assert_eq!(
            collect_tag_registry(&f.toks),
            vec![
                (0x01, "TAG_A".to_string(), 1),
                (0x81, "TAG_B".to_string(), 1)
            ]
        );
    }

    #[test]
    fn registered_and_used_tags_are_clean() {
        let f = file("rcc-net", FileKind::Lib, TAGS_OK);
        let findings = check_frame_tags(
            &[f],
            &tag_reg(&[(0x01, "TAG_A"), (0x81, "TAG_B")]),
            "tags.rs",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unregistered_tag_declaration_flagged() {
        // Mutation: declare a tag the registry doesn't know — flips clean
        // to failing.
        let f = file(
            "rcc-net",
            FileKind::Lib,
            "const TAG_A: u8 = 0x01;\nconst TAG_ROGUE: u8 = 0x7f;\n\
             fn f(b: u8) -> bool { b == TAG_A || b == TAG_ROGUE }",
        );
        let findings = check_frame_tags(&[f], &tag_reg(&[(0x01, "TAG_A")]), "tags.rs");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("TAG_ROGUE")
                && findings[0].message.contains("not registered"),
            "{findings:?}"
        );
    }

    #[test]
    fn byte_mismatch_between_declaration_and_registry_flagged() {
        // Mutation: re-point a declared tag at a different byte — the
        // registry pins the wire format, so the drift is flagged.
        let f = file(
            "rcc-net",
            FileKind::Lib,
            "const TAG_A: u8 = 0x02;\nfn f(b: u8) -> bool { b == TAG_A }",
        );
        let findings = check_frame_tags(&[f], &tag_reg(&[(0x01, "TAG_A")]), "tags.rs");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("declared as 0x02 but registered as 0x01"),
            "{findings:?}"
        );
    }

    #[test]
    fn duplicate_registry_byte_and_name_flagged() {
        // Mutation: reuse a wire byte for a second tag — flips clean to
        // failing even before any declaration exists.
        let findings = check_frame_tags(
            &[],
            &tag_reg(&[(0x01, "TAG_A"), (0x01, "TAG_B"), (0x02, "TAG_A")]),
            "tags.rs",
        );
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("byte 0x01 registered twice")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("'TAG_A' registered twice")),
            "{msgs:?}"
        );
    }

    #[test]
    fn undeclared_and_unused_tags_flagged() {
        // Mutation 1: registry entry with no declaration anywhere.
        let f = file("rcc-net", FileKind::Lib, TAGS_OK);
        let findings = check_frame_tags(
            &[f],
            &tag_reg(&[(0x01, "TAG_A"), (0x81, "TAG_B"), (0x02, "TAG_GHOST")]),
            "tags.rs",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("'TAG_GHOST' (0x02) is registered but never declared"),
            "{findings:?}"
        );
        // Mutation 2: declared and registered, but no codec path uses it.
        let f = file(
            "rcc-net",
            FileKind::Lib,
            "const TAG_A: u8 = 0x01;\nconst TAG_DEAD: u8 = 0x02;\n\
             fn f(b: u8) -> bool { b == TAG_A }",
        );
        let findings = check_frame_tags(
            &[f],
            &tag_reg(&[(0x01, "TAG_A"), (0x02, "TAG_DEAD")]),
            "tags.rs",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("'TAG_DEAD' is declared but never used"),
            "{findings:?}"
        );
    }

    #[test]
    fn duplicate_tag_declaration_flagged() {
        let a = file("rcc-net", FileKind::Lib, TAGS_OK);
        let b = prepare(
            "rcc-net",
            "rcc-net/src/y.rs",
            FileKind::Lib,
            "const TAG_A: u8 = 0x01;\nfn g(b: u8) -> bool { b == TAG_A }",
        );
        let findings = check_frame_tags(
            &[a, b],
            &tag_reg(&[(0x01, "TAG_A"), (0x81, "TAG_B")]),
            "tags.rs",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("'TAG_A' declared twice"),
            "{findings:?}"
        );
    }

    const CODES_DECL: &str = "pub mod codes {\n\
         pub const SUBSUMED_BOUND: &str = \"L001\";\n\
         pub const DEAD_GUARD: &str = \"L007\";\n\
         }\nfn f() { emit(codes::SUBSUMED_BOUND); }";

    fn code_registry(src: &str) -> Vec<(String, String, u32)> {
        collect_code_registry(&prepare("rcc-lint", "rcc-lint/src/lib.rs", FileKind::Lib, src).toks)
    }

    #[test]
    fn code_registry_roundtrip_from_tokens() {
        assert_eq!(
            code_registry(CODES_DECL),
            vec![
                ("SUBSUMED_BOUND".to_string(), "L001".to_string(), 2),
                ("DEAD_GUARD".to_string(), "L007".to_string(), 3),
            ]
        );
    }

    #[test]
    fn declared_and_used_codes_are_clean() {
        // L001 used via const reference in the registry file itself, L007
        // via a corpus literal in another crate.
        let lib = prepare("rcc-lint", "rcc-lint/src/lib.rs", FileKind::Lib, CODES_DECL);
        let corpus = file(
            "rcc-tpcd",
            FileKind::Lib,
            "pub fn expected() -> Vec<&'static str> { vec![\"L007\"] }",
        );
        let registry = code_registry(CODES_DECL);
        let findings = check_lint_codes(&[lib, corpus], &registry, "rcc-lint/src/lib.rs");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_code_literal_flagged() {
        // Mutation: a corpus expects a code the registry doesn't declare —
        // flips clean to failing.
        let lib = prepare("rcc-lint", "rcc-lint/src/lib.rs", FileKind::Lib, CODES_DECL);
        let corpus = file(
            "rcc-tpcd",
            FileKind::Lib,
            "pub fn expected() -> Vec<&'static str> { vec![\"L007\", \"L009\"] }",
        );
        let registry = code_registry(CODES_DECL);
        let findings = check_lint_codes(&[lib, corpus], &registry, "rcc-lint/src/lib.rs");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("'L009' is not declared"),
            "{findings:?}"
        );
    }

    #[test]
    fn duplicate_code_declaration_flagged() {
        // Mutation: two consts claim the same code — corpora asserting
        // exact sets can no longer tell the diagnostics apart.
        let src = "pub mod codes {\n\
             pub const A: &str = \"L001\";\n\
             pub const B: &str = \"L001\";\n\
             }\nfn f() { emit(codes::A); emit(codes::B); }";
        let lib = prepare("rcc-lint", "rcc-lint/src/lib.rs", FileKind::Lib, src);
        let registry = code_registry(src);
        let findings = check_lint_codes(&[lib], &registry, "rcc-lint/src/lib.rs");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("'L001' declared twice"),
            "{findings:?}"
        );
    }

    #[test]
    fn unused_code_declaration_flagged() {
        // Mutation: declare a code nothing references — dead diagnostic
        // surface, flagged at the declaration.
        let src = "pub mod codes {\n\
             pub const LIVE: &str = \"L001\";\n\
             pub const GHOST: &str = \"L008\";\n\
             }\nfn f() { emit(codes::LIVE); }";
        let lib = prepare("rcc-lint", "rcc-lint/src/lib.rs", FileKind::Lib, src);
        let registry = code_registry(src);
        let findings = check_lint_codes(&[lib], &registry, "rcc-lint/src/lib.rs");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0]
                .message
                .contains("'L008' (GHOST) is declared but never used"),
            "{findings:?}"
        );
    }

    #[test]
    fn non_code_strings_and_embedded_mentions_ignored() {
        // Help text mentioning codes inside a longer string, and other
        // L-prefixed words, must not trip the check.
        let lib = prepare("rcc-lint", "rcc-lint/src/lib.rs", FileKind::Lib, CODES_DECL);
        let other = file(
            "rcc-mtcache",
            FileKind::Lib,
            "const HELP: &str = \"diagnostics labeled by code (L001..L007)\";\n\
             const W: &str = \"LOUD\"; fn f(label: &str) {}",
        );
        let registry = code_registry(CODES_DECL);
        // L001 is used via const ref in lib; L007 goes unused here on
        // purpose — embedded mentions must NOT count as usage.
        let findings = check_lint_codes(&[lib, other], &registry, "rcc-lint/src/lib.rs");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("'L007'") && findings[0].message.contains("never used"),
            "{findings:?}"
        );
    }

    #[test]
    fn non_tag_consts_test_modules_and_other_crates_ignored() {
        // Other u8 consts, tag-shaped strings, declarations inside test
        // modules, and other crates' tag byte spaces (WAL record tags,
        // value wire tags) must not trip the check.
        let net = file(
            "rcc-net",
            FileKind::Lib,
            "const VERSION: u8 = 1; const S: &str = \"TAG_FAKE\";\n\
             fn f() {}\n#[cfg(test)]\nmod tests { const TAG_TEST_ONLY: u8 = 0x7e; }",
        );
        let wal = file(
            "rcc-storage",
            FileKind::Lib,
            "const TAG_COMMIT: u8 = 0x01;\nfn g(b: u8) -> bool { b == TAG_COMMIT }",
        );
        assert!(check_frame_tags(&[net, wal], &tag_reg(&[]), "tags.rs").is_empty());
    }
}
