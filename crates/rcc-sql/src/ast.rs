//! Abstract syntax tree for the RCC SQL dialect.

use rcc_common::{DataType, Duration, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Box<SelectStmt>),
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`.
    Insert {
        /// Target table name.
        table: String,
        /// Column names.
        columns: Vec<String>,
        /// Literal row tuples.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e [, ...] [WHERE p]`.
    Update {
        /// Target table name.
        table: String,
        /// Column assignments, in statement order.
        assignments: Vec<(String, Expr)>,
        /// Optional WHERE predicate.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE p]`.
    Delete {
        /// Target table name.
        table: String,
        /// Optional WHERE predicate.
        filter: Option<Expr>,
    },
    /// `CREATE TABLE t (c TYPE, ..., PRIMARY KEY (c, ...))`.
    CreateTable {
        /// Object name.
        name: String,
        /// Column names.
        columns: Vec<(String, DataType)>,
        /// Clustered-key column names.
        primary_key: Vec<String>,
    },
    /// `CREATE INDEX ix ON t (c, ...)`.
    CreateIndex {
        /// Object name.
        name: String,
        /// Target table name.
        table: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// `CREATE CACHED VIEW v REGION r AS SELECT ...` — cache DDL defining a
    /// local materialized view (paper Sec. 3, point 2) and the currency
    /// region it is maintained by.
    CreateCachedView {
        /// Object name.
        name: String,
        /// Currency region name.
        region: String,
        /// The defining query.
        query: Box<SelectStmt>,
    },
    /// `CREATE REGION r INTERVAL 10 SEC DELAY 2 SEC` — cache DDL declaring
    /// a currency region (its distribution agent's propagation interval
    /// `f` and delivery delay `d`, Sec. 3.1).
    CreateRegion {
        /// Object name.
        name: String,
        /// Distribution agent's propagation interval `f`.
        interval: rcc_common::Duration,
        /// Delivery delay `d`.
        delay: rcc_common::Duration,
    },
    /// `DROP CACHED VIEW v` — remove a cached materialized view (its
    /// replication subscription ends and dependent plans recompile).
    DropCachedView {
        /// View name.
        name: String,
    },
    /// `BEGIN TIMEORDERED` — start a timeline-consistent query sequence
    /// (paper Sec. 2.3).
    BeginTimeordered,
    /// `END TIMEORDERED`.
    EndTimeordered,
    /// `VERIFY SELECT ...` — optimize the query, then statically verify the
    /// optimized plan against its currency clause and report each proof
    /// obligation instead of executing.
    Verify(Box<SelectStmt>),
    /// `LINT SELECT ...` — run the currency-clause semantic linter over the
    /// query and report each diagnostic as a result row instead of
    /// executing (the front-end complement of [`Statement::Verify`], which
    /// checks optimized plans).
    Lint(Box<SelectStmt>),
    /// `EXPLAIN FLOW SELECT ...` — optimize the query, run the currency
    /// dataflow analysis, and report one row per plan node (operator,
    /// delivered staleness interval, guard verdict, elision decision)
    /// instead of executing.
    ExplainFlow(Box<SelectStmt>),
    /// `SHOW EVENTS` — read the cache's bounded event journal
    /// (degradations, violations, failovers, lint findings) as a result
    /// set.
    ShowEvents,
    /// `SHOW TRACE` — dump the most recently finished query trace
    /// (including spans merged back from the back-end) as a result set.
    ShowTrace,
    /// `CREATE TEMPLATE name ($p, ...) AS stmt; stmt; ... END` — declare a
    /// named parameterized transaction template (a statement sequence the
    /// robustness analyzer reasons about as one unit).
    CreateTemplate(Box<TemplateDecl>),
    /// `AUDIT TEMPLATES` — run the template robustness analyzer over every
    /// declared template and report one verdict row per template instead of
    /// executing anything.
    AuditTemplates,
}

/// A transaction template: a named, parameterized sequence of statements
/// (SELECTs with currency clauses plus INSERT/UPDATE/DELETE skeletons).
///
/// Templates are the unit of the robustness analysis in `rcc-robust`: the
/// analyzer decides per template whether every interleaving its relaxed
/// currency reads allow is serializable, or whether the template must be
/// pinned to the strict (bound-0) path.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateDecl {
    /// Template name (lower-cased, unique per cache).
    pub name: String,
    /// Declared `$` parameter names, in declaration order. Declaration
    /// order is documentation only: the analysis is invariant under
    /// parameter reordering.
    pub params: Vec<String>,
    /// The statement sequence, each with the 1-based source line its first
    /// token starts on (0 if synthesized) — robustness witnesses are
    /// line-addressable through these.
    pub statements: Vec<(Statement, u32)>,
    /// 1-based source line of the template name token (0 if synthesized).
    pub line: u32,
    /// 1-based source column of the template name token (0 if synthesized).
    pub col: u32,
}

/// One Select-From-Where block. The currency clause "occurs last in an SFW
/// block and follows the same scoping rules as the WHERE clause" (Sec. 2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// FROM clause (comma list and/or explicit JOINs).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY (expression, ascending) pairs.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// The paper's currency clause, if present.
    pub currency: Option<CurrencyClause>,
}

impl SelectStmt {
    /// An empty single-block SELECT skeleton, for programmatic construction.
    pub fn empty() -> SelectStmt {
        SelectStmt {
            distinct: false,
            projections: Vec::new(),
            from: Vec::new(),
            filter: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            currency: None,
        }
    }
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `t.*`.
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The operand expression.
        expr: Expr,
        /// Binding alias.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table or view with an optional alias.
    Named {
        /// Object name.
        name: String,
        /// Binding alias.
        alias: Option<String>,
    },
    /// A derived table: `(SELECT ...) alias`.
    Subquery {
        /// The defining query.
        query: Box<SelectStmt>,
        /// Binding alias.
        alias: String,
    },
    /// `left [INNER] JOIN right ON condition`.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Right operand.
        right: Box<TableRef>,
        /// Join condition.
        on: Expr,
    },
}

impl TableRef {
    /// The binding name this FROM item is visible under (alias if given).
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Scalar and boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified (`b.isbn`).
    Column {
        /// Table alias / binding qualifier, if any.
        qualifier: Option<String>,
        /// Object name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// A `$name` parameter, bound at execution time.
    Parameter(String),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`NOT e`, `-e`).
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand expression.
        expr: Box<Expr>,
    },
    /// Aggregate or scalar function call. `COUNT(*)` is `Function` with
    /// `star = true` and empty args.
    Function {
        /// Object name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// `DISTINCT` inside the call.
        distinct: bool,
        /// True for `COUNT(*)`.
        star: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery block.
        subquery: Box<SelectStmt>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e [NOT] IN (subquery)`.
    InSubquery {
        /// The operand expression.
        expr: Box<Expr>,
        /// The subquery block.
        subquery: Box<SelectStmt>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e [NOT] IN (v1, v2, ...)`.
    InList {
        /// The operand expression.
        expr: Box<Expr>,
        /// The literal list.
        list: Vec<Expr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e [NOT] BETWEEN low AND high`.
    Between {
        /// The operand expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for the NOT form.
        negated: bool,
    },
    /// `e IS [NOT] NULL`.
    IsNull {
        /// The operand expression.
        expr: Box<Expr>,
        /// True for the NOT form.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn col(qualifier: Option<&str>, name: &str) -> Expr {
        Expr::Column {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// AND two optional predicates together.
    pub fn and_opt(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (Some(a), Some(b)) => Some(Expr::binary(a, BinaryOp::And, b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Column { .. } | Expr::Literal(_) | Expr::Parameter(_) | Expr::Exists { .. } => {}
        }
    }

    /// True if this expression (transitively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// Is `name` one of the supported aggregate functions?
pub fn is_aggregate(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

/// Binary operators, in SQL semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// Is this a comparison producing a boolean?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => *other,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `NOT`
    Not,
    /// `-`
    Neg,
}

/// The paper's currency clause: a list of C&C specifications.
///
/// "A C&C constraint in a query consists of a set of triples where each
/// triple specifies 1) a currency bound 2) a set of tables forming a
/// consistency class 3) a set of columns defining how to group the rows of
/// the consistency class into consistency groups." (Sec. 2.1)
#[derive(Debug, Clone, PartialEq)]
pub struct CurrencyClause {
    /// The individual `bound ON (tables) [BY cols]` specs.
    pub specs: Vec<CurrencySpec>,
}

/// One `<bound> ON (t1, t2, ...) [BY t.c, ...]` triple.
///
/// Equality ignores the source span (`line`/`col`): two specs parsed from
/// different renderings of the same clause compare equal.
#[derive(Debug, Clone)]
pub struct CurrencySpec {
    /// Maximum acceptable staleness of the inputs in this class.
    pub bound: Duration,
    /// Table bindings (aliases, resolved against this block's and enclosing
    /// blocks' FROM lists) forming one consistency class.
    pub tables: Vec<String>,
    /// Optional grouping columns: rows grouped on these columns must come
    /// from one snapshot, but different groups may come from different
    /// snapshots (E3/E4 in the paper).
    pub by: Vec<(Option<String>, String)>,
    /// 1-based source line of the spec's bound token (0 if synthesized).
    pub line: u32,
    /// 1-based source column of the spec's bound token (0 if synthesized).
    pub col: u32,
}

impl PartialEq for CurrencySpec {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.tables == other.tables && self.by == other.by
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_names() {
        let t = TableRef::Named {
            name: "books".into(),
            alias: Some("b".into()),
        };
        assert_eq!(t.binding_name(), Some("b"));
        let t = TableRef::Named {
            name: "books".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), Some("books"));
        let q = TableRef::Subquery {
            query: Box::new(SelectStmt::empty()),
            alias: "t".into(),
        };
        assert_eq!(q.binding_name(), Some("t"));
    }

    #[test]
    fn and_opt_combinations() {
        let a = Expr::Literal(Value::Bool(true));
        assert_eq!(Expr::and_opt(None, None), None);
        assert_eq!(Expr::and_opt(Some(a.clone()), None), Some(a.clone()));
        let combined = Expr::and_opt(Some(a.clone()), Some(a.clone())).unwrap();
        assert!(matches!(
            combined,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn aggregate_detection() {
        assert!(is_aggregate("count"));
        assert!(is_aggregate("SUM"));
        assert!(!is_aggregate("getdate"));
        let e = Expr::Function {
            name: "sum".into(),
            args: vec![Expr::col(None, "x")],
            distinct: false,
            star: false,
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col(None, "x").contains_aggregate());
        let nested = Expr::binary(Expr::Literal(Value::Int(1)), BinaryOp::Add, e);
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn op_flip_and_kind() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::GtEq.flip(), BinaryOp::LtEq);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert_eq!(BinaryOp::NotEq.sql(), "<>");
    }

    #[test]
    fn visit_reaches_nested() {
        let e = Expr::Between {
            expr: Box::new(Expr::col(Some("c"), "acctbal")),
            low: Box::new(Expr::Parameter("a".into())),
            high: Box::new(Expr::Parameter("b".into())),
            negated: false,
        };
        let mut params = Vec::new();
        e.visit(&mut |x| {
            if let Expr::Parameter(p) = x {
                params.push(p.clone());
            }
        });
        assert_eq!(params, vec!["a".to_string(), "b".to_string()]);
    }
}
