//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use rcc_common::{DataType, Duration, Error, Result, Value};

/// Parse a single SQL statement (trailing `;` allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat_semi();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_semi() {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let t = &self.tokens[self.pos];
        Error::Parse {
            pos: t.pos,
            line: t.line,
            col: t.col,
            message: msg.into(),
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn eat_semi(&mut self) -> bool {
        if matches!(self.peek(), TokenKind::Semi) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input '{}'", self.peek())))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found '{}'", self.peek())))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kind}', found '{}'", self.peek())))
        }
    }

    /// An identifier; some non-reserved keywords double as identifiers
    /// (column names like `region` never collide in our workloads, but
    /// `count` etc. are allowed as idents outside call position).
    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            TokenKind::Keyword(k)
                if matches!(
                    k.as_str(),
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "REGION" | "KEY"
                ) =>
            {
                self.bump();
                Ok(k.to_ascii_lowercase())
            }
            other => Err(self.err(format!("expected identifier, found '{other}'"))),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        match self.peek().clone() {
            TokenKind::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(Box::new(self.select_stmt()?))),
                "INSERT" => self.insert(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "CREATE" => self.create(),
                "DROP" => {
                    self.bump();
                    self.expect_kw("CACHED")?;
                    self.expect_kw("VIEW")?;
                    let name = self.ident()?;
                    Ok(Statement::DropCachedView { name })
                }
                "BEGIN" => {
                    self.bump();
                    self.expect_kw("TIMEORDERED")?;
                    Ok(Statement::BeginTimeordered)
                }
                "END" => {
                    self.bump();
                    self.expect_kw("TIMEORDERED")?;
                    Ok(Statement::EndTimeordered)
                }
                "VERIFY" => {
                    self.bump();
                    if !self.at_kw("SELECT") {
                        return Err(self.err("VERIFY expects a SELECT statement"));
                    }
                    Ok(Statement::Verify(Box::new(self.select_stmt()?)))
                }
                "LINT" => {
                    self.bump();
                    if !self.at_kw("SELECT") {
                        return Err(self.err("LINT expects a SELECT statement"));
                    }
                    Ok(Statement::Lint(Box::new(self.select_stmt()?)))
                }
                "AUDIT" => {
                    self.bump();
                    self.expect_kw("TEMPLATES")?;
                    Ok(Statement::AuditTemplates)
                }
                "EXPLAIN" => {
                    self.bump();
                    self.expect_kw("FLOW")?;
                    if !self.at_kw("SELECT") {
                        return Err(self.err("EXPLAIN FLOW expects a SELECT statement"));
                    }
                    Ok(Statement::ExplainFlow(Box::new(self.select_stmt()?)))
                }
                "SHOW" => {
                    self.bump();
                    let what = self.ident()?;
                    if what.eq_ignore_ascii_case("events") {
                        Ok(Statement::ShowEvents)
                    } else if what.eq_ignore_ascii_case("trace") {
                        Ok(Statement::ShowTrace)
                    } else {
                        Err(self.err(format!("SHOW expects EVENTS or TRACE, got '{what}'")))
                    }
                }
                other => Err(self.err(format!("unexpected keyword '{other}' at statement start"))),
            },
            other => Err(self.err(format!("expected a statement, found '{other}'"))),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            loop {
                columns.push(self.ident()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Op("=".into()))?;
            assignments.push((col, self.expr()?));
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = Vec::new();
            let mut primary_key = Vec::new();
            loop {
                if self.at_kw("PRIMARY") {
                    self.bump();
                    self.expect_kw("KEY")?;
                    self.expect(&TokenKind::LParen)?;
                    loop {
                        primary_key.push(self.ident()?);
                        if !matches!(self.peek(), TokenKind::Comma) {
                            break;
                        }
                        self.bump();
                    }
                    self.expect(&TokenKind::RParen)?;
                } else {
                    let col = self.ident()?;
                    let ty = self.data_type()?;
                    columns.push((col, ty));
                }
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
            if primary_key.is_empty() {
                return Err(self.err("CREATE TABLE requires a PRIMARY KEY clause"));
            }
            Ok(Statement::CreateTable {
                name,
                columns,
                primary_key,
            })
        } else if self.eat_kw("INDEX") || (self.eat_kw("CLUSTERED") && self.eat_kw("INDEX")) {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
            })
        } else if self.eat_kw("REGION") {
            let name = self.ident()?;
            self.expect_kw("INTERVAL")?;
            let interval = self.duration()?;
            self.expect_kw("DELAY")?;
            let delay = self.duration()?;
            Ok(Statement::CreateRegion {
                name,
                interval,
                delay,
            })
        } else if self.eat_kw("CACHED") {
            self.expect_kw("VIEW")?;
            let name = self.ident()?;
            self.expect_kw("REGION")?;
            let region = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.select_stmt()?;
            Ok(Statement::CreateCachedView {
                name,
                region,
                query: Box::new(query),
            })
        } else if self.eat_kw("TEMPLATE") {
            self.create_template()
        } else {
            Err(self.err("expected TABLE, INDEX, REGION, TEMPLATE or CACHED VIEW after CREATE"))
        }
    }

    /// Body of `CREATE TEMPLATE name [($p, ...)] AS stmt; ...; END`.
    fn create_template(&mut self) -> Result<Statement> {
        let (line, col) = {
            let t = &self.tokens[self.pos];
            (t.line, t.col)
        };
        let name = self.ident()?;
        let mut params: Vec<String> = Vec::new();
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    match self.peek().clone() {
                        TokenKind::Param(p) => {
                            if params.contains(&p) {
                                return Err(self.err(format!("duplicate template parameter ${p}")));
                            }
                            self.bump();
                            params.push(p);
                        }
                        other => {
                            return Err(self.err(format!("expected a $parameter, found '{other}'")))
                        }
                    }
                    if !matches!(self.peek(), TokenKind::Comma) {
                        break;
                    }
                    self.bump();
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_kw("AS")?;
        let mut statements = Vec::new();
        loop {
            while self.eat_semi() {}
            if self.eat_kw("END") {
                break;
            }
            let stmt_line = self.tokens[self.pos].line;
            let stmt = self.statement()?;
            if !matches!(
                stmt,
                Statement::Select(_)
                    | Statement::Insert { .. }
                    | Statement::Update { .. }
                    | Statement::Delete { .. }
            ) {
                return Err(self.err("templates may contain only SELECT, INSERT, UPDATE or DELETE"));
            }
            statements.push((stmt, stmt_line));
        }
        if statements.is_empty() {
            return Err(self.err("template body must contain at least one statement"));
        }
        Ok(Statement::CreateTemplate(Box::new(TemplateDecl {
            name,
            params,
            statements,
            line,
            col,
        })))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let t = match self.peek().clone() {
            TokenKind::Keyword(k) => match k.as_str() {
                "INT" => DataType::Int,
                "FLOAT" => DataType::Float,
                "VARCHAR" => DataType::Str,
                "BOOL" => DataType::Bool,
                "TIMESTAMP" => DataType::Timestamp,
                other => return Err(self.err(format!("unknown type '{other}'"))),
            },
            other => return Err(self.err(format!("expected a type, found '{other}'"))),
        };
        self.bump();
        // optional length, e.g. VARCHAR(25) — parsed and ignored
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            match self.bump() {
                TokenKind::Int(_) => {}
                other => return Err(self.err(format!("expected length, found '{other}'"))),
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(t)
    }

    // ------------------------------------------------------------- SELECT

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = Vec::new();
        loop {
            projections.push(self.select_item()?);
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.at_kw("GROUP") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.at_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((e, asc));
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("expected LIMIT count, found '{other}'"))),
            }
        } else {
            None
        };
        let currency = if self.at_kw("CURRENCY") {
            Some(self.currency_clause()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            currency,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), TokenKind::Arith('*')) {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // t.*
        if let (TokenKind::Ident(q), TokenKind::Dot) = (self.peek().clone(), self.peek2().clone()) {
            if matches!(
                self.tokens.get(self.pos + 2).map(|t| &t.kind),
                Some(TokenKind::Arith('*'))
            ) {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let is_join = self.at_kw("JOIN")
                || (self.at_kw("INNER")
                    && matches!(self.peek2(), TokenKind::Keyword(k) if k == "JOIN"));
            if !is_join {
                break;
            }
            self.eat_kw("INNER");
            self.expect_kw("JOIN")?;
            let right = self.table_primary()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let query = self.select_stmt()?;
            self.expect(&TokenKind::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // --------------------------------------------------- currency clause

    fn currency_clause(&mut self) -> Result<CurrencyClause> {
        self.expect_kw("CURRENCY")?;
        self.expect_kw("BOUND")?;
        let mut specs = Vec::new();
        loop {
            specs.push(self.currency_spec()?);
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        Ok(CurrencyClause { specs })
    }

    fn currency_spec(&mut self) -> Result<CurrencySpec> {
        let start = self.tokens[self.pos].clone();
        let bound = self.duration()?;
        self.expect_kw("ON")?;
        self.expect(&TokenKind::LParen)?;
        if matches!(self.peek(), TokenKind::RParen) {
            return Err(self.err("empty consistency class: ON () must name at least one table"));
        }
        let mut tables = Vec::new();
        loop {
            tables.push(self.ident()?);
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        self.expect(&TokenKind::RParen)?;
        let mut by = Vec::new();
        if self.eat_kw("BY") {
            loop {
                let first = self.ident()?;
                if matches!(self.peek(), TokenKind::Dot) {
                    self.bump();
                    let col = self.ident()?;
                    by.push((Some(first), col));
                } else {
                    by.push((None, first));
                }
                let added = by.last().expect("just pushed");
                if by.iter().filter(|c| c == &added).count() > 1 {
                    let (q, c) = added;
                    let shown = match q {
                        Some(q) => format!("{q}.{c}"),
                        None => c.clone(),
                    };
                    return Err(self.err(format!("duplicate BY column '{shown}'")));
                }
                // `BY a.x, 5 MIN ON ...` ambiguity: a comma followed by a
                // number starts the next spec, not another BY column.
                if matches!(self.peek(), TokenKind::Comma)
                    && matches!(self.peek2(), TokenKind::Ident(_) | TokenKind::Keyword(_))
                    && !matches!(self.peek2(), TokenKind::Keyword(k) if k == "MIN")
                {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(CurrencySpec {
            bound,
            tables,
            by,
            line: start.line,
            col: start.col,
        })
    }

    fn duration(&mut self) -> Result<Duration> {
        let n = match self.bump() {
            TokenKind::Int(n) => n,
            TokenKind::Float(f) => {
                // allow fractional durations, rounded to ms below
                return self.duration_unit_fractional(f);
            }
            other => return Err(self.err(format!("expected a duration, found '{other}'"))),
        };
        self.duration_unit(n)
    }

    fn duration_unit(&mut self, n: i64) -> Result<Duration> {
        match self.bump() {
            TokenKind::Keyword(k) => {
                let per_unit = match k.as_str() {
                    "MS" => 1,
                    "SEC" | "SECOND" | "SECONDS" => 1_000,
                    "MIN" | "MINUTE" | "MINUTES" => 60_000,
                    "HOUR" | "HOURS" => 3_600_000,
                    other => return Err(self.err(format!("unknown time unit '{other}'"))),
                };
                n.checked_mul(per_unit)
                    .map(Duration::from_millis)
                    .ok_or_else(|| self.err(format!("currency bound {n} {k} overflows")))
            }
            other => Err(self.err(format!("expected a time unit, found '{other}'"))),
        }
    }

    fn duration_unit_fractional(&mut self, f: f64) -> Result<Duration> {
        match self.bump() {
            TokenKind::Keyword(k) => {
                let ms = match k.as_str() {
                    "MS" => f,
                    "SEC" | "SECOND" | "SECONDS" => f * 1_000.0,
                    "MIN" | "MINUTE" | "MINUTES" => f * 60_000.0,
                    "HOUR" | "HOURS" => f * 3_600_000.0,
                    other => return Err(self.err(format!("unknown time unit '{other}'"))),
                };
                Ok(Duration::from_millis(ms.round() as i64))
            }
            other => Err(self.err(format!("expected a time unit, found '{other}'"))),
        }
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.at_kw("IS") {
            self.bump();
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = if self.at_kw("NOT")
            && matches!(self.peek2(), TokenKind::Keyword(k) if k == "BETWEEN" || k == "IN")
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen)?;
            if self.at_kw("SELECT") {
                let sub = self.select_stmt()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !matches!(self.peek(), TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN or IN after NOT"));
        }
        if let TokenKind::Op(op) = self.peek().clone() {
            self.bump();
            let right = self.additive()?;
            let op = match op.as_str() {
                "=" => BinaryOp::Eq,
                "<>" => BinaryOp::NotEq,
                "<" => BinaryOp::Lt,
                "<=" => BinaryOp::LtEq,
                ">" => BinaryOp::Gt,
                ">=" => BinaryOp::GtEq,
                other => return Err(self.err(format!("unknown operator '{other}'"))),
            };
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Arith('+') => BinaryOp::Add,
                TokenKind::Arith('-') => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Arith('*') => BinaryOp::Mul,
                TokenKind::Arith('/') => BinaryOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::Arith('-')) {
            self.bump();
            let inner = self.unary()?;
            // fold negative literals immediately
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                e => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(e),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(n)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Param(p) => {
                self.bump();
                Ok(Expr::Parameter(p))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at_kw("SELECT") {
                    // scalar subquery is not supported; report clearly
                    return Err(self.err("scalar subqueries are not supported; use EXISTS or IN"));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Keyword(k) => match k.as_str() {
                "TRUE" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Bool(true)))
                }
                "FALSE" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Bool(false)))
                }
                "NULL" => {
                    self.bump();
                    Ok(Expr::Literal(Value::Null))
                }
                "EXISTS" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let sub = self.select_stmt()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Exists {
                        subquery: Box::new(sub),
                        negated: false,
                    })
                }
                "NOT" => {
                    self.bump();
                    self.expect_kw("EXISTS")?;
                    self.expect(&TokenKind::LParen)?;
                    let sub = self.select_stmt()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Exists {
                        subquery: Box::new(sub),
                        negated: true,
                    })
                }
                "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "GETDATE" => {
                    if !matches!(self.peek2(), TokenKind::LParen) {
                        // not a call: treat as identifier (e.g. column `min`)
                        let name = self.ident()?;
                        return self.maybe_qualified(name);
                    }
                    let name = k.to_ascii_lowercase();
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    if matches!(self.peek(), TokenKind::Arith('*')) {
                        self.bump();
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name,
                            args: vec![],
                            distinct: false,
                            star: true,
                        });
                    }
                    if matches!(self.peek(), TokenKind::RParen) {
                        self.bump();
                        return Ok(Expr::Function {
                            name,
                            args: vec![],
                            distinct: false,
                            star: false,
                        });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if !matches!(self.peek(), TokenKind::Comma) {
                            break;
                        }
                        self.bump();
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Function {
                        name,
                        args,
                        distinct,
                        star: false,
                    })
                }
                other => Err(self.err(format!("unexpected keyword '{other}' in expression"))),
            },
            TokenKind::Ident(name) => {
                self.bump();
                self.maybe_qualified(name)
            }
            other => Err(self.err(format!("unexpected token '{other}' in expression"))),
        }
    }

    fn maybe_qualified(&mut self, first: String) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            let name = self.ident()?;
            Ok(Expr::Column {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(Expr::Column {
                qualifier: None,
                name: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = 42");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.filter.is_some());
        assert!(s.currency.is_none());
    }

    #[test]
    fn verify_wraps_a_select() {
        let stmt = parse_statement("VERIFY SELECT a FROM t CURRENCY BOUND 10 SEC ON (t)").unwrap();
        let Statement::Verify(s) = stmt else {
            panic!("expected Statement::Verify, got {stmt:?}")
        };
        assert!(s.currency.is_some());
        // round-trips through the unparser with the prefix intact
        let sql = crate::unparse::statement_sql(&Statement::Verify(s));
        assert!(sql.starts_with("VERIFY SELECT"), "{sql}");

        parse_statement("VERIFY INSERT INTO t VALUES (1)")
            .expect_err("VERIFY must require a SELECT");
    }

    #[test]
    fn lint_wraps_a_select() {
        let stmt = parse_statement("LINT SELECT a FROM t CURRENCY BOUND 10 SEC ON (t)").unwrap();
        let Statement::Lint(s) = stmt else {
            panic!("expected Statement::Lint, got {stmt:?}")
        };
        assert!(s.currency.is_some());
        let sql = crate::unparse::statement_sql(&Statement::Lint(s));
        assert!(sql.starts_with("LINT SELECT"), "{sql}");

        parse_statement("LINT DELETE FROM t").expect_err("LINT must require a SELECT");
    }

    #[test]
    fn explain_flow_wraps_a_select() {
        let stmt =
            parse_statement("EXPLAIN FLOW SELECT a FROM t CURRENCY BOUND 10 SEC ON (t)").unwrap();
        let Statement::ExplainFlow(s) = stmt else {
            panic!("expected Statement::ExplainFlow, got {stmt:?}")
        };
        assert!(s.currency.is_some());
        let sql = crate::unparse::statement_sql(&Statement::ExplainFlow(s));
        assert!(sql.starts_with("EXPLAIN FLOW SELECT"), "{sql}");

        parse_statement("EXPLAIN SELECT a FROM t").expect_err("bare EXPLAIN must be rejected");
        parse_statement("EXPLAIN FLOW UPDATE t SET a = 1")
            .expect_err("EXPLAIN FLOW must require a SELECT");
    }

    #[test]
    fn currency_spec_records_its_span() {
        let stmt = parse_statement("SELECT a FROM t\nCURRENCY BOUND 10 SEC ON (t)").unwrap();
        let Statement::Select(s) = stmt else {
            panic!("expected Statement::Select, got {stmt:?}")
        };
        let spec = &s.currency.as_ref().unwrap().specs[0];
        assert_eq!(spec.line, 2);
        assert!(spec.col > 1, "col {}", spec.col);
    }

    #[test]
    fn currency_clause_single_class() {
        let s = sel("SELECT * FROM books b, reviews r WHERE b.isbn = r.isbn \
             CURRENCY BOUND 10 MIN ON (b, r)");
        let c = s.currency.unwrap();
        assert_eq!(c.specs.len(), 1);
        assert_eq!(c.specs[0].bound, Duration::from_mins(10));
        assert_eq!(c.specs[0].tables, vec!["b".to_string(), "r".to_string()]);
        assert!(c.specs[0].by.is_empty());
    }

    #[test]
    fn currency_clause_multiple_specs() {
        let s = sel("SELECT * FROM books b, reviews r WHERE b.isbn = r.isbn \
             CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r)");
        let c = s.currency.unwrap();
        assert_eq!(c.specs.len(), 2);
        assert_eq!(c.specs[1].bound, Duration::from_mins(30));
        assert_eq!(c.specs[1].tables, vec!["r".to_string()]);
    }

    #[test]
    fn currency_clause_with_by_grouping() {
        let s = sel("SELECT * FROM books b, reviews r WHERE b.isbn = r.isbn \
             CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn");
        let c = s.currency.unwrap();
        assert_eq!(
            c.specs[0].by,
            vec![(Some("b".to_string()), "isbn".to_string())]
        );
    }

    #[test]
    fn currency_units() {
        for (sql, want) in [
            ("5 SEC", Duration::from_secs(5)),
            ("5 SECONDS", Duration::from_secs(5)),
            ("2 HOURS", Duration::from_hours(2)),
            ("250 MS", Duration::from_millis(250)),
            ("1 MINUTE", Duration::from_mins(1)),
        ] {
            let s = sel(&format!("SELECT * FROM t CURRENCY BOUND {sql} ON (t)"));
            assert_eq!(s.currency.unwrap().specs[0].bound, want, "{sql}");
        }
    }

    #[test]
    fn fractional_duration() {
        let s = sel("SELECT * FROM t CURRENCY BOUND 1.5 SEC ON (t)");
        assert_eq!(
            s.currency.unwrap().specs[0].bound,
            Duration::from_millis(1500)
        );
    }

    #[test]
    fn subquery_in_from_with_own_currency() {
        // paper Q2 (Sec 2.2)
        let s = sel("SELECT t.isbn, t.title, s.discount FROM \
             (SELECT b.isbn, b.title FROM books b, reviews r WHERE b.isbn = r.isbn \
              CURRENCY BOUND 10 MIN ON (b, r)) t, sales s \
             WHERE t.isbn = s.isbn CURRENCY BOUND 5 MIN ON (s, t)");
        assert!(s.currency.is_some());
        match &s.from[0] {
            TableRef::Subquery { query, alias } => {
                assert_eq!(alias, "t");
                assert!(query.currency.is_some());
            }
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn exists_subquery_with_currency() {
        // paper Q3 (Sec 2.2)
        let s = sel(
            "SELECT b.title FROM books b, reviews r WHERE b.isbn = r.isbn AND \
             EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn \
                     CURRENCY BOUND 10 MIN ON (s, b)) \
             CURRENCY BOUND 10 MIN ON (b, r)",
        );
        let filter = s.filter.unwrap();
        let mut found = false;
        filter.visit(&mut |e| {
            if let Expr::Exists { subquery, .. } = e {
                assert!(subquery.currency.is_some());
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn joins_explicit_and_implicit() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y");
        assert_eq!(s.from.len(), 1);
        assert!(matches!(&s.from[0], TableRef::Join { .. }));
        let s = sel("SELECT * FROM a, b WHERE a.x = b.x");
        assert_eq!(s.from.len(), 2);
    }

    #[test]
    fn group_having_order_limit() {
        let s = sel("SELECT o_custkey, COUNT(*), SUM(o_totalprice) FROM orders \
             GROUP BY o_custkey HAVING COUNT(*) > 5 ORDER BY o_custkey DESC LIMIT 10");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].1, "DESC");
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn between_and_in() {
        let s =
            sel("SELECT * FROM c WHERE c_acctbal BETWEEN $a AND $b AND c_nationkey IN (1, 2, 3)");
        let f = s.filter.unwrap();
        let mut saw_between = false;
        let mut saw_in = false;
        f.visit(&mut |e| match e {
            Expr::Between { .. } => saw_between = true,
            Expr::InList { list, .. } => {
                saw_in = true;
                assert_eq!(list.len(), 3);
            }
            _ => {}
        });
        assert!(saw_between && saw_in);
    }

    #[test]
    fn not_between() {
        let s = sel("SELECT * FROM c WHERE x NOT BETWEEN 1 AND 2");
        let mut neg = false;
        s.filter.unwrap().visit(&mut |e| {
            if let Expr::Between { negated, .. } = e {
                neg = *negated;
            }
        });
        assert!(neg);
    }

    #[test]
    fn in_subquery() {
        let s = sel("SELECT * FROM c WHERE c_custkey IN (SELECT o_custkey FROM orders)");
        let mut ok = false;
        s.filter.unwrap().visit(&mut |e| {
            if matches!(e, Expr::InSubquery { .. }) {
                ok = true;
            }
        });
        assert!(ok);
    }

    #[test]
    fn operator_precedence() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match s.filter.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("wrong precedence: {other:?}"),
        }
        let s = sel("SELECT 1 + 2 * 3 x");
        match &s.projections[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinaryOp::Add,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("wrong precedence: {other:?}"),
        }
    }

    #[test]
    fn negative_literals_folded() {
        let s = sel("SELECT -5, -2.5 FROM t");
        match &s.projections[0] {
            SelectItem::Expr {
                expr: Expr::Literal(Value::Int(-5)),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcards() {
        let s = sel("SELECT *, b.* FROM books b");
        assert_eq!(s.projections[0], SelectItem::Wildcard);
        assert_eq!(s.projections[1], SelectItem::QualifiedWildcard("b".into()));
    }

    #[test]
    fn ddl_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE customer (c_custkey INT, c_name VARCHAR(25), c_acctbal FLOAT, \
             PRIMARY KEY (c_custkey))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                assert_eq!(name, "customer");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1].1, DataType::Str);
                assert_eq!(primary_key, vec!["c_custkey".to_string()]);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_statement("CREATE TABLE t (a INT)").is_err(),
            "PK required"
        );
    }

    #[test]
    fn ddl_create_index_and_view() {
        let stmt = parse_statement("CREATE INDEX ix_bal ON customer (c_acctbal)").unwrap();
        assert!(matches!(stmt, Statement::CreateIndex { .. }));
        let stmt = parse_statement(
            "CREATE CACHED VIEW cust_prj REGION cr1 AS \
             SELECT c_custkey, c_name FROM customer",
        )
        .unwrap();
        match stmt {
            Statement::CreateCachedView {
                name,
                region,
                query,
            } => {
                assert_eq!(name, "cust_prj");
                assert_eq!(region, "cr1");
                assert_eq!(query.projections.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dml() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("{other:?}"),
        }
        let stmt = parse_statement("UPDATE t SET a = a + 1 WHERE b = 2").unwrap();
        assert!(matches!(stmt, Statement::Update { .. }));
        let stmt = parse_statement("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));
    }

    #[test]
    fn ddl_create_region() {
        let stmt = parse_statement("CREATE REGION shop INTERVAL 10 SEC DELAY 2 SEC").unwrap();
        match stmt {
            Statement::CreateRegion {
                name,
                interval,
                delay,
            } => {
                assert_eq!(name, "shop");
                assert_eq!(interval, Duration::from_secs(10));
                assert_eq!(delay, Duration::from_secs(2));
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_statement("CREATE REGION r INTERVAL 10 SEC").is_err(),
            "DELAY required"
        );
        // round-trips through the unparser
        let sql = crate::unparse::statement_sql(
            &parse_statement("CREATE REGION r INTERVAL 1 MIN DELAY 5 SEC").unwrap(),
        );
        assert!(parse_statement(&sql).is_ok(), "{sql}");
    }

    #[test]
    fn ddl_drop_cached_view() {
        let stmt = parse_statement("DROP CACHED VIEW v").unwrap();
        assert_eq!(stmt, Statement::DropCachedView { name: "v".into() });
        assert!(parse_statement("DROP VIEW v").is_err(), "CACHED required");
    }

    #[test]
    fn timeordered_brackets() {
        assert_eq!(
            parse_statement("BEGIN TIMEORDERED").unwrap(),
            Statement::BeginTimeordered
        );
        assert_eq!(
            parse_statement("END TIMEORDERED;").unwrap(),
            Statement::EndTimeordered
        );
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_statements("SELECT 1 x; SELECT 2 y;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(
            parse_statement("SELECT * FROM t CURRENCY 5 MIN ON (t)").is_err(),
            "BOUND required"
        );
        assert!(parse_statement("SELECT * FROM t CURRENCY BOUND 5 FORTNIGHTS ON (t)").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1 x extra garbage !!!").is_err());
    }

    #[test]
    fn aggregate_keywords_usable_as_idents() {
        let s = sel("SELECT count FROM t WHERE min > 3");
        assert!(matches!(
            &s.projections[0],
            SelectItem::Expr { expr: Expr::Column { name, .. }, .. } if name == "count"
        ));
    }

    #[test]
    fn getdate_call() {
        let s = sel("SELECT * FROM hb WHERE ts > GETDATE() - 5000");
        let mut ok = false;
        s.filter.unwrap().visit(&mut |e| {
            if let Expr::Function {
                name, star, args, ..
            } = e
            {
                if name == "getdate" && !star && args.is_empty() {
                    ok = true;
                }
            }
        });
        assert!(ok);
    }
}
