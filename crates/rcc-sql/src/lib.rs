#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! SQL front end for the RCC mini-DBMS.
//!
//! A hand-written lexer and recursive-descent parser for the SQL subset the
//! paper's workloads need — single- and multi-block SELECT queries with
//! joins, subqueries (FROM / EXISTS / IN), GROUP BY/HAVING/ORDER BY, DML,
//! and DDL for tables, indexes and cached materialized views — **plus the
//! paper's proposed `CURRENCY` clause** (Sec. 2):
//!
//! ```sql
//! SELECT b.title, r.rating
//! FROM books b, reviews r
//! WHERE b.isbn = r.isbn
//! CURRENCY BOUND 10 MIN ON (b, r)                 -- E1: one consistency class
//! ```
//!
//! ```sql
//! ... CURRENCY BOUND 10 MIN ON (b), 30 MIN ON (r) -- E2: independent classes
//! ... CURRENCY BOUND 10 MIN ON (b) BY b.isbn      -- E3: per-row grouping
//! ... CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn   -- E4: join-pair grouping
//! ```
//!
//! The clause appears last in any SFW block and follows WHERE-clause scoping
//! rules: it may reference tables bound in the current *or enclosing* blocks
//! (paper Sec. 2.2, query Q3). Session-level timeline consistency is
//! `BEGIN TIMEORDERED` / `END TIMEORDERED` (Sec. 2.3).
//!
//! [`unparse`] regenerates SQL text from the AST; the cache uses it to build
//! the remote branch of SwitchUnion plans shipped to the back-end server.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod unparse;

pub use ast::*;
pub use parser::{parse_statement, parse_statements};
