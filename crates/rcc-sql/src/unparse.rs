//! SQL unparser: regenerate SQL text from the AST.
//!
//! The cache uses this to build the *remote branch* of SwitchUnion plans —
//! the original (sub)expression is rendered back to SQL and shipped to the
//! back-end server (paper Sec. 3.2.3: "the remote plan consists of a remote
//! SQL query created from the original expression E"). Unparsing must
//! round-trip: `parse(unparse(parse(q))) == parse(q)`, which the tests and
//! a property test enforce.

use crate::ast::*;
use std::fmt::Write;

/// Render a statement as SQL text.
pub fn statement_sql(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(s) => select_sql(s),
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let mut out = format!("INSERT INTO {table}");
            if !columns.is_empty() {
                let _ = write!(out, " ({})", columns.join(", "));
            }
            out.push_str(" VALUES ");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let vals: Vec<String> = row.iter().map(expr_sql).collect();
                let _ = write!(out, "({})", vals.join(", "));
            }
            out
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => {
            let sets: Vec<String> = assignments
                .iter()
                .map(|(c, e)| format!("{c} = {}", expr_sql(e)))
                .collect();
            let mut out = format!("UPDATE {table} SET {}", sets.join(", "));
            if let Some(f) = filter {
                let _ = write!(out, " WHERE {}", expr_sql(f));
            }
            out
        }
        Statement::Delete { table, filter } => {
            let mut out = format!("DELETE FROM {table}");
            if let Some(f) = filter {
                let _ = write!(out, " WHERE {}", expr_sql(f));
            }
            out
        }
        Statement::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            let cols: Vec<String> = columns.iter().map(|(c, t)| format!("{c} {t}")).collect();
            format!(
                "CREATE TABLE {name} ({}, PRIMARY KEY ({}))",
                cols.join(", "),
                primary_key.join(", ")
            )
        }
        Statement::CreateIndex {
            name,
            table,
            columns,
        } => {
            format!("CREATE INDEX {name} ON {table} ({})", columns.join(", "))
        }
        Statement::CreateCachedView {
            name,
            region,
            query,
        } => {
            format!(
                "CREATE CACHED VIEW {name} REGION {region} AS {}",
                select_sql(query)
            )
        }
        Statement::CreateRegion {
            name,
            interval,
            delay,
        } => {
            format!(
                "CREATE REGION {name} INTERVAL {} MS DELAY {} MS",
                interval.millis(),
                delay.millis()
            )
        }
        Statement::DropCachedView { name } => format!("DROP CACHED VIEW {name}"),
        Statement::BeginTimeordered => "BEGIN TIMEORDERED".to_string(),
        Statement::EndTimeordered => "END TIMEORDERED".to_string(),
        Statement::Verify(s) => format!("VERIFY {}", select_sql(s)),
        Statement::Lint(s) => format!("LINT {}", select_sql(s)),
        Statement::ExplainFlow(s) => format!("EXPLAIN FLOW {}", select_sql(s)),
        Statement::ShowEvents => "SHOW EVENTS".to_string(),
        Statement::ShowTrace => "SHOW TRACE".to_string(),
        Statement::CreateTemplate(t) => {
            let mut out = format!("CREATE TEMPLATE {}", t.name);
            if !t.params.is_empty() {
                let ps: Vec<String> = t.params.iter().map(|p| format!("${p}")).collect();
                let _ = write!(out, " ({})", ps.join(", "));
            }
            out.push_str(" AS ");
            for (stmt, _) in &t.statements {
                let _ = write!(out, "{}; ", statement_sql(stmt));
            }
            out.push_str("END");
            out
        }
        Statement::AuditTemplates => "AUDIT TEMPLATES".to_string(),
    }
}

/// Render a SELECT block as SQL text.
pub fn select_sql(s: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                let _ = write!(out, "{q}.*");
            }
            SelectItem::Expr { expr, alias } => {
                out.push_str(&expr_sql(expr));
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, t) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&table_ref_sql(t));
        }
    }
    if let Some(f) = &s.filter {
        let _ = write!(out, " WHERE {}", expr_sql(f));
    }
    if !s.group_by.is_empty() {
        let gs: Vec<String> = s.group_by.iter().map(expr_sql).collect();
        let _ = write!(out, " GROUP BY {}", gs.join(", "));
    }
    if let Some(h) = &s.having {
        let _ = write!(out, " HAVING {}", expr_sql(h));
    }
    if !s.order_by.is_empty() {
        let os: Vec<String> = s
            .order_by
            .iter()
            .map(|(e, asc)| format!("{}{}", expr_sql(e), if *asc { "" } else { " DESC" }))
            .collect();
        let _ = write!(out, " ORDER BY {}", os.join(", "));
    }
    if let Some(n) = s.limit {
        let _ = write!(out, " LIMIT {n}");
    }
    if let Some(c) = &s.currency {
        let _ = write!(out, " {}", currency_sql(c));
    }
    out
}

/// Render a currency clause.
pub fn currency_sql(c: &CurrencyClause) -> String {
    let mut out = String::from("CURRENCY BOUND ");
    for (i, spec) in c.specs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let ms = spec.bound.millis();
        if ms % 60_000 == 0 && ms > 0 {
            let _ = write!(out, "{} MIN", ms / 60_000);
        } else if ms % 1_000 == 0 && ms > 0 {
            let _ = write!(out, "{} SEC", ms / 1_000);
        } else {
            let _ = write!(out, "{ms} MS");
        }
        let _ = write!(out, " ON ({})", spec.tables.join(", "));
        if !spec.by.is_empty() {
            let cols: Vec<String> = spec
                .by
                .iter()
                .map(|(q, c)| match q {
                    Some(q) => format!("{q}.{c}"),
                    None => c.clone(),
                })
                .collect();
            let _ = write!(out, " BY {}", cols.join(", "));
        }
    }
    out
}

fn table_ref_sql(t: &TableRef) -> String {
    match t {
        TableRef::Named { name, alias } => match alias {
            Some(a) if a != name => format!("{name} {a}"),
            _ => name.clone(),
        },
        TableRef::Subquery { query, alias } => format!("({}) {alias}", select_sql(query)),
        TableRef::Join { left, right, on } => format!(
            "{} JOIN {} ON {}",
            table_ref_sql(left),
            table_ref_sql(right),
            expr_sql(on)
        ),
    }
}

/// Render an expression. Parenthesizes conservatively: every binary
/// operation gets parens, which is verbose but unambiguous and keeps
/// round-tripping trivially correct.
pub fn expr_sql(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Literal(v) => v.to_string(),
        Expr::Parameter(p) => format!("${p}"),
        Expr::Binary { left, op, right } => {
            format!("({} {} {})", expr_sql(left), op.sql(), expr_sql(right))
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("(NOT {})", expr_sql(expr)),
            UnaryOp::Neg => format!("(-{})", expr_sql(expr)),
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            if *star {
                format!("{}(*)", name.to_ascii_uppercase())
            } else {
                let args: Vec<String> = args.iter().map(expr_sql).collect();
                format!(
                    "{}({}{})",
                    name.to_ascii_uppercase(),
                    if *distinct { "DISTINCT " } else { "" },
                    args.join(", ")
                )
            }
        }
        Expr::Exists { subquery, negated } => {
            format!(
                "{}EXISTS ({})",
                if *negated { "NOT " } else { "" },
                select_sql(subquery)
            )
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => format!(
            "{} {}IN ({})",
            expr_sql(expr),
            if *negated { "NOT " } else { "" },
            select_sql(subquery)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(expr_sql).collect();
            format!(
                "{} {}IN ({})",
                expr_sql(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            expr_sql(expr),
            if *negated { "NOT " } else { "" },
            expr_sql(low),
            expr_sql(high)
        ),
        Expr::IsNull { expr, negated } => {
            format!(
                "{} IS {}NULL",
                expr_sql(expr),
                if *negated { "NOT " } else { "" }
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn roundtrip(sql: &str) {
        let first = parse_statement(sql).unwrap();
        let rendered = statement_sql(&first);
        let second = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
        // The ASTs need not be byte-identical (parens become explicit
        // Binary nesting identical to the original), but re-rendering must
        // reach a fixpoint.
        let third = statement_sql(&second);
        assert_eq!(rendered, third, "unparse not a fixpoint for {sql}");
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT c_name FROM customer WHERE c_custkey = 42",
            "SELECT * FROM books b, reviews r WHERE b.isbn = r.isbn CURRENCY BOUND 10 MIN ON (b, r)",
            "SELECT b.title FROM books b WHERE EXISTS (SELECT * FROM sales s WHERE s.isbn = b.isbn CURRENCY BOUND 10 MIN ON (s, b)) CURRENCY BOUND 10 MIN ON (b)",
            "SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_custkey HAVING COUNT(*) > 5 ORDER BY o_custkey DESC LIMIT 3",
            "SELECT c_custkey FROM customer WHERE c_acctbal BETWEEN $a AND $b",
            "SELECT DISTINCT c_nationkey FROM customer",
            "SELECT * FROM a JOIN b ON a.x = b.x",
            "SELECT x FROM (SELECT y AS x FROM t CURRENCY BOUND 5 SEC ON (t)) q",
            "INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)",
            "UPDATE t SET a = a + 1, b = 'x' WHERE c IS NOT NULL",
            "DELETE FROM t WHERE a IN (1, 2, 3)",
            "CREATE TABLE t (a INT, b VARCHAR, PRIMARY KEY (a))",
            "CREATE INDEX ix ON t (b)",
            "CREATE CACHED VIEW v REGION cr1 AS SELECT a FROM t",
            "BEGIN TIMEORDERED",
            "DROP CACHED VIEW old_view",
            "CREATE REGION r INTERVAL 10 SEC DELAY 2 SEC",
            "END TIMEORDERED",
            "SELECT * FROM t CURRENCY BOUND 10 MIN ON (t) BY t.id",
            "SELECT * FROM t WHERE ts > GETDATE() - 5000",
            "CREATE TEMPLATE pay ($c, $amt) AS SELECT c_acctbal FROM customer WHERE c_custkey = $c CURRENCY BOUND 10 SEC ON (customer); UPDATE customer SET c_acctbal = $amt WHERE c_custkey = $c; END",
            "AUDIT TEMPLATES",
            "EXPLAIN FLOW SELECT c_name FROM customer CURRENCY BOUND 30 SEC ON (customer)",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn currency_units_render_compactly() {
        let s = parse_statement("SELECT * FROM t CURRENCY BOUND 600 SEC ON (t)").unwrap();
        assert!(statement_sql(&s).contains("10 MIN"));
        let s = parse_statement("SELECT * FROM t CURRENCY BOUND 1500 MS ON (t)").unwrap();
        assert!(statement_sql(&s).contains("1500 MS"));
    }

    #[test]
    fn aliases_rendered() {
        let s = parse_statement("SELECT c.c_name AS name FROM customer c").unwrap();
        let sql = statement_sql(&s);
        assert!(sql.contains("AS name"));
        assert!(sql.contains("customer c"));
    }

    #[test]
    fn redundant_self_alias_skipped() {
        let s = parse_statement("SELECT * FROM customer customer").unwrap();
        assert_eq!(statement_sql(&s), "SELECT * FROM customer");
    }
}
