//! SQL lexer.

use rcc_common::{Error, Result};
use std::fmt;

/// A lexical token with its starting byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset into the source where the token starts.
    pub pos: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// their canonical upper-case spelling inside `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word (`SELECT`, `CURRENCY`, ...).
    Keyword(String),
    /// An unquoted identifier, lower-cased.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// A `$name` query parameter.
    Param(String),
    /// `=`, `<>`, `<`, `<=`, `>`, `>=`.
    Op(String),
    /// `+ - * /`.
    Arith(char),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `;`.
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(i) => write!(f, "{i}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Param(p) => write!(f, "${p}"),
            TokenKind::Op(o) => write!(f, "{o}"),
            TokenKind::Arith(c) => write!(f, "{c}"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// Every word treated as a keyword by the parser. Includes the currency
/// clause vocabulary from the paper (`CURRENCY`, `BOUND`, `ON`, `BY`, time
/// units) and the session brackets (`TIMEORDERED`).
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "IN",
    "EXISTS",
    "BETWEEN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "DISTINCT",
    "LIMIT",
    "ASC",
    "DESC",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "INDEX",
    "VIEW",
    "CACHED",
    "PRIMARY",
    "KEY",
    "INT",
    "FLOAT",
    "VARCHAR",
    "BOOL",
    "TIMESTAMP",
    "CURRENCY",
    "BOUND",
    "MS",
    "SEC",
    "SECOND",
    "SECONDS",
    "MIN",
    "MINUTE",
    "MINUTES",
    "HOUR",
    "HOURS",
    "BEGIN",
    "END",
    "TIMEORDERED",
    "REGION",
    "COUNT",
    "SUM",
    "AVG",
    "MAX",
    "GETDATE",
    "CLUSTERED",
    "DROP",
    "REFRESH",
    "INTERVAL",
    "DELAY",
    "VERIFY",
];

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos: i,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    pos: i,
                });
                i += 1;
            }
            '.' if !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    pos: i,
                });
                i += 1;
            }
            '+' | '*' | '/' => {
                tokens.push(Token {
                    kind: TokenKind::Arith(c),
                    pos: i,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Arith('-'),
                    pos: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Op("=".into()),
                    pos: i,
                });
                i += 1;
            }
            '<' => {
                let (op, adv) = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    ("<=", 2)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    ("<>", 2)
                } else {
                    ("<", 1)
                };
                tokens.push(Token {
                    kind: TokenKind::Op(op.into()),
                    pos: i,
                });
                i += adv;
            }
            '>' => {
                let (op, adv) = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    (">=", 2)
                } else {
                    (">", 1)
                };
                tokens.push(Token {
                    kind: TokenKind::Op(op.into()),
                    pos: i,
                });
                i += adv;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Op("<>".into()),
                    pos: i,
                });
                i += 2;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Lex {
                            pos: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            '$' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if begin == i {
                    return Err(Error::Lex {
                        pos: start,
                        message: "empty parameter name".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Param(input[begin..i].to_ascii_lowercase()),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                {
                    if bytes[i] == b'.' {
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let kind = if saw_dot {
                    TokenKind::Float(text.parse().map_err(|_| Error::Lex {
                        pos: start,
                        message: format!("bad float literal '{text}'"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| Error::Lex {
                        pos: start,
                        message: format!("bad integer literal '{text}'"),
                    })?)
                };
                tokens.push(Token { kind, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_ascii_lowercase())
                };
                tokens.push(Token { kind, pos: start });
            }
            other => {
                return Err(Error::Lex {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("SELECT c_name FROM Customer");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("c_name".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("customer".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword("SELECT".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        assert_eq!(kinds(".5")[0], TokenKind::Float(0.5));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'o''brien'")[0], TokenKind::Str("o'brien".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        let ks = kinds("a <= b <> c >= d != e < f > g = h");
        let ops: Vec<String> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Op(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["<=", "<>", ">=", "<>", "<", ">", "="]);
    }

    #[test]
    fn params() {
        assert_eq!(kinds("$K")[0], TokenKind::Param("k".into()));
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn currency_clause_tokens() {
        let ks = kinds("CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn");
        assert_eq!(ks[0], TokenKind::Keyword("CURRENCY".into()));
        assert_eq!(ks[1], TokenKind::Keyword("BOUND".into()));
        assert_eq!(ks[2], TokenKind::Int(10));
        assert_eq!(ks[3], TokenKind::Keyword("MIN".into()));
        assert!(ks.contains(&TokenKind::Keyword("BY".into())));
        assert!(ks.contains(&TokenKind::Dot));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- the projection\n 1");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1], TokenKind::Int(1));
    }

    #[test]
    fn punctuation_and_arith() {
        let ks = kinds("(a, b); a.b + 1 - 2 * 3 / 4");
        assert!(ks.contains(&TokenKind::LParen));
        assert!(ks.contains(&TokenKind::Comma));
        assert!(ks.contains(&TokenKind::Semi));
        assert!(ks.contains(&TokenKind::Dot));
        for c in ['+', '-', '*', '/'] {
            assert!(ks.contains(&TokenKind::Arith(c)));
        }
    }

    #[test]
    fn unexpected_char_errors_with_position() {
        let err = tokenize("SELECT #").unwrap_err();
        match err {
            Error::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn positions_recorded() {
        let ts = tokenize("SELECT a").unwrap();
        assert_eq!(ts[0].pos, 0);
        assert_eq!(ts[1].pos, 7);
    }
}
