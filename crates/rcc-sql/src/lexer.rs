//! SQL lexer.

use rcc_common::{Error, Result};
use std::fmt;

/// A lexical token with its starting source position (for error messages
/// and lint-diagnostic spans).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset into the source where the token starts.
    pub pos: usize,
    /// 1-based source line where the token starts (filled by [`tokenize`]).
    pub line: u32,
    /// 1-based column where the token starts (filled by [`tokenize`]).
    pub col: u32,
}

impl Token {
    /// A token at `pos` whose line/column are resolved later in one pass
    /// over the source (see [`tokenize`]).
    fn new(kind: TokenKind, pos: usize) -> Token {
        Token {
            kind,
            pos,
            line: 0,
            col: 0,
        }
    }
}

/// Resolve a byte offset to a 1-based (line, column) pair.
pub fn line_col(src: &str, byte: usize) -> (u32, u32) {
    let (mut line, mut col) = (1u32, 1u32);
    for (i, c) in src.char_indices() {
        if i >= byte {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Build an [`Error::Lex`] carrying both the byte offset and its resolved
/// line/column.
fn lex_err(input: &str, pos: usize, message: String) -> Error {
    let (line, col) = line_col(input, pos);
    Error::Lex {
        pos,
        line,
        col,
        message,
    }
}

/// Token kinds. Keywords are recognized case-insensitively and carried as
/// their canonical upper-case spelling inside `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word (`SELECT`, `CURRENCY`, ...).
    Keyword(String),
    /// An unquoted identifier, lower-cased.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// A `$name` query parameter.
    Param(String),
    /// `=`, `<>`, `<`, `<=`, `>`, `>=`.
    Op(String),
    /// `+ - * /`.
    Arith(char),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `;`.
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(i) => write!(f, "{i}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Param(p) => write!(f, "${p}"),
            TokenKind::Op(o) => write!(f, "{o}"),
            TokenKind::Arith(c) => write!(f, "{c}"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// Every word treated as a keyword by the parser. Includes the currency
/// clause vocabulary from the paper (`CURRENCY`, `BOUND`, `ON`, `BY`, time
/// units) and the session brackets (`TIMEORDERED`).
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "IN",
    "EXISTS",
    "BETWEEN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "JOIN",
    "INNER",
    "LEFT",
    "OUTER",
    "ON",
    "DISTINCT",
    "LIMIT",
    "ASC",
    "DESC",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "INDEX",
    "VIEW",
    "CACHED",
    "PRIMARY",
    "KEY",
    "INT",
    "FLOAT",
    "VARCHAR",
    "BOOL",
    "TIMESTAMP",
    "CURRENCY",
    "BOUND",
    "MS",
    "SEC",
    "SECOND",
    "SECONDS",
    "MIN",
    "MINUTE",
    "MINUTES",
    "HOUR",
    "HOURS",
    "BEGIN",
    "END",
    "TIMEORDERED",
    "REGION",
    "COUNT",
    "SUM",
    "AVG",
    "MAX",
    "GETDATE",
    "CLUSTERED",
    "DROP",
    "REFRESH",
    "INTERVAL",
    "DELAY",
    "VERIFY",
    "LINT",
    "SHOW",
    "TEMPLATE",
    "TEMPLATES",
    "AUDIT",
    "EXPLAIN",
    "FLOW",
];

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::new(TokenKind::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push(Token::new(TokenKind::RParen, i));
                i += 1;
            }
            ',' => {
                tokens.push(Token::new(TokenKind::Comma, i));
                i += 1;
            }
            ';' => {
                tokens.push(Token::new(TokenKind::Semi, i));
                i += 1;
            }
            '.' if !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) => {
                tokens.push(Token::new(TokenKind::Dot, i));
                i += 1;
            }
            '+' | '*' | '/' => {
                tokens.push(Token::new(TokenKind::Arith(c), i));
                i += 1;
            }
            '-' => {
                tokens.push(Token::new(TokenKind::Arith('-'), i));
                i += 1;
            }
            '=' => {
                tokens.push(Token::new(TokenKind::Op("=".into()), i));
                i += 1;
            }
            '<' => {
                let (op, adv) = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    ("<=", 2)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    ("<>", 2)
                } else {
                    ("<", 1)
                };
                tokens.push(Token::new(TokenKind::Op(op.into()), i));
                i += adv;
            }
            '>' => {
                let (op, adv) = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    (">=", 2)
                } else {
                    (">", 1)
                };
                tokens.push(Token::new(TokenKind::Op(op.into()), i));
                i += adv;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token::new(TokenKind::Op("<>".into()), i));
                i += 2;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(lex_err(input, start, "unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token::new(TokenKind::Str(s), start));
            }
            '$' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if begin == i {
                    return Err(lex_err(input, start, "empty parameter name".into()));
                }
                tokens.push(Token::new(
                    TokenKind::Param(input[begin..i].to_ascii_lowercase()),
                    start,
                ));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut saw_dot = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || (bytes[i] == b'.' && !saw_dot))
                {
                    if bytes[i] == b'.' {
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let kind = if saw_dot {
                    TokenKind::Float(text.parse().map_err(|_| {
                        lex_err(input, start, format!("bad float literal '{text}'"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        lex_err(input, start, format!("bad integer literal '{text}'"))
                    })?)
                };
                tokens.push(Token::new(kind, start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_ascii_lowercase())
                };
                tokens.push(Token::new(kind, start));
            }
            other => return Err(lex_err(input, i, format!("unexpected character '{other}'"))),
        }
    }
    tokens.push(Token::new(TokenKind::Eof, input.len()));
    // Resolve line/column for every token in one forward pass (tokens are
    // already sorted by byte offset).
    let (mut line, mut col, mut at) = (1u32, 1u32, 0usize);
    let mut chars = input.char_indices().peekable();
    for t in &mut tokens {
        while let Some(&(i, c)) = chars.peek() {
            if i >= t.pos {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            at = i + c.len_utf8();
            chars.next();
        }
        debug_assert!(at <= t.pos);
        t.line = line;
        t.col = col;
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("SELECT c_name FROM Customer");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("c_name".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("customer".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword("SELECT".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        assert_eq!(kinds(".5")[0], TokenKind::Float(0.5));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'o''brien'")[0], TokenKind::Str("o'brien".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        let ks = kinds("a <= b <> c >= d != e < f > g = h");
        let ops: Vec<String> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Op(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["<=", "<>", ">=", "<>", "<", ">", "="]);
    }

    #[test]
    fn params() {
        assert_eq!(kinds("$K")[0], TokenKind::Param("k".into()));
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn currency_clause_tokens() {
        let ks = kinds("CURRENCY BOUND 10 MIN ON (b, r) BY b.isbn");
        assert_eq!(ks[0], TokenKind::Keyword("CURRENCY".into()));
        assert_eq!(ks[1], TokenKind::Keyword("BOUND".into()));
        assert_eq!(ks[2], TokenKind::Int(10));
        assert_eq!(ks[3], TokenKind::Keyword("MIN".into()));
        assert!(ks.contains(&TokenKind::Keyword("BY".into())));
        assert!(ks.contains(&TokenKind::Dot));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- the projection\n 1");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1], TokenKind::Int(1));
    }

    #[test]
    fn punctuation_and_arith() {
        let ks = kinds("(a, b); a.b + 1 - 2 * 3 / 4");
        assert!(ks.contains(&TokenKind::LParen));
        assert!(ks.contains(&TokenKind::Comma));
        assert!(ks.contains(&TokenKind::Semi));
        assert!(ks.contains(&TokenKind::Dot));
        for c in ['+', '-', '*', '/'] {
            assert!(ks.contains(&TokenKind::Arith(c)));
        }
    }

    #[test]
    fn unexpected_char_errors_with_position() {
        let err = tokenize("SELECT #").unwrap_err();
        match err {
            Error::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn positions_recorded() {
        let ts = tokenize("SELECT a").unwrap();
        assert_eq!(ts[0].pos, 0);
        assert_eq!(ts[1].pos, 7);
    }

    #[test]
    fn line_and_column_recorded() {
        let ts = tokenize("SELECT a\n  FROM t").unwrap();
        let from = ts
            .iter()
            .find(|t| t.kind == TokenKind::Keyword("FROM".into()))
            .unwrap();
        assert_eq!((from.line, from.col), (2, 3));
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!(line_col("ab\ncd", 4), (2, 2));
    }

    #[test]
    fn lex_error_carries_line_and_column() {
        let err = tokenize("SELECT a\n  # b").unwrap_err();
        match err {
            Error::Lex { line, col, .. } => assert_eq!((line, col), (2, 3)),
            other => panic!("wrong error {other:?}"),
        }
    }
}
