//! Negative-path parser tests for the currency clause: malformed clauses
//! must fail with positioned, actionable errors — not panic, not parse to
//! something surprising.

use rcc_common::Error;
use rcc_sql::parse_statement;

fn parse_err(sql: &str) -> String {
    match parse_statement(sql) {
        Err(e) => e.to_string(),
        Ok(stmt) => panic!("expected a parse error for {sql:?}, got {stmt:?}"),
    }
}

#[test]
fn duplicate_by_column_rejected() {
    let msg = parse_err(
        "SELECT c_name FROM customer c \
         CURRENCY BOUND 10 MIN ON (c) BY c.c_custkey, c.c_custkey",
    );
    assert!(msg.contains("duplicate BY column"), "{msg}");
    assert!(msg.contains("c.c_custkey"), "{msg}");
}

#[test]
fn duplicate_unqualified_by_column_rejected() {
    let msg = parse_err(
        "SELECT c_name FROM customer \
         CURRENCY BOUND 10 MIN ON (customer) BY c_custkey, c_custkey",
    );
    assert!(msg.contains("duplicate BY column"), "{msg}");
}

#[test]
fn empty_consistency_class_rejected() {
    let msg = parse_err("SELECT c_name FROM customer CURRENCY BOUND 10 MIN ON ()");
    assert!(msg.contains("empty consistency class"), "{msg}");
}

#[test]
fn bound_overflow_rejected() {
    // i64 milliseconds overflow: must be a parse error, not a panic or a
    // silently wrapped bound.
    let msg = parse_err(
        "SELECT c_name FROM customer \
         CURRENCY BOUND 99999999999999999 HOUR ON (customer)",
    );
    assert!(msg.contains("overflows"), "{msg}");
}

#[test]
fn huge_but_valid_bound_accepted() {
    parse_statement("SELECT c_name FROM customer CURRENCY BOUND 1000000 HOUR ON (customer)")
        .expect("a large in-range bound must parse");
}

#[test]
fn clause_in_non_final_position_rejected() {
    // The clause scopes like WHERE but must come last in its block; a
    // GROUP BY after it is trailing input.
    let msg = parse_err(
        "SELECT c_nationkey FROM customer \
         CURRENCY BOUND 10 MIN ON (customer) GROUP BY c_nationkey",
    );
    assert!(msg.contains("trailing input"), "{msg}");
}

#[test]
fn clause_before_where_rejected() {
    let msg = parse_err(
        "SELECT c_name FROM customer \
         CURRENCY BOUND 10 MIN ON (customer) WHERE c_custkey = 1",
    );
    assert!(msg.contains("trailing input"), "{msg}");
}

#[test]
fn parse_errors_carry_line_and_column() {
    let err = match parse_statement("SELECT c_name FROM customer\n  CURRENCY BOUND 10 MIN ON ()") {
        Err(e) => e,
        Ok(s) => panic!("expected error, got {s:?}"),
    };
    match err {
        Error::Parse { line, col, .. } => {
            assert_eq!(line, 2, "{err}");
            assert!(col > 1, "{err}");
        }
        other => panic!("expected Error::Parse, got {other:?}"),
    }
    assert!(err.to_string().contains("line 2"), "{err}");
}

#[test]
fn lint_requires_select() {
    let msg = parse_err("LINT INSERT INTO t (a) VALUES (1)");
    assert!(msg.contains("LINT expects a SELECT"), "{msg}");
}
