//! Property tests for the SQL front end: generated queries must survive
//! `parse → unparse → parse → unparse` with a stable fixpoint, and the
//! currency clause must round-trip exactly.

use proptest::prelude::*;
use rcc_sql::unparse::statement_sql;
use rcc_sql::{parse_statement, Statement};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        ![
            "select",
            "from",
            "where",
            "group",
            "order",
            "by",
            "having",
            "as",
            "and",
            "or",
            "not",
            "in",
            "exists",
            "between",
            "is",
            "null",
            "true",
            "false",
            "join",
            "inner",
            "left",
            "outer",
            "on",
            "distinct",
            "limit",
            "asc",
            "desc",
            "insert",
            "into",
            "values",
            "update",
            "set",
            "delete",
            "create",
            "table",
            "index",
            "view",
            "cached",
            "primary",
            "key",
            "int",
            "float",
            "varchar",
            "bool",
            "timestamp",
            "currency",
            "bound",
            "ms",
            "sec",
            "second",
            "seconds",
            "min",
            "minute",
            "minutes",
            "hour",
            "hours",
            "begin",
            "end",
            "timeordered",
            "region",
            "count",
            "sum",
            "avg",
            "max",
            "getdate",
            "clustered",
            "drop",
            "refresh",
        ]
        .contains(&s.as_str())
    })
}

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        (-1000i64..1000).prop_map(|i| i.to_string()),
        (0i64..1000).prop_map(|i| format!("{i}.5")),
        "[a-z]{0,6}".prop_map(|s| format!("'{s}'")),
        Just("NULL".to_string()),
        Just("TRUE".to_string()),
    ]
}

fn comparison() -> impl Strategy<Value = String> {
    (
        ident(),
        prop_oneof![
            Just("="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">="),
            Just("<>")
        ],
        literal(),
    )
        .prop_map(|(c, op, l)| format!("{c} {op} {l}"))
}

fn predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        comparison(),
        (comparison(), comparison()).prop_map(|(a, b)| format!("{a} AND {b}")),
        (comparison(), comparison()).prop_map(|(a, b)| format!("({a} OR {b})")),
        (ident(), literal(), literal()).prop_map(|(c, a, b)| format!("{c} BETWEEN {a} AND {b}")),
        (ident(), literal()).prop_map(|(c, l)| format!("{c} IN ({l}, {l})")),
        ident().prop_map(|c| format!("{c} IS NOT NULL")),
    ]
}

fn currency_clause() -> impl Strategy<Value = String> {
    let spec = (
        1i64..120,
        prop_oneof![Just("SEC"), Just("MIN"), Just("MS")],
        ident(),
        proptest::option::of(ident()),
    );
    proptest::collection::vec(spec, 1..3).prop_map(|specs| {
        let parts: Vec<String> = specs
            .into_iter()
            .map(|(n, unit, t, by)| {
                let by = by.map(|b| format!(" BY {t}.{b}")).unwrap_or_default();
                format!("{n} {unit} ON ({t}){by}")
            })
            .collect();
        format!("CURRENCY BOUND {}", parts.join(", "))
    })
}

fn query() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(ident(), 1..3),
        ident(),
        proptest::option::of(predicate()),
        proptest::option::of(currency_clause()),
        proptest::option::of(1u64..50),
    )
        .prop_map(|(cols, table, pred, clause, limit)| {
            let mut sql = format!("SELECT {} FROM {table}", cols.join(", "));
            if let Some(p) = pred {
                sql.push_str(&format!(" WHERE {p}"));
            }
            if let Some(n) = limit {
                sql.push_str(&format!(" LIMIT {n}"));
            }
            if let Some(c) = clause {
                sql.push_str(&format!(" {c}"));
            }
            sql
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn unparse_reaches_fixpoint(sql in query()) {
        let first = match parse_statement(&sql) {
            Ok(s) => s,
            Err(_) => return Ok(()), // generator may hit LIMIT-before-CURRENCY orderings etc.
        };
        let rendered = statement_sql(&first);
        let second = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed for {rendered}: {e}"));
        let third = statement_sql(&second);
        prop_assert_eq!(rendered, third);
    }

    #[test]
    fn currency_clause_roundtrips_exactly(sql in query()) {
        let Ok(Statement::Select(a)) = parse_statement(&sql) else { return Ok(()) };
        let rendered = statement_sql(&Statement::Select(a.clone()));
        let Ok(Statement::Select(b)) = parse_statement(&rendered) else {
            panic!("re-parse failed: {rendered}")
        };
        prop_assert_eq!(a.currency, b.currency);
        prop_assert_eq!(a.limit, b.limit);
        prop_assert_eq!(a.distinct, b.distinct);
    }

    #[test]
    fn parser_never_panics(garbage in "[ -~]{0,80}") {
        let _ = parse_statement(&garbage); // must return Err, not panic
    }
}
