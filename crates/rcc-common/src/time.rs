//! Simulated and wall clocks.
//!
//! All replication machinery (distribution agents, heartbeats, currency
//! guards) reads time through the [`Clock`] trait so experiments can run on
//! a deterministic, discrete-event [`SimClock`] while the guard-overhead
//! benchmarks (paper Tables 4.4/4.5) use the real [`WallClock`].
//!
//! The canonical tick is one **millisecond**. The paper's experiments quote
//! region intervals/delays and currency bounds in abstract "time units"
//! (seconds in the prose); helpers like [`Duration::from_secs`] keep
//! experiment code readable.

use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A point in time, in milliseconds since the clock's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Millisecond ticks since epoch.
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Time elapsed since `earlier`; saturates at zero if `earlier` is in
    /// the future (e.g. mild clock skew).
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0).max(0))
    }

    /// This timestamp advanced by `d`.
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }

    /// This timestamp moved back by `d`, saturating at the epoch.
    pub fn minus(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A span of time in milliseconds. Currency bounds, propagation intervals
/// and delays are all `Duration`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Duration {
    /// Zero-length duration (the default currency bound: data must be
    /// completely current).
    pub const ZERO: Duration = Duration(0);

    /// An effectively infinite bound ("any staleness accepted").
    pub const MAX: Duration = Duration(i64::MAX / 4);

    /// From milliseconds.
    pub fn from_millis(ms: i64) -> Duration {
        Duration(ms)
    }

    /// From seconds.
    pub fn from_secs(s: i64) -> Duration {
        Duration(s * 1_000)
    }

    /// From minutes.
    pub fn from_mins(m: i64) -> Duration {
        Duration(m * 60_000)
    }

    /// From hours.
    pub fn from_hours(h: i64) -> Duration {
        Duration(h * 3_600_000)
    }

    /// Milliseconds in this duration.
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction, clamped at zero.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration((self.0 - other.0).max(0))
    }

    /// Sum of two durations.
    pub fn plus(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }

    /// Smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000 && self.0 % 60_000 == 0 {
            write!(f, "{}min", self.0 / 60_000)
        } else if self.0 >= 1_000 && self.0 % 1_000 == 0 {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// Source of "now", equivalent to SQL Server's `getdate()` in the paper's
/// currency-guard predicate.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time.
    fn now(&self) -> Timestamp;
}

/// Deterministic, manually advanced clock shared across the simulation.
///
/// Cloning yields a handle to the *same* underlying time, so the back-end,
/// the replication agents and the cache all observe one timeline.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicI64>,
}

impl SimClock {
    /// A clock starting at the epoch.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> SimClock {
        SimClock {
            now: Arc::new(AtomicI64::new(t.0)),
        }
    }

    /// Advance by `d` and return the new time.
    pub fn advance(&self, d: Duration) -> Timestamp {
        Timestamp(self.now.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }

    /// Jump to an absolute time; panics if that would move time backwards
    /// (the simulation invariant "time moves forward").
    pub fn set(&self, t: Timestamp) {
        let prev = self.now.swap(t.0, Ordering::SeqCst);
        assert!(
            prev <= t.0,
            "SimClock must not move backwards ({prev} -> {})",
            t.0
        );
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::SeqCst))
    }
}

/// Real wall-clock time, used by the overhead benchmarks.
#[derive(Debug, Clone, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        let dur = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default();
        Timestamp(dur.as_millis() as i64)
    }
}

/// Shared trait-object clock handle.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_convert_units() {
        assert_eq!(Duration::from_secs(2).millis(), 2000);
        assert_eq!(Duration::from_mins(3).millis(), 180_000);
        assert_eq!(Duration::from_hours(1).millis(), 3_600_000);
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(Duration::from_mins(10).to_string(), "10min");
        assert_eq!(Duration::from_secs(5).to_string(), "5s");
        assert_eq!(Duration::from_millis(1500).to_string(), "1500ms");
        assert_eq!(Duration::from_millis(7).to_string(), "7ms");
    }

    #[test]
    fn since_saturates() {
        let a = Timestamp(100);
        let b = Timestamp(40);
        assert_eq!(a.since(b), Duration(60));
        assert_eq!(b.since(a), Duration::ZERO);
    }

    #[test]
    fn sim_clock_shares_time_across_clones() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_secs(5));
        assert_eq!(c2.now(), Timestamp(5000));
        c2.advance(Duration::from_millis(1));
        assert_eq!(c.now(), Timestamp(5001));
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn sim_clock_rejects_backwards_set() {
        let c = SimClock::starting_at(Timestamp(10));
        c.set(Timestamp(5));
    }

    #[test]
    fn wall_clock_is_monotonic_enough() {
        let w = WallClock;
        let a = w.now();
        let b = w.now();
        assert!(b >= a);
        assert!(
            a.millis() > 1_600_000_000_000,
            "expected a post-2020 epoch time"
        );
    }

    #[test]
    fn duration_arith() {
        let d = Duration::from_secs(10);
        assert_eq!(
            d.saturating_sub(Duration::from_secs(4)),
            Duration::from_secs(6)
        );
        assert_eq!(Duration::from_secs(4).saturating_sub(d), Duration::ZERO);
        assert_eq!(d.plus(Duration::from_secs(1)), Duration::from_secs(11));
        assert_eq!(d.min(Duration::from_secs(3)), Duration::from_secs(3));
        assert!(Duration::ZERO.is_zero());
    }

    #[test]
    fn timestamp_arith() {
        let t = Timestamp(1000);
        assert_eq!(t.plus(Duration(500)), Timestamp(1500));
        assert_eq!(t.minus(Duration(400)), Timestamp(600));
    }
}
