#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Shared foundation types for the RCC (Relaxed Currency & Consistency)
//! mid-tier database cache, a reproduction of Guo et al., SIGMOD 2004.
//!
//! This crate holds the vocabulary the rest of the workspace speaks:
//! [`value::Value`] and [`value::DataType`] for SQL data, [`row::Row`] and
//! [`row::Schema`] for tuples, [`time`] for the simulated and wall clocks
//! that drive replication and heartbeats, [`ids`] for strongly typed object
//! identifiers, and [`error::Error`] for the workspace-wide error type.

pub mod error;
pub mod ids;
pub mod netmodel;
pub mod pool;
pub mod row;
pub mod time;
pub mod value;

pub use error::{Error, Result};
pub use ids::{AgentId, IndexId, RegionId, TableId, TxnId, ViewId};
pub use netmodel::NetworkModel;
pub use pool::{default_scan_workers, ScanPool};
pub use row::{Column, Row, Schema};
pub use time::{Clock, Duration, SimClock, Timestamp, WallClock};
pub use value::{DataType, Value};
