//! Strongly typed identifiers for catalog and replication objects.
//!
//! Using newtypes instead of bare `u32`/`u64` prevents the classic bug of
//! passing a table id where a region id is expected — which matters here
//! because the consistency machinery constantly pairs the two.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw numeric value.
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a base table in the master (back-end) database.
    ///
    /// Consistency properties always refer to base tables (Sec. 3.2.1 of the
    /// paper: "Consistency properties always refer to base tables"), so this
    /// id is the atom of the whole property algebra.
    TableId,
    "T"
);
define_id!(
    /// Identifies a materialized view cached at the mid-tier cache DBMS.
    ViewId,
    "V"
);
define_id!(
    /// Identifies a *currency region*: the set of cached views kept mutually
    /// consistent because they are maintained by the same distribution agent
    /// (Sec. 3.1).
    RegionId,
    "CR"
);
define_id!(
    /// Identifies a secondary or clustered index.
    IndexId,
    "I"
);
define_id!(
    /// Identifies a replication distribution agent.
    AgentId,
    "A"
);

/// Commit timestamp of an update transaction on the master database.
///
/// The paper's appendix assigns committing transactions increasing integer
/// ids ("timestamps"); `TxnId` is exactly that. `TxnId(0)` denotes the
/// initial database state before any update committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The initial (pre-history) state.
    pub const ZERO: TxnId = TxnId(0);

    /// The next transaction id.
    pub fn next(self) -> TxnId {
        TxnId(self.0 + 1)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(RegionId(1).to_string(), "CR1");
        assert_eq!(ViewId(9).to_string(), "V9");
        assert_eq!(IndexId(2).to_string(), "I2");
        assert_eq!(AgentId(7).to_string(), "A7");
        assert_eq!(TxnId(12).to_string(), "txn12");
    }

    #[test]
    fn txn_ids_order_and_advance() {
        let t = TxnId::ZERO;
        assert!(t < t.next());
        assert_eq!(t.next().next(), TxnId(2));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<TableId> = [TableId(1), TableId(2), TableId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
