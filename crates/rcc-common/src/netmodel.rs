//! The network model: who pays for the cache ↔ back-end round trip.
//!
//! The experiments originally ran cache and back-end in one process and
//! charged remote plans a *simulated* latency (a fixed per-round-trip cost
//! plus a per-KiB shipping cost). With a real TCP transport in the picture
//! those knobs become dangerous: a back-end served over a socket already
//! pays genuine connect/serialize/ship time, and adding the simulated
//! delay on top double-counts the network. `NetworkModel` makes the choice
//! explicit and single-sourced — every component that used to read the two
//! raw `latency_*` knobs now asks the model, and the TCP transport pins the
//! model to [`NetworkModel::Real`] so simulation can never stack on top of
//! real sockets.

use crate::time;

/// How remote round-trip latency is accounted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkModel {
    /// The transport is a real network (or at least a real socket): do not
    /// inject any artificial delay — wall clocks observe the true cost.
    Real,
    /// In-process transport with simulated latency: each round trip costs
    /// `fixed_us` microseconds plus `per_kib_us` microseconds per KiB of
    /// result payload. `Simulated { fixed_us: 0, per_kib_us: 0 }` models a
    /// free network (the default, appropriate for correctness tests).
    Simulated {
        /// Fixed microseconds charged per round trip.
        fixed_us: u64,
        /// Microseconds charged per KiB of result payload shipped.
        per_kib_us: u64,
    },
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::Simulated {
            fixed_us: 0,
            per_kib_us: 0,
        }
    }
}

impl NetworkModel {
    /// The injected delay for shipping a `result_bytes`-byte payload.
    /// Always zero for [`NetworkModel::Real`].
    pub fn delay_for(&self, result_bytes: usize) -> time::Duration {
        match self {
            NetworkModel::Real => time::Duration::ZERO,
            NetworkModel::Simulated {
                fixed_us,
                per_kib_us,
            } => {
                if *fixed_us == 0 && *per_kib_us == 0 {
                    time::Duration::ZERO
                } else {
                    let micros = fixed_us + per_kib_us * (result_bytes as u64 / 1024);
                    time::Duration::from_millis((micros / 1000) as i64)
                }
            }
        }
    }

    /// The injected delay in whole microseconds (what busy-wait loops
    /// actually consume; [`NetworkModel::delay_for`] rounds to the
    /// simulated clock's millisecond granularity).
    pub fn delay_micros(&self, result_bytes: usize) -> u64 {
        match self {
            NetworkModel::Real => 0,
            NetworkModel::Simulated {
                fixed_us,
                per_kib_us,
            } => fixed_us + per_kib_us * (result_bytes as u64 / 1024),
        }
    }

    /// Does this model inject any artificial latency at all?
    pub fn is_simulated(&self) -> bool {
        matches!(
            self,
            NetworkModel::Simulated { fixed_us, per_kib_us }
                if *fixed_us > 0 || *per_kib_us > 0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_never_delays() {
        let m = NetworkModel::Real;
        assert_eq!(m.delay_micros(0), 0);
        assert_eq!(m.delay_micros(1 << 20), 0);
        assert!(!m.is_simulated());
    }

    #[test]
    fn simulated_charges_fixed_plus_per_kib() {
        let m = NetworkModel::Simulated {
            fixed_us: 150,
            per_kib_us: 20,
        };
        assert_eq!(m.delay_micros(0), 150);
        assert_eq!(m.delay_micros(1023), 150);
        assert_eq!(m.delay_micros(4096), 150 + 80);
        assert!(m.is_simulated());
    }

    #[test]
    fn default_is_free_simulation() {
        let m = NetworkModel::default();
        assert_eq!(m.delay_micros(1 << 20), 0);
        assert!(!m.is_simulated());
    }
}
