//! SQL values and data types.

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// The SQL data types supported by the engine.
///
/// This is the subset needed by the paper's workloads (TPC-D Customer and
/// Orders projections, heartbeat tables) plus booleans for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (used for `c_acctbal`, `o_totalprice`).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean, produced by predicates.
    Bool,
    /// A point on the (simulated) timeline, stored as integer ticks.
    /// Heartbeat tables hold these.
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single SQL value.
///
/// `Value` implements a *total* order (needed for BTree index keys): `NULL`
/// sorts first, numeric types compare by value with `Int`/`Float` unified,
/// and `NaN` floats sort after all other floats so ordering never panics.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Timestamp in clock ticks (milliseconds of simulated or wall time).
    Timestamp(i64),
}

impl Value {
    /// The data type of this value, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, coercing from float/bool where lossless-ish.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Timestamp(t) => Ok(*t),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(Error::Type(format!("expected INT, got {other}"))),
        }
    }

    /// Extract a float, coercing from int.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::Type(format!("expected FLOAT, got {other}"))),
        }
    }

    /// Extract a boolean. NULL is *not* accepted; use
    /// [`Value::is_truthy`] for three-valued WHERE evaluation.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::Type(format!("expected BOOL, got {other}"))),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::Type(format!("expected VARCHAR, got {other}"))),
        }
    }

    /// SQL WHERE-clause truth: TRUE is truthy; FALSE and NULL are not.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL three-valued comparison: returns `None` if either side is NULL.
    ///
    /// Numeric types compare cross-type (`Int` vs `Float`); any other type
    /// mixture is a type error surfaced as `None` ordering at evaluation
    /// sites that tolerate it, or an explicit error via [`Value::compare`].
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Strict comparison that rejects incomparable types.
    pub fn compare(&self, other: &Value) -> Result<Option<Ordering>> {
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        match (self, other) {
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
            | (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
            | (Value::Timestamp(_), Value::Timestamp(_))
            | (Value::Timestamp(_), Value::Int(_))
            | (Value::Int(_), Value::Timestamp(_)) => Ok(Some(self.total_cmp(other))),
            _ => Err(Error::Type(format!("cannot compare {self} with {other}"))),
        }
    }

    /// Total order used by indexes and sorting. NULL < everything; values of
    /// different type classes order by a fixed type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = numeric(a);
                let fb = numeric(b);
                fa.total_cmp(&fb)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Approximate serialized width in bytes, used by the cost model to
    /// estimate bytes shipped from the back-end.
    pub fn byte_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

fn numeric(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Timestamp(t) => *t as f64,
        _ => f64::NAN,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int/Float/Timestamp must hash identically when equal under
            // total_cmp, so hash through the f64 bit pattern of the numeric
            // value.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Timestamp(t) => {
                2u8.hash(state);
                (*t as f64).to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Value::Timestamp(t) => write!(f, "ts({t})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str("".into()));
        assert!(Value::Null < Value::Bool(false));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.9) < Value::Int(3));
        assert_eq!(
            Value::Timestamp(5).total_cmp(&Value::Int(5)),
            Ordering::Equal
        );
    }

    #[test]
    fn nan_sorts_after_numbers() {
        assert!(Value::Float(f64::NAN) > Value::Float(f64::MAX));
        assert!(Value::Float(f64::NAN) > Value::Int(i64::MAX));
    }

    #[test]
    fn sql_cmp_returns_none_on_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn compare_rejects_mixed_types() {
        assert!(Value::Int(1).compare(&Value::Str("a".into())).is_err());
        assert!(Value::Bool(true).compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn equal_values_hash_equal_across_numeric_types() {
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn truthiness_is_three_valued() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }

    #[test]
    fn display_escapes_strings() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
    }

    #[test]
    fn byte_width_models_varlen_strings() {
        assert_eq!(Value::Int(1).byte_width(), 8);
        assert_eq!(Value::Str("abcd".into()).byte_width(), 8);
        assert_eq!(Value::Null.byte_width(), 1);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(4).as_float().unwrap(), 4.0);
        assert_eq!(Value::Timestamp(9).as_int().unwrap(), 9);
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(DataType::Str.to_string(), "VARCHAR");
    }
}
