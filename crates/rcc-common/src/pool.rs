//! A small fixed worker pool for morsel-driven parallel scans.
//!
//! Deliberately simple, in the spirit of the morsel-driven parallelism
//! literature's dispatcher: a fixed set of std threads pulls jobs off one
//! shared FIFO channel (no work stealing — morsels are sized so the queue
//! itself balances load), and [`ScanPool::scatter`] fans a batch of
//! closures out and collects their results **in input order**, which is
//! what lets the executor concatenate morsel outputs into a result
//! bit-identical to the serial scan.
//!
//! The pool is shared and long-lived (one per cache/server, not per
//! query): `scatter` is `&self` and internally synchronized, so any number
//! of sessions can dispatch concurrently and their morsels interleave on
//! the same workers.

use parking_lot::Mutex;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Upper bound on the default pool size; scans here are memory-bound well
/// before this many cores help.
const MAX_DEFAULT_WORKERS: usize = 8;

/// Default worker count: the machine's available parallelism, capped.
pub fn default_scan_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(MAX_DEFAULT_WORKERS)
}

/// Fixed-size worker pool executing scan morsels from a shared FIFO queue.
pub struct ScanPool {
    /// `Some` until drop; closing the channel is the shutdown signal.
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ScanPool {
    /// Spawn a pool of `size` workers (clamped to ≥ 1).
    pub fn new(size: usize) -> ScanPool {
        let size = size.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("rcc-scan-{i}"))
                    .spawn(move || {
                        loop {
                            // Hold the lock across recv: exactly one idle
                            // worker waits on the channel, the rest queue on
                            // the mutex — a plain shared chunk queue.
                            let job = rx.lock().recv();
                            match job {
                                Ok(job) => job(),
                                Err(_) => break, // pool dropped
                            }
                        }
                    })
                    .expect("spawn scan worker")
            })
            .collect();
        ScanPool {
            sender: Some(tx),
            workers,
            size,
        }
    }

    /// Spawn a pool sized by [`default_scan_workers`].
    pub fn with_default_size() -> ScanPool {
        ScanPool::new(default_scan_workers())
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run every job on the pool and return the results **in input order**
    /// (job `i`'s result at index `i`, regardless of completion order).
    /// Blocks until all jobs finish. If a job panics, the panic is
    /// re-raised on the calling thread after the pool itself has been kept
    /// consistent (workers catch job panics and keep serving).
    pub fn scatter<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        let sender = self.sender.as_ref().expect("scan pool alive");
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let boxed: Job = Box::new(move || {
                // AssertUnwindSafe: on panic the job's partial state is
                // discarded wholesale and the panic re-raised at the
                // caller, so no broken invariant is ever observed.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                let _ = tx.send((i, r)); // caller gone ⇒ result discarded
            });
            sender.send(boxed).expect("scan workers alive");
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rx.recv().expect("scan worker reports every job");
            match r {
                Ok(v) => out[i] = Some(v),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out.into_iter()
            .map(|v| v.expect("every morsel indexed once"))
            .collect()
    }

    /// Like [`ScanPool::scatter`], but with one shared kernel applied to
    /// every item: job `i` computes `f(items[i])`. The kernel is captured
    /// once behind an `Arc` instead of being cloned per morsel, which
    /// matters when it owns a table snapshot or a compiled predicate.
    /// Results come back in input order; panics propagate like `scatter`.
    pub fn scatter_map<I, T, F>(&self, items: Vec<I>, f: Arc<F>) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        self.scatter(
            items
                .into_iter()
                .map(|item| {
                    let f = Arc::clone(&f);
                    move || f(item)
                })
                .collect(),
        )
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with RecvError.
        self.sender = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ScanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPool")
            .field("size", &self.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_input_order() {
        let pool = ScanPool::new(4);
        // jobs finish in shuffled order; results must come back by index
        let jobs: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * 2
                }
            })
            .collect();
        let out = pool.scatter(jobs);
        assert_eq!(out, (0..64u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_workers_all_run() {
        let pool = ScanPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let hits = Arc::clone(&hits);
                move || hits.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        pool.scatter(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_scatters_do_not_cross_wires() {
        let pool = Arc::new(ScanPool::new(3));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let jobs: Vec<_> = (0..32u64).map(|i| move || t * 1000 + i).collect();
                    let out = pool.scatter(jobs);
                    assert_eq!(out, (0..32u64).map(|i| t * 1000 + i).collect::<Vec<_>>());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = ScanPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("morsel exploded")),
            Box::new(|| 3),
        ];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.scatter(jobs)));
        assert!(r.is_err());
        // pool still serves after a job panic
        let out = pool.scatter(vec![|| 7u32, || 8u32]);
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn scatter_map_shares_one_kernel() {
        let pool = ScanPool::new(3);
        let calls = Arc::new(AtomicUsize::new(0));
        let kernel = {
            let calls = Arc::clone(&calls);
            Arc::new(move |i: u64| {
                calls.fetch_add(1, Ordering::Relaxed);
                i + 100
            })
        };
        let out = pool.scatter_map((0..50u64).collect(), kernel);
        assert_eq!(out, (0..50u64).map(|i| i + 100).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_size_clamps_to_one() {
        let pool = ScanPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.scatter(vec![|| 42]), vec![42]);
    }
}
