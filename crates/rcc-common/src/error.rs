//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all RCC crates.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced anywhere in the RCC stack.
///
/// The variants are grouped by pipeline stage so callers can react to the
/// class of failure (e.g. report a [`Error::CurrencyViolation`] to the
/// application with a warning instead of failing the query outright).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error while tokenizing SQL text.
    Lex {
        /// Byte offset into the source text.
        pos: usize,
        /// 1-based source line of the offending character (0 = unknown).
        line: u32,
        /// 1-based column of the offending character (0 = unknown).
        col: u32,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error while parsing SQL.
    Parse {
        /// Byte offset into the source text.
        pos: usize,
        /// 1-based source line of the offending token (0 = unknown).
        line: u32,
        /// 1-based column of the offending token (0 = unknown).
        col: u32,
        /// Human-readable description.
        message: String,
    },
    /// Name resolution / semantic analysis failure (unknown table, ambiguous
    /// column, type mismatch, ...).
    Analysis(String),
    /// A catalog object was not found.
    NotFound(String),
    /// A catalog object already exists.
    AlreadyExists(String),
    /// Type error during expression evaluation.
    Type(String),
    /// The optimizer could not produce any plan satisfying the query's
    /// consistency constraints (e.g. mutually-consistent views required but
    /// the only applicable views live in different currency regions and the
    /// back-end is unreachable).
    NoPlan(String),
    /// A currency or consistency constraint could not be met at run time and
    /// the session's violation policy is `Reject`.
    CurrencyViolation(String),
    /// The back-end server could not be reached or failed the request.
    Remote(String),
    /// The back-end transport is down: connect/read/write failures and
    /// per-call deadlines exhausted every retry. Unlike [`Error::Remote`]
    /// (which also covers the back-end *rejecting* a request it received),
    /// this variant means no answer is obtainable right now, so the cache
    /// applies the session's violation policy — fail the query or serve
    /// stale local data with a warning.
    Unavailable(String),
    /// Storage-level failure (duplicate key, missing index, ...).
    Storage(String),
    /// Execution-time failure not covered by the above.
    Execution(String),
    /// Invalid configuration (bad region parameters, zero heartbeat, ...).
    Config(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl Error {
    /// Shorthand for an [`Error::Analysis`] with a formatted message.
    pub fn analysis(msg: impl Into<String>) -> Self {
        Error::Analysis(msg.into())
    }

    /// Shorthand for an [`Error::Internal`] with a formatted message.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex {
                pos,
                line,
                col,
                message,
            } => {
                if *line > 0 {
                    write!(f, "lex error at line {line}, column {col}: {message}")
                } else {
                    write!(f, "lex error at byte {pos}: {message}")
                }
            }
            Error::Parse {
                pos,
                line,
                col,
                message,
            } => {
                if *line > 0 {
                    write!(f, "parse error at line {line}, column {col}: {message}")
                } else {
                    write!(f, "parse error at byte {pos}: {message}")
                }
            }
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::NoPlan(m) => write!(f, "no valid plan: {m}"),
            Error::CurrencyViolation(m) => write!(f, "currency/consistency violation: {m}"),
            Error::Remote(m) => write!(f, "remote error: {m}"),
            Error::Unavailable(m) => write!(f, "back-end unavailable: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::Parse {
            pos: 17,
            line: 0,
            col: 0,
            message: "expected FROM".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 17: expected FROM");
        let e = Error::Parse {
            pos: 17,
            line: 2,
            col: 4,
            message: "expected FROM".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 2, column 4: expected FROM"
        );
    }

    #[test]
    fn display_covers_all_variants() {
        let variants = vec![
            Error::Lex {
                pos: 0,
                line: 1,
                col: 1,
                message: "x".into(),
            },
            Error::Parse {
                pos: 0,
                line: 1,
                col: 1,
                message: "x".into(),
            },
            Error::Analysis("x".into()),
            Error::NotFound("x".into()),
            Error::AlreadyExists("x".into()),
            Error::Type("x".into()),
            Error::NoPlan("x".into()),
            Error::CurrencyViolation("x".into()),
            Error::Remote("x".into()),
            Error::Unavailable("x".into()),
            Error::Storage("x".into()),
            Error::Execution("x".into()),
            Error::Config("x".into()),
            Error::Internal("x".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::analysis("a"), Error::Analysis(_)));
        assert!(matches!(Error::internal("b"), Error::Internal(_)));
    }
}
