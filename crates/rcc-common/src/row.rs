//! Rows and schemas.

use crate::error::{Error, Result};
use crate::ids::TableId;
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A column description: name, type and (optional) originating base table.
///
/// The `source` link is what makes the consistency machinery work: delivered
/// consistency properties track *base tables* through arbitrary plan shapes,
/// so every column carries the id of the base table it was derived from (or
/// `None` for computed columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased at resolution time).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// Qualifier, e.g. the table alias this column is visible under.
    pub qualifier: Option<String>,
    /// The base table this column was derived from, if any.
    pub source: Option<TableId>,
}

impl Column {
    /// A column with no qualifier or source table.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            qualifier: None,
            source: None,
        }
    }

    /// Attach a qualifier (table alias).
    pub fn with_qualifier(mut self, q: impl Into<String>) -> Self {
        self.qualifier = Some(q.into());
        self
    }

    /// Attach the originating base table.
    pub fn with_source(mut self, t: TableId) -> Self {
        self.source = Some(t);
        self
    }

    /// Does `name` (optionally qualified as `qualifier.name`) refer to this
    /// column?
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .map(|cq| cq.eq_ignore_ascii_case(q))
                .unwrap_or(false),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{} {}", self.name, self.data_type),
            None => write!(f, "{} {}", self.name, self.data_type),
        }
    }
}

/// An ordered list of columns describing the tuples a table or operator
/// produces. Cheap to clone (Arc'd columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns: Arc::new(columns),
        }
    }

    /// The empty schema (zero columns), used by constant-only expressions.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column at ordinal `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Resolve a possibly-qualified column name to its ordinal.
    ///
    /// Errors on unknown or ambiguous references, mirroring SQL name
    /// resolution.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(qualifier, name) {
                if found.is_some() {
                    return Err(Error::Analysis(format!(
                        "ambiguous column reference '{}{}{}'",
                        qualifier.unwrap_or(""),
                        if qualifier.is_some() { "." } else { "" },
                        name
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            Error::Analysis(format!(
                "unknown column '{}{}{}'",
                qualifier.unwrap_or(""),
                if qualifier.is_some() { "." } else { "" },
                name
            ))
        })
    }

    /// Concatenate two schemas (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = Vec::with_capacity(self.len() + other.len());
        cols.extend_from_slice(self.columns());
        cols.extend_from_slice(other.columns());
        Schema::new(cols)
    }

    /// Project a subset of columns by ordinal.
    pub fn project(&self, ordinals: &[usize]) -> Schema {
        Schema::new(ordinals.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Re-qualify every column under a new alias (used when a subquery or
    /// view gets an alias in the FROM clause).
    pub fn with_qualifier(&self, q: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    c.qualifier = Some(q.to_string());
                    c
                })
                .collect(),
        )
    }

    /// Average serialized row width in bytes, assuming 16-byte strings.
    /// Used only for cost estimation.
    pub fn estimated_row_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.data_type {
                DataType::Str => 20,
                DataType::Bool => 1,
                _ => 8,
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A tuple of values. Rows are schema-less; interpretation is positional.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at ordinal `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the row has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Project values by ordinal.
    pub fn project(&self, ordinals: &[usize]) -> Row {
        Row::new(ordinals.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Serialized byte width (for remote-transfer accounting).
    pub fn byte_width(&self) -> usize {
        self.values.iter().map(Value::byte_width).sum()
    }

    /// Consume into values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_ab() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int).with_qualifier("t"),
            Column::new("b", DataType::Str).with_qualifier("t"),
        ])
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = schema_ab();
        assert_eq!(s.resolve(None, "a").unwrap(), 0);
        assert_eq!(s.resolve(Some("t"), "b").unwrap(), 1);
        assert_eq!(s.resolve(Some("T"), "B").unwrap(), 1, "case-insensitive");
        assert!(s.resolve(Some("u"), "a").is_err());
        assert!(s.resolve(None, "zzz").is_err());
    }

    #[test]
    fn resolve_detects_ambiguity() {
        let s = Schema::new(vec![
            Column::new("a", DataType::Int).with_qualifier("t"),
            Column::new("a", DataType::Int).with_qualifier("u"),
        ]);
        assert!(s.resolve(None, "a").is_err());
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 1);
    }

    #[test]
    fn join_concatenates() {
        let s = schema_ab().join(&schema_ab().with_qualifier("u"));
        assert_eq!(s.len(), 4);
        assert_eq!(s.resolve(Some("u"), "a").unwrap(), 2);
    }

    #[test]
    fn project_selects_ordinals() {
        let s = schema_ab().project(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.column(0).name, "b");
        let r = Row::new(vec![Value::Int(1), Value::from("x")]).project(&[1]);
        assert_eq!(r.get(0), &Value::from("x"));
    }

    #[test]
    fn row_concat_and_width() {
        let r = Row::new(vec![Value::Int(1)]).concat(&Row::new(vec![Value::from("abc")]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.byte_width(), 8 + 4 + 3);
    }

    #[test]
    fn source_table_tracked() {
        let c = Column::new("a", DataType::Int).with_source(TableId(5));
        assert_eq!(c.source, Some(TableId(5)));
    }

    #[test]
    fn estimated_width_uses_type_defaults() {
        assert_eq!(schema_ab().estimated_row_width(), 28);
    }
}
