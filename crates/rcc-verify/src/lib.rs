#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Static C&C plan-conformance analysis.
//!
//! The paper's enforcement story splits in two: *consistency* constraints
//! are discharged at compile time by the optimizer's property machinery
//! (`rcc-optimizer/src/property.rs`), and *currency* bounds at run time by
//! SwitchUnion guards. Nothing in that pipeline audits itself — a bug in
//! the delivered-property algebra would silently serve too-stale or
//! mutually-inconsistent rows while every test still passes.
//!
//! This crate is the independent auditor. It re-derives what a physical
//! plan can deliver **without sharing any code with the optimizer's
//! property derivation**: instead of the bottom-up group algebra of
//! `DeliveredProperty`, it enumerates the plan's *worlds* — one per
//! combination of currency-guard outcomes — and checks, world by world,
//! that the normalized constraint's classes are satisfied. Per plan it
//! discharges four proof obligations:
//!
//! 1. **single-source** — every consistency class reads all of its
//!    operands from one snapshot source (one region, or the back-end) in
//!    every reachable world;
//! 2. **bound-satisfiable** — every currency bound is met at compile time
//!    (back-end reads) or covered by a guard at least as tight as the
//!    bound, from a region whose propagation delay can meet it;
//! 3. **guard-well-formed** — every guard predicate references only the
//!    heartbeat-replicated timestamp table of a region that exists in the
//!    catalog, with a non-trivial, achievable bound;
//! 4. **remote-fallback-safe** — the fallback branch of every SwitchUnion
//!    (and every guarded index-join inner) is unconditionally C&C-safe:
//!    pure back-end reads, no residual guards.
//!
//! [`verify_plan`] runs all of them and returns a [`VerifyReport`]; the
//! `plan-audit` binary sweeps a generated corpus; `rcc-mtcache` runs the
//! same analysis as a `debug_assertions` audit after every optimization
//! and surfaces it through the `VERIFY SELECT ...` statement.

pub mod elision;
pub mod rig;

pub use elision::{elision_ok, verify_elision};

use rcc_catalog::Catalog;
use rcc_common::{Duration, RegionId};
use rcc_optimizer::physical::InnerAccess;
use rcc_optimizer::{CCConstraint, CurrencyGuard, OperandId, PhysicalPlan};
use std::collections::BTreeMap;
use std::fmt;

/// Upper bound on enumerated guard-outcome worlds. Each SwitchUnion (or
/// guarded index-join inner) doubles the world count; real plans carry a
/// handful of guards, so hitting this cap indicates a malformed plan and is
/// reported as a violation rather than silently truncated.
const MAX_WORLDS: usize = 4096;

/// The kind of proof obligation discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationKind {
    /// Every operand of a consistency class reads from one snapshot source.
    SingleSource,
    /// Every currency bound is compile-time satisfiable or guard-covered.
    BoundSatisfiable,
    /// Guard predicates reference only heartbeat-replicated timestamps.
    GuardWellFormed,
    /// A SwitchUnion guard dominates every table of its local branch.
    GuardDominatesLocal,
    /// The remote fallback branch is unconditionally C&C-safe.
    RemoteFallbackSafe,
    /// Guard elision is maximal-but-sound: every elided guard carries a
    /// certificate whose arithmetic replays from the catalog, and every
    /// surviving guard is independently contingent (see [`verify_elision`]).
    ElisionCertified,
}

impl ObligationKind {
    /// Stable lowercase name (used in reports and the VERIFY result set).
    pub fn name(&self) -> &'static str {
        match self {
            ObligationKind::SingleSource => "single-source",
            ObligationKind::BoundSatisfiable => "bound-satisfiable",
            ObligationKind::GuardWellFormed => "guard-well-formed",
            ObligationKind::GuardDominatesLocal => "guard-dominates-local",
            ObligationKind::RemoteFallbackSafe => "remote-fallback-safe",
            ObligationKind::ElisionCertified => "elision-certified",
        }
    }
}

impl fmt::Display for ObligationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObligationStatus {
    /// The obligation holds in every reachable world.
    Proved,
    /// The obligation fails; the payload says why.
    Violated(String),
}

impl ObligationStatus {
    /// True when proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, ObligationStatus::Proved)
    }
}

/// One discharged (or failed) proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// What is being proved.
    pub kind: ObligationKind,
    /// The subject: a consistency class, a guard, or a plan site.
    pub subject: String,
    /// Outcome.
    pub status: ObligationStatus,
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.status {
            ObligationStatus::Proved => write!(f, "[proved]   {}: {}", self.kind, self.subject),
            ObligationStatus::Violated(why) => {
                write!(f, "[VIOLATED] {}: {} — {}", self.kind, self.subject, why)
            }
        }
    }
}

/// The result of verifying one plan.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Every obligation the analyzer discharged, in derivation order.
    pub obligations: Vec<Obligation>,
    /// Number of guard-outcome worlds enumerated.
    pub worlds: usize,
}

impl VerifyReport {
    /// True when every obligation is proved.
    pub fn ok(&self) -> bool {
        self.obligations.iter().all(|o| o.status.is_proved())
    }

    /// The violated obligations only.
    pub fn violations(&self) -> Vec<&Obligation> {
        self.obligations
            .iter()
            .filter(|o| !o.status.is_proved())
            .collect()
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.obligations {
            out.push_str(&o.to_string());
            out.push('\n');
        }
        let failed = self.violations().len();
        out.push_str(&format!(
            "{} obligation(s) over {} world(s): {}\n",
            self.obligations.len(),
            self.worlds,
            if failed == 0 {
                "all proved".to_string()
            } else {
                format!("{failed} VIOLATED")
            }
        ));
        out
    }
}

/// Where one operand's rows come from in a particular world.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Source {
    /// Served by the back-end master — the latest snapshot, consistent
    /// with every other back-end read and satisfying any bound.
    Backend,
    /// Served from a cached view in `region`. `covered` is the bound of
    /// the innermost guard protecting this access (`None` = unguarded).
    Local {
        region: RegionId,
        covered: Option<Duration>,
    },
}

impl Source {
    fn label(&self) -> String {
        match self {
            Source::Backend => "backend".to_string(),
            Source::Local { region, covered } => match covered {
                Some(b) => format!("region {region} (guarded within {b})"),
                None => format!("region {region} (UNGUARDED)"),
            },
        }
    }
}

/// One world: a complete operand → source assignment reachable under some
/// combination of guard outcomes.
type World = BTreeMap<OperandId, Source>;

/// Verify that `plan` delivers the properties `required` demands, against
/// `catalog` (regions, heartbeat tables, view → region mapping). This is a
/// standalone pass: it never consults the optimizer's
/// `PhysicalPlan::delivered` / `DeliveredProperty` machinery.
pub fn verify_plan(
    catalog: &Catalog,
    required: &CCConstraint,
    plan: &PhysicalPlan,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    let worlds = enumerate_worlds(catalog, plan, &mut report);
    report.worlds = worlds.len();
    check_classes(catalog, required, &worlds, &mut report);
    report
}

/// Describe one class for report subjects, e.g. `30s ON (#0, #1)`.
fn class_subject(class: &rcc_optimizer::CCClass) -> String {
    let ops: Vec<String> = class.operands.iter().map(|o| format!("#{o}")).collect();
    format!("class {} ON ({})", class.bound, ops.join(", "))
}

/// Root checks: obligations 1 and 2, per class, quantified over worlds.
fn check_classes(
    catalog: &Catalog,
    required: &CCConstraint,
    worlds: &[World],
    report: &mut VerifyReport,
) {
    for class in &required.classes {
        // --- obligation 1: single snapshot source per world
        let mut split: Option<String> = None;
        'single: for (i, world) in worlds.iter().enumerate() {
            let mut first: Option<&Source> = None;
            for op in &class.operands {
                let Some(src) = world.get(op) else {
                    split = Some(format!("operand #{op} is not produced by the plan"));
                    break 'single;
                };
                match first {
                    None => first = Some(src),
                    Some(prev) => {
                        let same = match (prev, src) {
                            (Source::Backend, Source::Backend) => true,
                            (Source::Local { region: a, .. }, Source::Local { region: b, .. }) => {
                                a == b
                            }
                            _ => false,
                        };
                        if !same {
                            split = Some(format!(
                                "world {i}: operand #{op} reads {} while another operand reads {}",
                                src.label(),
                                prev.label()
                            ));
                            break 'single;
                        }
                    }
                }
            }
        }
        report.obligations.push(Obligation {
            kind: ObligationKind::SingleSource,
            subject: class_subject(class),
            status: match split {
                None => ObligationStatus::Proved,
                Some(why) => ObligationStatus::Violated(why),
            },
        });

        // --- obligation 2: the bound is met in every world
        let mut too_stale: Option<String> = None;
        'bound: for (i, world) in worlds.iter().enumerate() {
            for op in &class.operands {
                let Some(src) = world.get(op) else { continue };
                let Source::Local { region, covered } = src else {
                    continue; // back-end = latest snapshot, meets any bound
                };
                if class.bound.is_zero() {
                    too_stale = Some(format!(
                        "world {i}: operand #{op} is served locally but the class \
                         requires the latest snapshot (bound 0)"
                    ));
                    break 'bound;
                }
                match covered {
                    None => {
                        too_stale = Some(format!(
                            "world {i}: operand #{op} reads {} with no covering guard",
                            src.label()
                        ));
                        break 'bound;
                    }
                    Some(b) if *b > class.bound => {
                        too_stale = Some(format!(
                            "world {i}: operand #{op} guard admits staleness up to {b}, \
                             looser than the required bound {}",
                            class.bound
                        ));
                        break 'bound;
                    }
                    Some(_) => {}
                }
                if let Ok(r) = catalog.region(*region) {
                    if r.min_guaranteed_currency() > class.bound {
                        too_stale = Some(format!(
                            "world {i}: operand #{op} region {} has propagation delay {} \
                             and can never satisfy bound {}",
                            r.name,
                            r.min_guaranteed_currency(),
                            class.bound
                        ));
                        break 'bound;
                    }
                }
            }
        }
        report.obligations.push(Obligation {
            kind: ObligationKind::BoundSatisfiable,
            subject: class_subject(class),
            status: match too_stale {
                None => ObligationStatus::Proved,
                Some(why) => ObligationStatus::Violated(why),
            },
        });
    }
}

/// Obligation 3: a guard must name an existing region, reference exactly
/// that region's heartbeat-replicated timestamp table, and carry a bound
/// the region can actually meet.
fn check_guard(catalog: &Catalog, guard: &CurrencyGuard, report: &mut VerifyReport) {
    let subject = format!(
        "guard on {} (region {}, bound {})",
        guard.heartbeat_table, guard.region, guard.bound
    );
    let status = match catalog.region(guard.region) {
        Err(_) => ObligationStatus::Violated(format!(
            "region {} does not exist in the catalog",
            guard.region
        )),
        Ok(region) => {
            if guard.heartbeat_table != region.heartbeat_table_name() {
                ObligationStatus::Violated(format!(
                    "predicate reads '{}', which is not region {}'s heartbeat table '{}'",
                    guard.heartbeat_table,
                    region.name,
                    region.heartbeat_table_name()
                ))
            } else if guard.bound.is_zero() {
                ObligationStatus::Violated(
                    "a zero bound can never pass a heartbeat check".to_string(),
                )
            } else if guard.bound < region.min_guaranteed_currency() {
                ObligationStatus::Violated(format!(
                    "bound {} is below region {}'s propagation delay {} — the guard \
                     could pass only on data that cannot exist",
                    guard.bound,
                    region.name,
                    region.min_guaranteed_currency()
                ))
            } else {
                ObligationStatus::Proved
            }
        }
    };
    report.obligations.push(Obligation {
        kind: ObligationKind::GuardWellFormed,
        subject,
        status,
    });
}

/// Bottom-up world enumeration. Site-local obligations (3, 4 and the
/// fallback-safety half of 4) are recorded into `report` along the way.
fn enumerate_worlds(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    report: &mut VerifyReport,
) -> Vec<World> {
    match plan {
        PhysicalPlan::OneRow => vec![World::new()],
        PhysicalPlan::LocalScan(n) => {
            vec![leaf_world(catalog, &n.object, n.operand)]
        }
        PhysicalPlan::RemoteQuery(n) => {
            let mut w = World::new();
            for op in &n.operands {
                w.insert(*op, Source::Backend);
            }
            vec![w]
        }
        PhysicalPlan::SwitchUnion {
            guard,
            local,
            remote,
        } => {
            check_guard(catalog, guard, report);
            let mut local_worlds = enumerate_worlds(catalog, local, report);
            // the guard covers exactly its own region's unguarded accesses
            for world in &mut local_worlds {
                for src in world.values_mut() {
                    if let Source::Local { region, covered } = src {
                        if *region == guard.region && covered.is_none() {
                            *covered = Some(guard.bound);
                        }
                    }
                }
            }
            // obligation 4 (domination): after applying this guard, no
            // local access in the guard-passes worlds may remain uncovered
            let mut stray: Option<String> = None;
            for world in &local_worlds {
                for (op, src) in world {
                    if let Source::Local { covered: None, .. } = src {
                        stray = Some(format!(
                            "local branch operand #{op} reads {} outside the guard's \
                             region — the guard predicate does not dominate it",
                            src.label()
                        ));
                    }
                }
            }
            report.obligations.push(Obligation {
                kind: ObligationKind::GuardDominatesLocal,
                subject: format!("SwitchUnion guarded by {}", guard.heartbeat_table),
                status: match stray {
                    None => ObligationStatus::Proved,
                    Some(why) => ObligationStatus::Violated(why),
                },
            });

            let remote_worlds = enumerate_worlds(catalog, remote, report);
            // obligation 4b (fallback safety): the remote branch must be
            // unconditionally safe — back-end reads in every world
            let mut unsafe_src: Option<String> = None;
            for world in &remote_worlds {
                for (op, src) in world {
                    if !matches!(src, Source::Backend) {
                        unsafe_src = Some(format!(
                            "fallback operand #{op} reads {} instead of the back-end",
                            src.label()
                        ));
                    }
                }
            }
            report.obligations.push(Obligation {
                kind: ObligationKind::RemoteFallbackSafe,
                subject: format!("SwitchUnion guarded by {}", guard.heartbeat_table),
                status: match unsafe_src {
                    None => ObligationStatus::Proved,
                    Some(why) => ObligationStatus::Violated(why),
                },
            });

            join_alternatives(local_worlds, remote_worlds, report)
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => enumerate_worlds(catalog, input, report),
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::MergeJoin { left, right, .. } => {
            let l = enumerate_worlds(catalog, left, report);
            let r = enumerate_worlds(catalog, right, report);
            cross_product(l, r, report)
        }
        PhysicalPlan::IndexNLJoin { outer, inner, .. } => {
            let o = enumerate_worlds(catalog, outer, report);
            let i = inner_access_worlds(catalog, inner, report);
            cross_product(o, i, report)
        }
    }
}

/// The worlds an [`InnerAccess`] can serve its operand from.
fn inner_access_worlds(
    catalog: &Catalog,
    inner: &InnerAccess,
    report: &mut VerifyReport,
) -> Vec<World> {
    if inner.force_remote {
        // guard-stripped baseline mode: unconditional remote fetch
        let mut w = World::new();
        w.insert(inner.operand, Source::Backend);
        return vec![w];
    }
    match &inner.guard {
        Some(guard) => {
            check_guard(catalog, guard, report);
            // domination for the index-join form: the guarded object must
            // be a view maintained by the guard's own region
            let dominated = match catalog.view(&inner.object) {
                Ok(view) if view.region == guard.region => ObligationStatus::Proved,
                Ok(view) => ObligationStatus::Violated(format!(
                    "inner view {} lives in region {}, not the guard's region {}",
                    inner.object, view.region, guard.region
                )),
                Err(_) => ObligationStatus::Violated(format!(
                    "guarded inner object {} is not a cached view",
                    inner.object
                )),
            };
            report.obligations.push(Obligation {
                kind: ObligationKind::GuardDominatesLocal,
                subject: format!(
                    "IndexNLJoin inner {} guarded by {}",
                    inner.object, guard.heartbeat_table
                ),
                status: dominated,
            });
            // fallback safety: a guard without a remote fallback would leave
            // the executor nowhere safe to go when the check fails
            report.obligations.push(Obligation {
                kind: ObligationKind::RemoteFallbackSafe,
                subject: format!("IndexNLJoin inner {}", inner.object),
                status: if inner.remote_sql.is_some() {
                    ObligationStatus::Proved
                } else {
                    ObligationStatus::Violated(
                        "guarded inner access carries no remote fallback SQL".to_string(),
                    )
                },
            });
            let mut local = World::new();
            local.insert(
                inner.operand,
                Source::Local {
                    region: guard.region,
                    covered: Some(guard.bound),
                },
            );
            let mut worlds = vec![local];
            if inner.remote_sql.is_some() {
                let mut remote = World::new();
                remote.insert(inner.operand, Source::Backend);
                worlds.push(remote);
            }
            worlds
        }
        None => vec![leaf_world(catalog, &inner.object, inner.operand)],
    }
}

/// The source of an unguarded scan: a cached view is region data (still
/// uncovered at this point — an enclosing guard may cover it); anything
/// else is a back-end-role master table, i.e. the latest snapshot.
fn leaf_world(catalog: &Catalog, object: &str, operand: OperandId) -> World {
    let src = match catalog.view(object) {
        Ok(view) => Source::Local {
            region: view.region,
            covered: None,
        },
        Err(_) => Source::Backend,
    };
    let mut w = World::new();
    w.insert(operand, src);
    w
}

/// Union of two alternative world sets (branches of a SwitchUnion).
fn join_alternatives(mut a: Vec<World>, b: Vec<World>, report: &mut VerifyReport) -> Vec<World> {
    a.extend(b);
    cap_worlds(a, report)
}

/// Cross product of independent sub-plan world sets (join inputs).
fn cross_product(a: Vec<World>, b: Vec<World>, report: &mut VerifyReport) -> Vec<World> {
    let mut out = Vec::with_capacity(a.len().saturating_mul(b.len()).min(MAX_WORLDS));
    'outer: for wa in &a {
        for wb in &b {
            if out.len() >= MAX_WORLDS {
                break 'outer;
            }
            let mut w = wa.clone();
            for (op, src) in wb {
                w.insert(*op, src.clone());
            }
            out.push(w);
        }
    }
    if a.len().saturating_mul(b.len()) > MAX_WORLDS {
        overflow(report);
    }
    out
}

fn cap_worlds(worlds: Vec<World>, report: &mut VerifyReport) -> Vec<World> {
    if worlds.len() > MAX_WORLDS {
        overflow(report);
        worlds.into_iter().take(MAX_WORLDS).collect()
    } else {
        worlds
    }
}

fn overflow(report: &mut VerifyReport) {
    // only report the blow-up once per plan
    let already = report
        .obligations
        .iter()
        .any(|o| o.kind == ObligationKind::SingleSource && o.subject == "world enumeration");
    if !already {
        report.obligations.push(Obligation {
            kind: ObligationKind::SingleSource,
            subject: "world enumeration".to_string(),
            status: ObligationStatus::Violated(format!(
                "plan has more than {MAX_WORLDS} guard-outcome worlds; analysis truncated"
            )),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Schema};
    use rcc_optimizer::physical::{AccessPath, LocalScanNode, RemoteQueryNode};

    fn catalog_with_region() -> std::sync::Arc<Catalog> {
        rig::audit_catalog(0.01, 7).expect("rig").0
    }

    use crate::rig;

    fn scan(object: &str, operand: OperandId) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: object.to_string(),
            schema: Schema::new(vec![Column::new("c", DataType::Int)]),
            access: AccessPath::FullScan,
            residual: None,
            operand,
            est_rows: 10.0,
        })
    }

    fn remote(ops: &[OperandId]) -> PhysicalPlan {
        PhysicalPlan::RemoteQuery(RemoteQueryNode {
            sql: "SELECT 1".into(),
            schema: Schema::new(vec![Column::new("c", DataType::Int)]),
            operands: ops.iter().copied().collect(),
            est_rows: 10.0,
        })
    }

    #[test]
    fn pure_remote_plan_satisfies_tight_default() {
        let catalog = catalog_with_region();
        let required = CCConstraint::tight_default([0]);
        let report = verify_plan(&catalog, &required, &remote(&[0]));
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.worlds, 1);
    }

    #[test]
    fn unguarded_view_scan_violates_bound() {
        let catalog = catalog_with_region();
        let required = CCConstraint::normalize(
            vec![(Duration::from_secs(30), [0].into_iter().collect(), vec![])],
            [0],
        );
        let report = verify_plan(&catalog, &required, &scan("cust_prj", 0));
        assert!(!report.ok());
        assert!(report
            .violations()
            .iter()
            .any(|o| o.kind == ObligationKind::BoundSatisfiable));
    }

    #[test]
    fn guarded_view_scan_is_proved() {
        let catalog = catalog_with_region();
        let region = catalog.region_by_name("CR1").expect("CR1");
        let required = CCConstraint::normalize(
            vec![(Duration::from_secs(30), [0].into_iter().collect(), vec![])],
            [0],
        );
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: region.id,
                heartbeat_table: region.heartbeat_table_name(),
                bound: Duration::from_secs(30),
            },
            local: Box::new(scan("cust_prj", 0)),
            remote: Box::new(remote(&[0])),
        };
        let report = verify_plan(&catalog, &required, &plan);
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.worlds, 2);
    }

    #[test]
    fn loosened_guard_bound_is_caught() {
        let catalog = catalog_with_region();
        let region = catalog.region_by_name("CR1").expect("CR1");
        let required = CCConstraint::normalize(
            vec![(Duration::from_secs(30), [0].into_iter().collect(), vec![])],
            [0],
        );
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: region.id,
                heartbeat_table: region.heartbeat_table_name(),
                bound: Duration::from_secs(120), // looser than required
            },
            local: Box::new(scan("cust_prj", 0)),
            remote: Box::new(remote(&[0])),
        };
        let report = verify_plan(&catalog, &required, &plan);
        assert!(!report.ok());
        assert!(report
            .violations()
            .iter()
            .any(|o| o.kind == ObligationKind::BoundSatisfiable));
    }

    #[test]
    fn wrong_heartbeat_table_is_caught() {
        let catalog = catalog_with_region();
        let region = catalog.region_by_name("CR1").expect("CR1");
        let required = CCConstraint::normalize(
            vec![(Duration::from_secs(30), [0].into_iter().collect(), vec![])],
            [0],
        );
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: region.id,
                heartbeat_table: "customer".to_string(), // not a heartbeat table
                bound: Duration::from_secs(30),
            },
            local: Box::new(scan("cust_prj", 0)),
            remote: Box::new(remote(&[0])),
        };
        let report = verify_plan(&catalog, &required, &plan);
        assert!(report
            .violations()
            .iter()
            .any(|o| o.kind == ObligationKind::GuardWellFormed));
    }

    #[test]
    fn local_fallback_branch_is_caught() {
        let catalog = catalog_with_region();
        let region = catalog.region_by_name("CR1").expect("CR1");
        let required = CCConstraint::normalize(
            vec![(Duration::from_secs(30), [0].into_iter().collect(), vec![])],
            [0],
        );
        let plan = PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region: region.id,
                heartbeat_table: region.heartbeat_table_name(),
                bound: Duration::from_secs(30),
            },
            local: Box::new(scan("cust_prj", 0)),
            remote: Box::new(scan("cust_prj", 0)), // fallback serves stale data
        };
        let report = verify_plan(&catalog, &required, &plan);
        assert!(report
            .violations()
            .iter()
            .any(|o| o.kind == ObligationKind::RemoteFallbackSafe));
    }

    #[test]
    fn per_leaf_guards_cannot_serve_multi_table_class() {
        // the paper's observation: leaf-level guards admit worlds where one
        // operand goes local and the other remote — not a single snapshot
        let catalog = catalog_with_region();
        let cr1 = catalog.region_by_name("CR1").expect("CR1");
        let cr2 = catalog.region_by_name("CR2").expect("CR2");
        let guarded = |object: &str, op: OperandId, r: &rcc_catalog::CurrencyRegion| {
            PhysicalPlan::SwitchUnion {
                guard: CurrencyGuard {
                    region: r.id,
                    heartbeat_table: r.heartbeat_table_name(),
                    bound: Duration::from_secs(30),
                },
                local: Box::new(scan(object, op)),
                remote: Box::new(remote(&[op])),
            }
        };
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(guarded("cust_prj", 0, &cr1)),
            right: Box::new(guarded("orders_prj", 1, &cr2)),
            left_keys: vec![],
            right_keys: vec![],
            kind: rcc_optimizer::graph::JoinKind::Inner,
        };
        let required = CCConstraint::normalize(
            vec![(
                Duration::from_secs(30),
                [0, 1].into_iter().collect(),
                vec![],
            )],
            [0, 1],
        );
        let report = verify_plan(&catalog, &required, &plan);
        assert_eq!(report.worlds, 4);
        assert!(report
            .violations()
            .iter()
            .any(|o| o.kind == ObligationKind::SingleSource));
    }
}
