//! A self-contained catalog rig for plan auditing.
//!
//! `plan-audit` (and the mutation tests) need a realistic catalog — base
//! tables with statistics, currency regions, cached-view definitions — but
//! must not depend on `rcc-mtcache` (which depends on this crate for its
//! post-optimize audit). This module builds the paper's Table 4.1 shape
//! directly from `rcc-catalog` + `rcc-backend` + `rcc-tpcd`: Customer and
//! Orders, regions CR1(15, 5) and CR2(10, 5), views `cust_prj` (CR1) and
//! `orders_prj` (CR2), plus a second customer view `cust_bal` in CR2 so
//! the optimizer has cross-region choices to make.

use rcc_backend::MasterDb;
use rcc_catalog::{CachedViewDef, Catalog, CurrencyRegion, TableMeta};
use rcc_common::{Clock, Duration, RegionId, Result, SimClock};
use rcc_tpcd::TpcdGenerator;
use std::sync::Arc;

/// Build the audit catalog at `scale` (fraction of TPC-D SF 1.0). Returns
/// the populated catalog and the master database backing its statistics.
pub fn audit_catalog(scale: f64, seed: u64) -> Result<(Arc<Catalog>, Arc<MasterDb>)> {
    let catalog = Arc::new(Catalog::new());
    let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
    let master = Arc::new(MasterDb::new(Arc::clone(&catalog), clock));

    let cm = rcc_tpcd::customer_meta(catalog.next_table_id());
    master.create_table(&cm)?;
    let cm = catalog.register_table(cm)?;
    let om = rcc_tpcd::orders_meta(catalog.next_table_id());
    master.create_table(&om)?;
    let om = catalog.register_table(om)?;
    // Nation exists only at the master: no cached view ever covers it, so
    // positive bounds on it are unverifiable at guard time (lint L006).
    let nm = rcc_tpcd::nation_meta(catalog.next_table_id());
    master.create_table(&nm)?;
    catalog.register_table(nm)?;

    let gen = TpcdGenerator::new(scale, seed);
    gen.load_into(|t, rows| master.bulk_load(t, rows))?;
    catalog.set_stats("customer", master.compute_stats("customer")?);
    catalog.set_stats("orders", master.compute_stats("orders")?);

    let cr1 = catalog.register_region(CurrencyRegion::new(
        RegionId(1),
        "CR1",
        Duration::from_secs(15),
        Duration::from_secs(5),
    ))?;
    let cr2 = catalog.register_region(CurrencyRegion::new(
        RegionId(2),
        "CR2",
        Duration::from_secs(10),
        Duration::from_secs(5),
    ))?;

    register_view(
        &catalog,
        "cust_prj",
        cr1.id,
        &cm,
        &["c_custkey", "c_name", "c_nationkey", "c_acctbal"],
    )?;
    register_view(
        &catalog,
        "orders_prj",
        cr2.id,
        &om,
        &["o_custkey", "o_orderkey", "o_totalprice"],
    )?;
    register_view(
        &catalog,
        "cust_bal",
        cr2.id,
        &cm,
        &["c_custkey", "c_acctbal"],
    )?;

    Ok((catalog, master))
}

/// Register a full-table projection view over `base` and give it the base
/// table's statistics (the audit only plans; views hold no data here).
fn register_view(
    catalog: &Arc<Catalog>,
    name: &str,
    region: RegionId,
    base: &Arc<TableMeta>,
    columns: &[&str],
) -> Result<()> {
    let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
    let schema = rcc_common::Schema::new(
        columns
            .iter()
            .map(|c| {
                let ord = base.schema.resolve(None, c)?;
                let mut col = base.schema.column(ord).clone();
                col.qualifier = Some(name.to_ascii_lowercase());
                col.source = Some(base.id);
                Ok(col)
            })
            .collect::<Result<Vec<_>>>()?,
    );
    let key_ordinals: Vec<usize> = base
        .key
        .iter()
        .map(|k| {
            columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(k))
                .ok_or_else(|| {
                    rcc_common::Error::Config(format!("view {name} must retain key column {k}"))
                })
        })
        .collect::<Result<_>>()?;
    catalog.register_view(CachedViewDef {
        id: catalog.next_view_id(),
        name: name.to_ascii_lowercase(),
        region,
        base_table: base.id,
        base_table_name: base.name.clone(),
        columns,
        predicate: None,
        schema,
        key_ordinals,
        local_indexes: Vec::new(),
    })?;
    let stats = (*catalog.stats(&base.name)).clone();
    catalog.set_stats(name, stats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_builds_paper_shape() {
        let (catalog, _master) = audit_catalog(0.005, 1).expect("rig");
        assert!(catalog.table("customer").is_ok());
        assert!(catalog.table("orders").is_ok());
        assert_eq!(catalog.regions().len(), 2);
        assert_eq!(catalog.all_views().len(), 3);
        assert!(catalog.stats("cust_prj").row_count > 0);
        // Nation is registered but deliberately uncovered by any view.
        let nation = catalog.table("nation").expect("nation registered");
        assert!(catalog.views_over(nation.id).is_empty());
    }
}
