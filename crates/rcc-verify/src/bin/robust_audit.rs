//! `robust-audit`: sweep the deterministic TPC-C-flavored template corpus
//! through the robustness analyzer and assert the exact expected verdict
//! per template, then run the mutation corpus and assert each canonical
//! robustness-breaking edit (add a conflicting write, loosen a bound, drop
//! a key predicate) flips its target's verdict.
//!
//! ```text
//! cargo run -p rcc-verify --bin robust-audit -- [--seed S] [--scale F]
//! ```
//!
//! Any verdict mismatch, missing cycle witness, or non-flipping mutation is
//! printed and the process exits non-zero — the CI smoke step runs this on
//! every push.

use rcc_robust::{analyze, Verdict};
use rcc_semantics::{summarize_template, TemplateSummary};
use rcc_sql::ast::Statement;
use rcc_verify::rig;
use std::process::ExitCode;

struct Args {
    seed: u64,
    scale: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        scale: 0.001,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                args.scale = grab("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--help" | "-h" => {
                println!("usage: robust-audit [--seed S] [--scale F]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Parse and bind a workload of `CREATE TEMPLATE` statements.
fn bind_workload(
    catalog: &rcc_catalog::Catalog,
    sqls: &[&str],
) -> Result<Vec<TemplateSummary>, String> {
    sqls.iter()
        .map(|sql| {
            let decl = match rcc_sql::parser::parse_statement(sql) {
                Ok(Statement::CreateTemplate(t)) => t,
                Ok(_) => return Err(format!("not a CREATE TEMPLATE statement: {sql}")),
                Err(e) => return Err(format!("parse error: {e}\n  {sql}")),
            };
            summarize_template(catalog, &decl).map_err(|e| format!("bind error: {e}\n  {sql}"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("robust-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let (catalog, _master) = match rig::audit_catalog(args.scale, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("robust-audit: failed to build audit catalog: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;

    // Phase 1: the whole corpus as one workload, exact expected verdicts.
    let corpus = rcc_tpcd::robust_template_corpus();
    let sqls: Vec<&str> = corpus.iter().map(|c| c.sql).collect();
    let summaries = match bind_workload(&catalog, &sqls) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("robust-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analyze(&summaries);
    let (mut robust, mut not_robust) = (0usize, 0usize);
    for case in &corpus {
        let Some(t) = report.report(case.name) else {
            eprintln!("MISSING verdict for template {}", case.name);
            failures += 1;
            continue;
        };
        let got_robust = t.verdict == Verdict::Robust;
        if got_robust {
            robust += 1;
        } else {
            not_robust += 1;
        }
        println!("  {:<20} {}", t.name, t.verdict_string());
        if got_robust != case.robust {
            eprintln!(
                "VERDICT MISMATCH for {}: expected {}, got {}",
                case.name,
                if case.robust { "ROBUST" } else { "NOT ROBUST" },
                t.verdict_string()
            );
            failures += 1;
        }
        if !got_robust {
            match t.witness.as_deref() {
                Some(w) if w.contains("-->") => {}
                other => {
                    eprintln!(
                        "MISSING cycle witness for NOT ROBUST template {}: {other:?}",
                        case.name
                    );
                    failures += 1;
                }
            }
        }
    }
    if robust == 0 || not_robust == 0 {
        eprintln!("DEGENERATE corpus: {robust} robust / {not_robust} not robust — both verdicts must appear");
        failures += 1;
    }

    // Phase 2: every mutation must flip its target's verdict.
    for m in rcc_tpcd::template_mutation_corpus() {
        let run = |sqls: &[&str]| -> Result<bool, String> {
            let report = analyze(&bind_workload(&catalog, sqls)?);
            report
                .report(m.target)
                .map(|t| t.verdict == Verdict::Robust)
                .ok_or_else(|| format!("template {} missing from report", m.target))
        };
        match (run(m.base), run(m.mutated)) {
            (Ok(before), Ok(after)) => {
                if before != m.base_robust {
                    eprintln!(
                        "MUTATION '{}': base verdict wrong for {} (expected robust={}, got {})",
                        m.label, m.target, m.base_robust, before
                    );
                    failures += 1;
                } else if after == before {
                    eprintln!(
                        "MUTATION '{}' did not flip {} (still robust={before})",
                        m.label, m.target
                    );
                    failures += 1;
                } else {
                    println!("  mutation '{}' flips {} as expected", m.label, m.target);
                }
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("MUTATION '{}': {e}", m.label);
                failures += 1;
            }
        }
    }

    println!(
        "robust-audit: {} templates ({robust} robust, {not_robust} not robust), {} mutations, {failures} failure(s)",
        corpus.len(),
        rcc_tpcd::template_mutation_corpus().len(),
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
