//! `plan-audit`: sweep a corpus of generated C&C queries through the
//! optimizer and statically verify every optimized plan conforms to its
//! currency clause.
//!
//! ```text
//! cargo run -p rcc-verify --bin plan-audit -- [--queries N] [--seed S] [--scale F]
//! ```
//!
//! For each query the audit optimizes under both optimizer modes (SwitchUnion
//! pull-up off and on) and runs [`rcc_verify::verify_plan`] over each plan.
//! Any delivered-vs-required divergence is printed with its full proof
//! obligation report and the process exits non-zero.

use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
use rcc_sql::ast::Statement;
use rcc_verify::{rig, verify_plan};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    queries: usize,
    seed: u64,
    scale: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: 250,
        seed: 7,
        scale: 0.01,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--queries" => {
                args.queries = grab("--queries")?
                    .parse()
                    .map_err(|e| format!("--queries: {e}"))?
            }
            "--seed" => {
                args.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                args.scale = grab("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--help" | "-h" => {
                println!("usage: plan-audit [--queries N] [--seed S] [--scale F]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("plan-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let (catalog, _master) = match rig::audit_catalog(args.scale, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("plan-audit: failed to build audit catalog: {e}");
            return ExitCode::from(2);
        }
    };
    let max_custkey = catalog.stats("customer").row_count.max(1) as i64;
    let corpus = rcc_tpcd::currency_corpus(args.queries, args.seed, max_custkey);
    let params: HashMap<String, rcc_common::Value> = HashMap::new();

    let configs = [
        ("pullup=off", OptimizerConfig::default()),
        (
            "pullup=on",
            OptimizerConfig {
                pullup_switch_union: true,
                ..OptimizerConfig::default()
            },
        ),
    ];

    let mut audited = 0usize;
    let mut divergent = 0usize;
    let mut worlds_max = 0usize;
    for (qi, sql) in corpus.iter().enumerate() {
        let stmt = match rcc_sql::parser::parse_statement(sql) {
            Ok(Statement::Select(s)) => s,
            Ok(_) => {
                eprintln!("query {qi}: generator produced a non-SELECT statement");
                divergent += 1;
                continue;
            }
            Err(e) => {
                eprintln!("query {qi}: parse error: {e}\n  {sql}");
                divergent += 1;
                continue;
            }
        };
        let graph = match bind_select(&catalog, &stmt, &params) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("query {qi}: bind error: {e}\n  {sql}");
                divergent += 1;
                continue;
            }
        };
        for (mode, config) in &configs {
            let optimized = match optimize(&catalog, &graph, config) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("query {qi} [{mode}]: optimize error: {e}\n  {sql}");
                    divergent += 1;
                    continue;
                }
            };
            audited += 1;
            let report = verify_plan(&catalog, &graph.constraint, &optimized.plan);
            worlds_max = worlds_max.max(report.worlds);
            if !report.ok() {
                divergent += 1;
                eprintln!("DIVERGENCE in query {qi} [{mode}]:\n  {sql}");
                eprintln!("{}", report.render());
            }
        }
    }

    println!(
        "plan-audit: {} queries, {} plans audited, {} divergent, max {} worlds/plan",
        corpus.len(),
        audited,
        divergent,
        worlds_max
    );
    if divergent == 0 {
        println!("plan-audit: all optimized plans conform to their currency clauses");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
