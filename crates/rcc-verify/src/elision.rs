//! The sixth proof obligation: **elision-certified**.
//!
//! `rcc-flow` elides currency guards whose verdict it can prove statically.
//! This module is the independent auditor of that transform. It deliberately
//! re-implements the certificate arithmetic and the rewrite from scratch —
//! sharing no code with `rcc_flow::analyze`/`rcc_flow::elide` — so a bug
//! (or a test mutation) in the analysis cannot also blind the check:
//!
//! 1. **certificate replay** — for every guard site in the unelided plan,
//!    the recorded [`GuardCert`] must match the catalog (region, heartbeat
//!    table, bound, envelope terms) and its verdict must equal the verdict
//!    recomputed here from the catalog alone (`NeverPass` iff `B == 0` or
//!    `B < d`; `AlwaysPass` iff `B > d + f + hb`);
//! 2. **interval soundness** — every local-scan leaf's claimed interval
//!    must contain the honest healthy-replication interval `[d, d+f+hb]`
//!    (a narrower claim is an unsound certificate);
//! 3. **structure replay** — applying the certified decisions with this
//!    module's own rewriter must reproduce the elided plan byte-for-byte
//!    (by EXPLAIN rendering);
//! 4. **maximality** — every guard *surviving* in the elided plan must be
//!    independently contingent: a surviving statically-dead guard means the
//!    elision was sound but not maximal.

use crate::{Obligation, ObligationKind, ObligationStatus};
use rcc_catalog::Catalog;
use rcc_common::Duration;
use rcc_flow::{Decision, FlowAnalysis, GuardCert, GuardVerdict};
use rcc_optimizer::physical::CurrencyGuard;
use rcc_optimizer::PhysicalPlan;
use std::collections::BTreeMap;

/// Independently recomputed verdict, with its own arithmetic (kept in
/// deliberate duplication of `rcc_flow::verdict_for` — see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Replayed {
    AlwaysPass,
    NeverPass,
    Contingent,
}

fn replay_verdict(catalog: &Catalog, guard: &CurrencyGuard) -> Option<Replayed> {
    let region = catalog.region(guard.region).ok()?;
    let worst = region
        .update_delay
        .plus(region.update_interval)
        .plus(region.heartbeat_interval);
    Some(
        if guard.bound.is_zero() || guard.bound < region.update_delay {
            Replayed::NeverPass
        } else if guard.bound > worst {
            Replayed::AlwaysPass
        } else {
            Replayed::Contingent
        },
    )
}

fn verdict_matches(claimed: GuardVerdict, replayed: Replayed) -> bool {
    matches!(
        (claimed, replayed),
        (GuardVerdict::AlwaysPass { .. }, Replayed::AlwaysPass)
            | (GuardVerdict::NeverPass, Replayed::NeverPass)
            | (GuardVerdict::Contingent, Replayed::Contingent)
    )
}

fn decision_matches(claimed: Decision, replayed: Replayed) -> bool {
    matches!(
        (claimed, replayed),
        (Decision::ElideLocal, Replayed::AlwaysPass)
            | (Decision::CollapseRemote, Replayed::NeverPass)
            | (Decision::Keep, Replayed::Contingent)
    )
}

/// A guard site found by this module's own pre-order walk.
struct GuardSite<'a> {
    node: usize,
    guard: &'a CurrencyGuard,
}

/// A local-scan leaf found by the same walk.
struct LeafSite<'a> {
    node: usize,
    object: &'a str,
}

fn collect_sites<'a>(
    plan: &'a PhysicalPlan,
    counter: &mut usize,
    guards: &mut Vec<GuardSite<'a>>,
    leaves: &mut Vec<LeafSite<'a>>,
) {
    let my = *counter;
    *counter += 1;
    match plan {
        PhysicalPlan::SwitchUnion { guard, .. } => guards.push(GuardSite { node: my, guard }),
        PhysicalPlan::IndexNLJoin { inner, .. } => {
            if let Some(guard) = &inner.guard {
                guards.push(GuardSite { node: my, guard });
            }
        }
        PhysicalPlan::LocalScan(n) => leaves.push(LeafSite {
            node: my,
            object: &n.object,
        }),
        _ => {}
    }
    for child in plan.children() {
        collect_sites(child, counter, guards, leaves);
    }
}

/// This module's own rewriter: apply the certified decisions to the
/// unelided plan. Written independently of `rcc_flow::elide`.
fn replay_rewrite(
    plan: &PhysicalPlan,
    decisions: &BTreeMap<usize, Decision>,
    counter: &mut usize,
) -> PhysicalPlan {
    let my = *counter;
    *counter += 1;
    match plan {
        PhysicalPlan::SwitchUnion {
            guard,
            local,
            remote,
        } => match decisions.get(&my).copied().unwrap_or(Decision::Keep) {
            Decision::ElideLocal => {
                let out = replay_rewrite(local, decisions, counter);
                *counter += remote.node_count();
                out
            }
            Decision::CollapseRemote => {
                *counter += local.node_count();
                replay_rewrite(remote, decisions, counter)
            }
            Decision::Keep => PhysicalPlan::SwitchUnion {
                guard: guard.clone(),
                local: Box::new(replay_rewrite(local, decisions, counter)),
                remote: Box::new(replay_rewrite(remote, decisions, counter)),
            },
        },
        PhysicalPlan::IndexNLJoin {
            outer,
            outer_key,
            inner,
            kind,
        } => {
            let outer = Box::new(replay_rewrite(outer, decisions, counter));
            let mut inner = inner.clone();
            if inner.guard.is_some() {
                match decisions.get(&my).copied().unwrap_or(Decision::Keep) {
                    Decision::ElideLocal => inner.guard = None,
                    Decision::CollapseRemote => {
                        inner.guard = None;
                        inner.force_remote = true;
                    }
                    Decision::Keep => {}
                }
            }
            PhysicalPlan::IndexNLJoin {
                outer,
                outer_key: outer_key.clone(),
                inner,
                kind: *kind,
            }
        }
        // Every other operator keeps its shape; rebuild it around the
        // rewritten children via the generic clone-and-patch below.
        other => {
            let mut out = other.clone();
            patch_children(&mut out, decisions, counter);
            out
        }
    }
}

/// Rewrite the children of a non-guard-bearing operator in place.
fn patch_children(
    plan: &mut PhysicalPlan,
    decisions: &BTreeMap<usize, Decision>,
    counter: &mut usize,
) {
    match plan {
        PhysicalPlan::OneRow | PhysicalPlan::LocalScan(_) | PhysicalPlan::RemoteQuery(_) => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input } => {
            **input = replay_rewrite(input, decisions, counter);
        }
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::MergeJoin { left, right, .. } => {
            **left = replay_rewrite(left, decisions, counter);
            **right = replay_rewrite(right, decisions, counter);
        }
        // Guard-bearing operators are handled in `replay_rewrite` directly.
        PhysicalPlan::SwitchUnion { .. } | PhysicalPlan::IndexNLJoin { .. } => {
            unreachable!("guard-bearing operators are rewritten in replay_rewrite")
        }
    }
}

fn violated(subject: impl Into<String>, why: impl Into<String>) -> Obligation {
    Obligation {
        kind: ObligationKind::ElisionCertified,
        subject: subject.into(),
        status: ObligationStatus::Violated(why.into()),
    }
}

fn proved(subject: impl Into<String>) -> Obligation {
    Obligation {
        kind: ObligationKind::ElisionCertified,
        subject: subject.into(),
        status: ObligationStatus::Proved,
    }
}

/// Verify that `elided` is exactly the plan obtained by applying the
/// analysis' certified decisions to `unelided`, that every certificate
/// replays from the catalog, and that the elision is maximal. Returns one
/// obligation per guard site plus one for interval soundness and one for
/// the structural replay.
pub fn verify_elision(
    catalog: &Catalog,
    unelided: &PhysicalPlan,
    analysis: &FlowAnalysis,
    elided: &PhysicalPlan,
) -> Vec<Obligation> {
    let mut out = Vec::new();
    let mut counter = 0usize;
    let mut guard_sites = Vec::new();
    let mut leaf_sites = Vec::new();
    collect_sites(unelided, &mut counter, &mut guard_sites, &mut leaf_sites);

    let certs: BTreeMap<usize, &GuardCert> = analysis.guards.iter().map(|g| (g.node, g)).collect();

    // 1. certificate replay, per guard site.
    for site in &guard_sites {
        let subject = format!(
            "guard on {} (bound {}) @node {}",
            site.guard.heartbeat_table, site.guard.bound, site.node
        );
        let Some(cert) = certs.get(&site.node) else {
            out.push(violated(&subject, "guard site carries no certificate"));
            continue;
        };
        if cert.region != site.guard.region
            || cert.heartbeat_table != site.guard.heartbeat_table
            || cert.bound != site.guard.bound
        {
            out.push(violated(
                &subject,
                "certificate does not describe this guard",
            ));
            continue;
        }
        let Some(replayed) = replay_verdict(catalog, site.guard) else {
            // Unknown region: the analysis must not have elided it.
            if cert.decision == Decision::Keep {
                out.push(proved(&subject));
            } else {
                out.push(violated(&subject, "elided a guard on an unknown region"));
            }
            continue;
        };
        let region = match catalog.region(site.guard.region) {
            Ok(r) => r,
            Err(_) => unreachable!("replay_verdict resolved the region"),
        };
        if cert.envelope.update_delay != region.update_delay
            || cert.envelope.update_interval != region.update_interval
            || cert.envelope.heartbeat_interval != region.heartbeat_interval
        {
            out.push(violated(
                &subject,
                format!(
                    "certificate envelope ({}) disagrees with the catalog",
                    cert.envelope
                ),
            ));
            continue;
        }
        if !verdict_matches(cert.verdict, replayed) {
            out.push(violated(
                &subject,
                format!(
                    "claimed verdict '{}' does not replay from the catalog",
                    cert.verdict.label()
                ),
            ));
            continue;
        }
        if !decision_matches(cert.decision, replayed) {
            out.push(violated(
                &subject,
                format!(
                    "decision '{}' does not follow from the replayed verdict",
                    cert.decision.label()
                ),
            ));
            continue;
        }
        out.push(proved(&subject));
    }
    // Certificates for sites that do not exist are also unsound.
    for cert in &analysis.guards {
        if !guard_sites.iter().any(|s| s.node == cert.node) {
            out.push(violated(
                format!("certificate @node {}", cert.node),
                "certificate names a node that carries no guard",
            ));
        }
    }

    // 2. interval soundness at the leaves.
    let mut leaf_ok = true;
    for leaf in &leaf_sites {
        let Ok(view) = catalog.view(leaf.object) else {
            continue; // master-table scan: no replication interval to check
        };
        let Ok(region) = catalog.region(view.region) else {
            continue;
        };
        let Some(node) = analysis.nodes.iter().find(|n| n.node == leaf.node) else {
            out.push(violated(
                format!("leaf {} @node {}", leaf.object, leaf.node),
                "leaf has no flow certificate",
            ));
            leaf_ok = false;
            continue;
        };
        let honest = rcc_flow::CurrencyInterval {
            lo: region.update_delay,
            hi: rcc_flow::StalenessBound::Finite(
                region
                    .update_delay
                    .plus(region.update_interval)
                    .plus(region.heartbeat_interval),
            ),
        };
        if !node.interval.contains(&honest) {
            out.push(violated(
                format!("leaf {} @node {}", leaf.object, leaf.node),
                format!(
                    "claimed interval {} is narrower than the healthy envelope {}",
                    node.interval, honest
                ),
            ));
            leaf_ok = false;
        }
    }
    if leaf_ok && !leaf_sites.is_empty() {
        out.push(proved("leaf intervals contain the healthy envelope"));
    }

    // 3. structure replay with this module's own rewriter.
    let decisions: BTreeMap<usize, Decision> = analysis
        .guards
        .iter()
        .map(|g| (g.node, g.decision))
        .collect();
    let mut counter = 0usize;
    let replayed_plan = replay_rewrite(unelided, &decisions, &mut counter);
    if replayed_plan.explain() == elided.explain() {
        out.push(proved("elided plan structure replays"));
    } else {
        out.push(violated(
            "elided plan structure",
            "independent replay of the certified decisions yields a different plan",
        ));
    }

    // 4. maximality: every surviving guard must be contingent on its own.
    let mut counter = 0usize;
    let mut surviving = Vec::new();
    let mut survivor_leaves = Vec::new();
    collect_sites(elided, &mut counter, &mut surviving, &mut survivor_leaves);
    for site in &surviving {
        let subject = format!(
            "surviving guard on {} (bound {})",
            site.guard.heartbeat_table, site.guard.bound
        );
        match replay_verdict(catalog, site.guard) {
            None | Some(Replayed::Contingent) => out.push(proved(&subject)),
            Some(Replayed::AlwaysPass) => out.push(violated(
                &subject,
                "statically always-satisfied guard survives; elision is not maximal",
            )),
            Some(Replayed::NeverPass) => out.push(violated(
                &subject,
                "statically unreachable local branch survives; elision is not maximal",
            )),
        }
    }
    out
}

/// Convenience used by audits: true when every obligation is proved.
pub fn elision_ok(obligations: &[Obligation]) -> bool {
    obligations.iter().all(|o| o.status.is_proved())
}

/// A probe bound that separates the honest envelope from a dropped
/// heartbeat term for `region_name` (i.e. `d + f < B ≤ d + f + hb`), if
/// the region's heartbeat interval is non-zero. Audits use this to make
/// the dropped-heartbeat mutation observable on corpora whose bounds skip
/// that window.
pub fn heartbeat_probe_bound(catalog: &Catalog, region_name: &str) -> Option<Duration> {
    let region = catalog.region_by_name(region_name).ok()?;
    if region.heartbeat_interval.is_zero() {
        return None;
    }
    Some(
        region
            .update_delay
            .plus(region.update_interval)
            .plus(Duration::from_millis(1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig;
    use rcc_common::{Column, DataType, RegionId, Schema};
    use rcc_flow::{analyze, analyze_mutated, elide, Mutation};
    use rcc_optimizer::physical::{AccessPath, LocalScanNode, RemoteQueryNode};
    use std::collections::BTreeSet;

    fn scan(object: &str, operand: u32) -> PhysicalPlan {
        PhysicalPlan::LocalScan(LocalScanNode {
            object: object.to_string(),
            schema: Schema::new(vec![Column::new("c", DataType::Int)]),
            access: AccessPath::FullScan,
            residual: None,
            operand,
            est_rows: 10.0,
        })
    }

    fn remote(ops: &[u32]) -> PhysicalPlan {
        PhysicalPlan::RemoteQuery(RemoteQueryNode {
            sql: "SELECT 1".into(),
            schema: Schema::new(vec![Column::new("c", DataType::Int)]),
            operands: ops.iter().copied().collect::<BTreeSet<_>>(),
            est_rows: 10.0,
        })
    }

    fn su(
        region: RegionId,
        bound_secs: i64,
        local: PhysicalPlan,
        rem: PhysicalPlan,
    ) -> PhysicalPlan {
        PhysicalPlan::SwitchUnion {
            guard: CurrencyGuard {
                region,
                heartbeat_table: format!("heartbeat_cr{}", region.0),
                bound: Duration::from_secs(bound_secs),
            },
            local: Box::new(local),
            remote: Box::new(rem),
        }
    }

    #[test]
    fn honest_analysis_passes_all_obligations() {
        let (catalog, _m) = rig::audit_catalog(0.005, 7).expect("rig");
        // CR1 H = 22s: bound 30 elides, bound 10 stays, bound 2 collapses.
        for bound in [30, 10, 2] {
            let plan = su(RegionId(1), bound, scan("cust_prj", 0), remote(&[0]));
            let analysis = analyze(&catalog, &plan);
            let elided = elide(&plan, &analysis);
            let obs = verify_elision(&catalog, &plan, &analysis, &elided.plan);
            assert!(
                elision_ok(&obs),
                "bound {bound}: {:?}",
                obs.iter()
                    .filter(|o| !o.status.is_proved())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn every_mutation_is_rejected() {
        let (catalog, _m) = rig::audit_catalog(0.005, 7).expect("rig");
        // Contingent bound for CR2 on the heartbeat-probe window: d+f = 15,
        // H = 17, so 16s flips under the dropped-heartbeat mutation. A 10s
        // guard exposes the stale-clock and elide-falsifiable mutations,
        // and the widened interval shows up at any view leaf.
        for mutation in Mutation::ALL {
            let bound = match mutation {
                Mutation::DropHeartbeatJoin => 16,
                _ => 10,
            };
            let plan = su(RegionId(2), bound, scan("orders_prj", 0), remote(&[0]));
            let analysis = analyze_mutated(&catalog, &plan, Some(mutation));
            let elided = elide(&plan, &analysis);
            let obs = verify_elision(&catalog, &plan, &analysis, &elided.plan);
            assert!(
                !elision_ok(&obs),
                "mutation {} must be rejected",
                mutation.label()
            );
        }
    }

    #[test]
    fn surviving_dead_guard_fails_maximality() {
        let (catalog, _m) = rig::audit_catalog(0.005, 7).expect("rig");
        let plan = su(RegionId(1), 30, scan("cust_prj", 0), remote(&[0]));
        let analysis = analyze(&catalog, &plan);
        // Lie: pretend nothing was elided — the original plan survives.
        let obs = verify_elision(&catalog, &plan, &analysis, &plan);
        assert!(!elision_ok(&obs));
        assert!(obs.iter().any(|o| matches!(
            &o.status,
            ObligationStatus::Violated(why) if why.contains("not maximal")
        )));
    }

    #[test]
    fn foreign_elided_plan_fails_structure_replay() {
        let (catalog, _m) = rig::audit_catalog(0.005, 7).expect("rig");
        let plan = su(RegionId(1), 10, scan("cust_prj", 0), remote(&[0]));
        let analysis = analyze(&catalog, &plan);
        // Keep decision, but hand the verifier a collapsed plan.
        let obs = verify_elision(&catalog, &plan, &analysis, &remote(&[0]));
        assert!(!elision_ok(&obs));
    }

    #[test]
    fn probe_bound_sits_in_heartbeat_window() {
        let (catalog, _m) = rig::audit_catalog(0.005, 7).expect("rig");
        let b = heartbeat_probe_bound(&catalog, "CR2").expect("probe");
        let region = catalog.region_by_name("CR2").expect("CR2");
        let df = region.update_delay.plus(region.update_interval);
        assert!(b > df);
        assert!(b <= df.plus(region.heartbeat_interval));
    }
}
