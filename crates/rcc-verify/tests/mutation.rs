//! Mutation tests: take *real* optimizer output for paper-shaped queries,
//! deliberately corrupt it the way an optimizer bug would, and prove the
//! static analyzer rejects every corrupted plan while accepting the
//! original. This is the regression guard that keeps `rcc-verify`
//! independent of — and adversarial to — the optimizer's own property
//! derivation.

use rcc_common::Duration;
use rcc_optimizer::physical::{LocalScanNode, PhysicalPlan};
use rcc_optimizer::{bind_select, optimize, OptimizerConfig};
use rcc_verify::{rig, verify_plan, ObligationKind};
use std::collections::HashMap;

fn optimize_sql(
    sql: &str,
    pullup: bool,
) -> (
    std::sync::Arc<rcc_catalog::Catalog>,
    rcc_optimizer::constraint::CCConstraint,
    PhysicalPlan,
) {
    let (catalog, _master) = rig::audit_catalog(0.005, 3).expect("rig");
    let stmt = match rcc_sql::parser::parse_statement(sql).expect("parse") {
        rcc_sql::ast::Statement::Select(s) => s,
        other => panic!("expected SELECT, got {other:?}"),
    };
    let graph = bind_select(&catalog, &stmt, &HashMap::new()).expect("bind");
    let config = OptimizerConfig {
        pullup_switch_union: pullup,
        ..OptimizerConfig::default()
    };
    let optimized = optimize(&catalog, &graph, &config).expect("optimize");
    (catalog, graph.constraint, optimized.plan)
}

/// Apply `f` to every SwitchUnion node in the plan; panics if none found
/// (the mutation would silently test nothing).
fn mutate_switch_unions(
    plan: &mut PhysicalPlan,
    f: &mut dyn FnMut(&mut rcc_optimizer::CurrencyGuard, &mut PhysicalPlan, &mut PhysicalPlan),
) -> usize {
    let mut hits = 0;
    visit(plan, f, &mut hits);
    assert!(hits > 0, "plan contains no SwitchUnion to mutate");
    return hits;

    fn visit(
        plan: &mut PhysicalPlan,
        f: &mut dyn FnMut(&mut rcc_optimizer::CurrencyGuard, &mut PhysicalPlan, &mut PhysicalPlan),
        hits: &mut usize,
    ) {
        match plan {
            PhysicalPlan::SwitchUnion {
                guard,
                local,
                remote,
            } => {
                *hits += 1;
                f(guard, local, remote);
                visit(local, f, hits);
                visit(remote, f, hits);
            }
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                visit(input, f, hits)
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. } => {
                visit(left, f, hits);
                visit(right, f, hits);
            }
            PhysicalPlan::IndexNLJoin { outer, .. } => visit(outer, f, hits),
            PhysicalPlan::HashAggregate { input, .. } => visit(input, f, hits),
            PhysicalPlan::Sort { input, .. } | PhysicalPlan::Limit { input, .. } => {
                visit(input, f, hits)
            }
            _ => {}
        }
    }
}

/// Find the first LocalScan anywhere in the plan (used to fabricate a
/// corrupted "local fallback" branch).
fn find_local_scan(plan: &PhysicalPlan) -> Option<LocalScanNode> {
    match plan {
        PhysicalPlan::LocalScan(n) => Some(n.clone()),
        PhysicalPlan::SwitchUnion { local, remote, .. } => {
            find_local_scan(local).or_else(|| find_local_scan(remote))
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. } => find_local_scan(input),
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::MergeJoin { left, right, .. } => {
            find_local_scan(left).or_else(|| find_local_scan(right))
        }
        PhysicalPlan::IndexNLJoin { outer, .. } => find_local_scan(outer),
        _ => None,
    }
}

const GUARDED_POINT: &str = "SELECT c_name, c_acctbal FROM customer \
     WHERE c_custkey = 17 CURRENCY BOUND 30 SEC ON (customer)";

#[test]
fn pristine_optimizer_output_verifies() {
    for pullup in [false, true] {
        let (catalog, constraint, plan) = optimize_sql(GUARDED_POINT, pullup);
        let report = verify_plan(&catalog, &constraint, &plan);
        assert!(report.ok(), "pristine plan rejected:\n{}", report.render());
    }
}

#[test]
fn loosened_guard_bound_is_caught() {
    let (catalog, constraint, mut plan) = optimize_sql(GUARDED_POINT, false);
    // Optimizer-bug simulation: the guard tests a bound looser than the
    // query's 30 s class, silently serving stale rows as "current enough".
    mutate_switch_unions(&mut plan, &mut |guard, _, _| {
        guard.bound = Duration::from_secs(600);
    });
    let report = verify_plan(&catalog, &constraint, &plan);
    assert!(!report.ok());
    assert!(report
        .violations()
        .iter()
        .any(|o| o.kind == ObligationKind::BoundSatisfiable));
}

#[test]
fn wrong_heartbeat_table_is_caught() {
    let (catalog, constraint, mut plan) = optimize_sql(GUARDED_POINT, false);
    // Guard probes a non-replicated table: its timestamp says nothing about
    // the region's snapshot, so the guard proves nothing.
    mutate_switch_unions(&mut plan, &mut |guard, _, _| {
        guard.heartbeat_table = "customer".into();
    });
    let report = verify_plan(&catalog, &constraint, &plan);
    assert!(!report.ok());
    assert!(report
        .violations()
        .iter()
        .any(|o| o.kind == ObligationKind::GuardWellFormed));
}

#[test]
fn local_fallback_branch_is_caught() {
    let (catalog, constraint, mut plan) = optimize_sql(GUARDED_POINT, false);
    // Replace the remote fallback with a copy of the local branch: when the
    // guard fails there is nowhere safe to go.
    let mut local_copy = None;
    mutate_switch_unions(&mut plan, &mut |_, local, _| {
        local_copy = Some(local.clone());
    });
    let scan = local_copy.expect("local branch");
    mutate_switch_unions(&mut plan, &mut |_, _, remote| {
        *remote = scan.clone();
    });
    let report = verify_plan(&catalog, &constraint, &plan);
    assert!(!report.ok());
    assert!(report
        .violations()
        .iter()
        .any(|o| o.kind == ObligationKind::RemoteFallbackSafe));
}

#[test]
fn cross_region_guard_swap_is_caught() {
    let (catalog, constraint, mut plan) = optimize_sql(GUARDED_POINT, false);
    // The customer view lives in CR1; point the guard at CR2's heartbeat.
    // The guard is internally consistent (real region, real heartbeat,
    // plausible bound) but dominates the wrong tables.
    let cr2 = catalog.region_by_name("CR2").expect("CR2");
    mutate_switch_unions(&mut plan, &mut |guard, _, _| {
        guard.region = cr2.id;
        guard.heartbeat_table = cr2.heartbeat_table_name();
    });
    let report = verify_plan(&catalog, &constraint, &plan);
    assert!(!report.ok());
    assert!(report
        .violations()
        .iter()
        .any(|o| o.kind == ObligationKind::GuardDominatesLocal
            || o.kind == ObligationKind::BoundSatisfiable));
}

#[test]
fn dropped_guard_is_caught() {
    let (catalog, constraint, plan) = optimize_sql(GUARDED_POINT, false);
    // Strip the SwitchUnion entirely, leaving the bare local branch — the
    // classic "forgot the guard" bug the audit hook exists for.
    let bare = find_local_scan(&plan).expect("local scan");
    let stripped = PhysicalPlan::LocalScan(bare);
    let report = verify_plan(&catalog, &constraint, &stripped);
    assert!(!report.ok());
    assert!(report
        .violations()
        .iter()
        .any(|o| o.kind == ObligationKind::BoundSatisfiable));
}
