#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Vectorized execution engine.
//!
//! Interprets [`rcc_optimizer::PhysicalPlan`] trees with batched volcano
//! operators: `open`/`next_batch`/`close`, where each pull yields a
//! columnar [`Batch`] of up to [`DEFAULT_BATCH_ROWS`] rows narrowed by
//! selection vectors instead of row copies. Expressions are compiled once
//! per operator open into ordinal form ([`PhysExpr`]), so the per-row hot
//! path carries no name resolution, no virtual dispatch and no `Row`
//! allocation. The original row-at-a-time engine is preserved verbatim in
//! [`rowref`] as the differential oracle — the batched engine is held
//! byte-identical to it on the wire.
//!
//! The three phases are instrumented separately because the paper's
//! guard-overhead experiment (Tables 4.4/4.5) breaks elapsed time down
//! into **setup** (instantiating the executable tree), **run** (producing
//! rows) and **shutdown** (closing the tree).
//!
//! The star of the show is the [`ops::SwitchUnionOp`]: when opened it
//! evaluates its *currency guard* — a point lookup in the region's local
//! heartbeat table, `ts > getdate() − B` — and then opens exactly one of
//! its branches; "the other inputs are not touched" (paper Sec. 3).
//! Branch decisions are counted in [`context::ExecCounters`], which is what
//! the workload-shift experiment (Fig. 4.2) measures.

pub mod analyze;
pub mod batch;
pub mod build;
pub mod context;
pub mod guard;
pub mod ops;
pub mod rowref;
pub mod wire;

pub use analyze::{execute_plan_analyzed, AnalyzedExecution, OpReport};
pub use batch::{Batch, PhysExpr, DEFAULT_BATCH_ROWS};
pub use build::{
    build_operator, execute_plan, execute_plan_batched, BatchExecutionResult, ExecutionResult,
    PhaseTimings,
};
pub use context::{
    ExecContext, ExecCounters, GuardObservation, QueryMeter, RemoteService, DEFAULT_MORSEL_ROWS,
    MAX_OBSERVATIONS,
};
pub use rowref::{build_row_operator, execute_plan_rows, RowOperator};
