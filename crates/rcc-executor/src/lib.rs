#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Volcano-style execution engine.
//!
//! Interprets [`rcc_optimizer::PhysicalPlan`] trees with classic
//! open/next/close operators. The three phases are instrumented separately
//! because the paper's guard-overhead experiment (Tables 4.4/4.5) breaks
//! elapsed time down into **setup** (instantiating the executable tree),
//! **run** (producing rows) and **shutdown** (closing the tree).
//!
//! The star of the show is the [`ops::SwitchUnionOp`]: when opened it
//! evaluates its *currency guard* — a point lookup in the region's local
//! heartbeat table, `ts > getdate() − B` — and then opens exactly one of
//! its branches; "the other inputs are not touched" (paper Sec. 3).
//! Branch decisions are counted in [`context::ExecCounters`], which is what
//! the workload-shift experiment (Fig. 4.2) measures.

pub mod analyze;
pub mod build;
pub mod context;
pub mod guard;
pub mod ops;
pub mod wire;

pub use analyze::{execute_plan_analyzed, AnalyzedExecution, OpReport};
pub use build::{build_operator, execute_plan, ExecutionResult, PhaseTimings};
pub use context::{
    ExecContext, ExecCounters, GuardObservation, QueryMeter, RemoteService, DEFAULT_MORSEL_ROWS,
    MAX_OBSERVATIONS,
};
