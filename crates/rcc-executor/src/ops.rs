//! The physical operators — vectorized batch edition.
//!
//! Every operator follows the batched volcano discipline: `open` acquires
//! resources, compiles its expressions to ordinals ([`PhysExpr`]) and
//! computes whatever the strategy needs up front (hash tables, guard
//! decisions, buffered scans); `next_batch` yields a columnar [`Batch`] of
//! up to `ctx.batch_rows` logical rows at a time; `close` releases.
//! Operators never return an empty batch — exhaustion is `None` — so
//! consumers can loop on `next_batch` without special-casing zero rows.
//!
//! Filters narrow batches with **selection vectors** (ascending physical
//! row indices) instead of copying survivors, and scans fill column
//! buffers straight out of [`rcc_storage::Table::fill_morsel_columns`] —
//! rejected rows are never materialized, and per-row virtual dispatch,
//! name resolution and `Row` allocation are gone from the hot loop. The
//! original row-at-a-time engine survives as [`crate::rowref`], the
//! differential oracle this engine is held byte-identical to.

use crate::batch::{Batch, BatchSource, PhysExpr, RowSource};
use crate::context::ExecContext;
use crate::guard::evaluate_guard;
use rcc_common::{Error, Result, Row, Schema, Value};
use rcc_optimizer::graph::JoinKind;
use rcc_optimizer::physical::{AccessPath, InnerAccess};
use rcc_optimizer::{AggCall, AggFunc, BoundExpr, CurrencyGuard};
use rcc_storage::{KeyRange, Table, TableSnapshot};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The operator interface.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Prepare for producing batches.
    fn open(&mut self, ctx: &ExecContext) -> Result<()>;
    /// Produce the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>>;
    /// Release resources.
    fn close(&mut self, ctx: &ExecContext) -> Result<()>;
}

/// Boxed operator tree node.
pub type BoxedOp = Box<dyn Operator>;

fn now_millis(ctx: &ExecContext) -> i64 {
    ctx.clock.now().millis()
}

/// Ship SQL to the back-end with remote-ship accounting: round-trip wall
/// time, sub-query count and wire bytes flow into the per-query meter;
/// aggregate counts into the shared [`crate::context::ExecCounters`].
/// Shared with the row reference engine in [`crate::rowref`].
pub(crate) fn ship_remote(ctx: &ExecContext, sql: &str) -> Result<(Schema, Vec<Row>)> {
    use std::sync::atomic::Ordering;
    let remote = ctx
        .remote
        .as_ref()
        .ok_or_else(|| Error::Remote("no back-end connection configured".into()))?;
    let started = std::time::Instant::now();
    let result = remote.execute_traced(sql, ctx.trace.as_ref());
    ctx.meter
        .remote_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let (schema, rows, bytes) = result?;
    ctx.meter.remote_queries.fetch_add(1, Ordering::Relaxed);
    ctx.meter.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    ctx.counters.remote_queries.fetch_add(1, Ordering::Relaxed);
    ctx.counters
        .rows_shipped
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
    Ok((schema, rows))
}

/// Split buffered rows into dense batches of `target` logical rows.
fn rows_to_batches(width: usize, rows: Vec<Row>, target: usize) -> VecDeque<Batch> {
    let target = target.max(1);
    if rows.is_empty() {
        return VecDeque::new();
    }
    let mut out = VecDeque::with_capacity(rows.len().div_ceil(target));
    let mut rows = rows;
    while rows.len() > target {
        let rest = rows.split_off(target);
        out.push_back(Batch::from_rows(width, rows));
        rows = rest;
    }
    out.push_back(Batch::from_rows(width, rows));
    out
}

// ----------------------------------------------------------------- OneRow

/// Emits a single zero-width batch of cardinality one.
pub struct OneRowOp {
    schema: Schema,
    done: bool,
}

impl OneRowOp {
    /// Build.
    pub fn new() -> OneRowOp {
        OneRowOp {
            schema: Schema::empty(),
            done: false,
        }
    }
}

impl Default for OneRowOp {
    fn default() -> Self {
        Self::new()
    }
}

impl Operator for OneRowOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn open(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.done = false;
        Ok(())
    }
    fn next_batch(&mut self, _ctx: &ExecContext) -> Result<Option<Batch>> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(Batch::new(vec![], 1)))
        }
    }
    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        Ok(())
    }
}

// -------------------------------------------------------------- LocalScan

/// Scan of a local storage object with access-path pushdown, producing one
/// columnar batch per morsel.
pub struct LocalScanOp {
    object: String,
    schema: Schema,
    access: AccessPath,
    residual: Option<BoundExpr>,
    buffer: VecDeque<Batch>,
}

impl LocalScanOp {
    /// Build from plan-node fields.
    pub fn new(
        object: String,
        schema: Schema,
        access: AccessPath,
        residual: Option<BoundExpr>,
    ) -> LocalScanOp {
        LocalScanOp {
            object,
            schema,
            access,
            residual,
            buffer: VecDeque::new(),
        }
    }
}

/// The scan kernel: decide per stored row whether it survives the residual
/// predicate, and append survivors' mapped columns to output buffers. The
/// residual is compiled against the scan's *output* schema, then remapped
/// into *stored* ordinals — so it runs directly on stored rows and
/// rejected rows are never projected or copied. One kernel is shared (via
/// `Arc`) by the serial path and all parallel morsels, so both paths run
/// identical per-row code — which keeps them bit-identical.
struct ScanKernel {
    mapping: Arc<Vec<usize>>,
    /// Residual in stored ordinals.
    residual: Option<PhysExpr>,
    now: i64,
}

impl ScanKernel {
    fn keep(&self, row: &Row) -> Result<bool> {
        match &self.residual {
            Some(p) => p.eval_predicate(&RowSource(row.values()), self.now),
            None => Ok(true),
        }
    }

    fn push(&self, row: &Row, cols: &mut [Vec<Value>]) {
        for (c, col) in cols.iter_mut().enumerate() {
            col.push(row.get(self.mapping[c]).clone());
        }
    }

    fn fresh_cols(&self, capacity: usize) -> Vec<Vec<Value>> {
        (0..self.mapping.len())
            .map(|_| Vec::with_capacity(capacity))
            .collect()
    }

    /// Fill one clustered morsel into a single columnar batch.
    fn fill_clustered(
        &self,
        table: &Table,
        range: &KeyRange,
        start: Option<&[Value]>,
        end: Option<&[Value]>,
    ) -> Result<Batch> {
        let mut cols = self.fresh_cols(0);
        let n = table.fill_morsel_columns(
            range,
            start,
            end,
            &self.mapping,
            |row| self.keep(row),
            &mut cols,
        )?;
        Ok(Batch::new(cols, n))
    }
}

/// Inclusive-start / exclusive-end key bounds of one morsel, owned so the
/// bound vector can be scattered across pool workers.
type MorselBounds = (Option<Vec<Value>>, Option<Vec<Value>>);

/// Run one clustered-range scan over an immutable snapshot, splitting it
/// into key-ordered morsels on the context's pool when that is worthwhile
/// (one columnar batch per morsel). Morsel batches are concatenated in
/// morsel order, so the logical row stream is exactly what the serial scan
/// would produce, in the same order.
fn scan_clustered(
    ctx: &ExecContext,
    table: &TableSnapshot,
    range: &KeyRange,
    kernel: &Arc<ScanKernel>,
) -> Result<VecDeque<Batch>> {
    use std::sync::atomic::Ordering;
    if let Some(pool) = ctx.scan_pool.as_ref().filter(|p| p.size() > 1) {
        let plan = table.plan_morsels(range, ctx.morsel_rows.max(1));
        let morsels = plan.morsel_count();
        if morsels >= 2 {
            ctx.counters.parallel_scans.fetch_add(1, Ordering::Relaxed);
            ctx.counters
                .scan_morsels
                .fetch_add(morsels as u64, Ordering::Relaxed);
            if let Some(metrics) = ctx.metrics.as_deref() {
                metrics
                    .histogram(
                        "rcc_scan_morsels_per_scan",
                        &[],
                        rcc_obs::DEFAULT_MORSEL_BUCKETS,
                    )
                    .observe(morsels as f64);
            }
            let bounds: Vec<MorselBounds> = (0..morsels)
                .map(|i| {
                    let (start, end) = plan.bounds(i);
                    (start.map(|k| k.to_vec()), end.map(|k| k.to_vec()))
                })
                .collect();
            // One shared fill closure: the snapshot, range and kernel are
            // captured once behind the Arc, not cloned per morsel.
            let table = Arc::clone(table);
            let range = range.clone();
            let kernel = Arc::clone(kernel);
            let fill = Arc::new(move |(start, end): MorselBounds| -> Result<Batch> {
                kernel.fill_clustered(&table, &range, start.as_deref(), end.as_deref())
            });
            return pool
                .scatter_map(bounds, fill)
                .into_iter()
                .filter(|b| !matches!(b, Ok(b) if b.is_empty()))
                .collect();
        }
    }
    ctx.counters.serial_scans.fetch_add(1, Ordering::Relaxed);
    // Serial: one pass over the range, splitting full column buffers off
    // into batches of `ctx.batch_rows` as they fill.
    let target = ctx.batch_rows.max(1);
    let mut batches = VecDeque::new();
    let mut cols = kernel.fresh_cols(target);
    let mut filled = 0usize;
    let mut err: Option<Error> = None;
    table.scan_range(
        range,
        |_| true,
        |row| {
            if err.is_some() {
                return;
            }
            match kernel.keep(row) {
                Ok(true) => {
                    kernel.push(row, &mut cols);
                    filled += 1;
                    if filled == target {
                        let full = std::mem::replace(&mut cols, kernel.fresh_cols(target));
                        batches.push_back(Batch::new(full, filled));
                        filled = 0;
                    }
                }
                Ok(false) => {}
                Err(e) => err = Some(e),
            }
        },
    );
    if let Some(e) = err {
        return Err(e);
    }
    if filled > 0 {
        batches.push_back(Batch::new(cols, filled));
    }
    Ok(batches)
}

/// Run one secondary-index scan over an immutable snapshot. The ordered
/// clustered-key list (the result's spine) is resolved serially from the
/// index; when a pool is available the point lookups are chunked across
/// workers (one batch per chunk) and re-concatenated in chunk order —
/// same rows, same order as the serial path.
fn scan_index(
    ctx: &ExecContext,
    table: &TableSnapshot,
    index: &str,
    range: &KeyRange,
    kernel: &Arc<ScanKernel>,
) -> Result<VecDeque<Batch>> {
    use std::sync::atomic::Ordering;
    let morsel_rows = ctx.morsel_rows.max(1);
    if let Some(pool) = ctx.scan_pool.as_ref().filter(|p| p.size() > 1) {
        let pks = table.index_pks(index, range)?;
        if pks.len() >= 2 * morsel_rows {
            let chunks: Vec<Vec<Vec<Value>>> =
                pks.chunks(morsel_rows).map(|c| c.to_vec()).collect();
            ctx.counters.parallel_scans.fetch_add(1, Ordering::Relaxed);
            ctx.counters
                .scan_morsels
                .fetch_add(chunks.len() as u64, Ordering::Relaxed);
            if let Some(metrics) = ctx.metrics.as_deref() {
                metrics
                    .histogram(
                        "rcc_scan_morsels_per_scan",
                        &[],
                        rcc_obs::DEFAULT_MORSEL_BUCKETS,
                    )
                    .observe(chunks.len() as f64);
            }
            let table = Arc::clone(table);
            let kernel = Arc::clone(kernel);
            let fill = Arc::new(move |chunk: Vec<Vec<Value>>| -> Result<Batch> {
                let mut cols = kernel.fresh_cols(chunk.len());
                let mut n = 0usize;
                for pk in &chunk {
                    if let Some(row) = table.get(pk) {
                        if kernel.keep(row)? {
                            kernel.push(row, &mut cols);
                            n += 1;
                        }
                    }
                }
                Ok(Batch::new(cols, n))
            });
            return pool
                .scatter_map(chunks, fill)
                .into_iter()
                .filter(|b| !matches!(b, Ok(b) if b.is_empty()))
                .collect();
        }
    }
    ctx.counters.serial_scans.fetch_add(1, Ordering::Relaxed);
    let target = ctx.batch_rows.max(1);
    let mut batches = VecDeque::new();
    let mut cols = kernel.fresh_cols(target);
    let mut filled = 0usize;
    for row in table.index_scan(index, range)? {
        if kernel.keep(&row)? {
            kernel.push(&row, &mut cols);
            filled += 1;
            if filled == target {
                let full = std::mem::replace(&mut cols, kernel.fresh_cols(target));
                batches.push_back(Batch::new(full, filled));
                filled = 0;
            }
        }
    }
    if filled > 0 {
        batches.push_back(Batch::new(cols, filled));
    }
    Ok(batches)
}

impl Operator for LocalScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        // One immutable snapshot for the whole scan: no lock is held while
        // scanning, and a concurrent refresh publish cannot tear the view.
        let table: TableSnapshot = ctx.storage.table(&self.object)?.snapshot();
        // map output columns to stored ordinals by name
        let mapping: Arc<Vec<usize>> = Arc::new(
            self.schema
                .columns()
                .iter()
                .map(|c| table.schema().resolve(None, &c.name))
                .collect::<Result<_>>()?,
        );
        let residual = match &self.residual {
            Some(p) => Some(PhysExpr::compile(p, &self.schema)?.remap(&mapping)),
            None => None,
        };
        let kernel = Arc::new(ScanKernel {
            mapping,
            residual,
            now: now_millis(ctx),
        });
        self.buffer = match &self.access {
            AccessPath::FullScan => scan_clustered(ctx, &table, &KeyRange::all(), &kernel)?,
            AccessPath::ClusteredRange { range, .. } => {
                scan_clustered(ctx, &table, range, &kernel)?
            }
            AccessPath::IndexRange { index, range, .. } => {
                scan_index(ctx, &table, index, range, &kernel)?
            }
        };
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &ExecContext) -> Result<Option<Batch>> {
        // morsels that filtered down to nothing are skipped
        while let Some(batch) = self.buffer.pop_front() {
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.buffer.clear();
        Ok(())
    }
}

// ------------------------------------------------------------ RemoteQuery

/// Ships SQL to the back-end and streams the returned rows as batches.
pub struct RemoteQueryOp {
    sql: String,
    schema: Schema,
    buffer: VecDeque<Batch>,
}

impl RemoteQueryOp {
    /// Build.
    pub fn new(sql: String, schema: Schema) -> RemoteQueryOp {
        RemoteQueryOp {
            sql,
            schema,
            buffer: VecDeque::new(),
        }
    }
}

impl Operator for RemoteQueryOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        let (_, rows) = ship_remote(ctx, &self.sql)?;
        for row in &rows {
            if row.len() != self.schema.len() {
                return Err(Error::Remote(format!(
                    "remote result arity {} does not match expected schema arity {}",
                    row.len(),
                    self.schema.len()
                )));
            }
        }
        self.buffer = rows_to_batches(self.schema.len(), rows, ctx.batch_rows);
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &ExecContext) -> Result<Option<Batch>> {
        Ok(self.buffer.pop_front())
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.buffer.clear();
        Ok(())
    }
}

// ------------------------------------------------------------ SwitchUnion

/// The dynamic-plan operator: its selector (the currency guard) is
/// evaluated **once** at open; all batches then come from the chosen
/// branch and the other input is never touched. Batching amortizes the
/// guard further: one evaluation now covers thousands of rows instead of
/// being revisited per row of bookkeeping.
pub struct SwitchUnionOp {
    guard: CurrencyGuard,
    local: BoxedOp,
    remote: BoxedOp,
    use_local: bool,
    opened: bool,
}

impl SwitchUnionOp {
    /// Build.
    pub fn new(guard: CurrencyGuard, local: BoxedOp, remote: BoxedOp) -> SwitchUnionOp {
        SwitchUnionOp {
            guard,
            local,
            remote,
            use_local: false,
            opened: false,
        }
    }
}

impl Operator for SwitchUnionOp {
    fn schema(&self) -> &Schema {
        self.local.schema()
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.use_local = evaluate_guard(ctx, &self.guard)?;
        self.opened = true;
        if self.use_local {
            self.local.open(ctx)
        } else {
            self.remote.open(ctx)
        }
    }

    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        if self.use_local {
            self.local.next_batch(ctx)
        } else {
            self.remote.next_batch(ctx)
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        if !self.opened {
            return Ok(());
        }
        self.opened = false;
        if self.use_local {
            self.local.close(ctx)
        } else {
            self.remote.close(ctx)
        }
    }
}

// ----------------------------------------------------------------- Filter

/// Predicate filter: narrows each input batch with a selection vector —
/// survivors are never copied.
pub struct FilterOp {
    input: BoxedOp,
    predicate: BoundExpr,
    compiled: Option<PhysExpr>,
}

impl FilterOp {
    /// Build.
    pub fn new(input: BoxedOp, predicate: BoundExpr) -> FilterOp {
        FilterOp {
            input,
            predicate,
            compiled: None,
        }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)?;
        self.compiled = Some(PhysExpr::compile(&self.predicate, self.input.schema())?);
        Ok(())
    }
    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        let now = now_millis(ctx);
        let predicate = self
            .compiled
            .as_ref()
            .ok_or_else(|| Error::internal("Filter next_batch before open"))?;
        while let Some(batch) = self.input.next_batch(ctx)? {
            let len = batch.len();
            let mut sel: Vec<u32> = Vec::with_capacity(len);
            for i in 0..len {
                let p = batch.phys(i);
                let src = BatchSource {
                    columns: &batch.columns,
                    row: p,
                };
                if predicate.eval_predicate(&src, now)? {
                    sel.push(p as u32);
                }
            }
            if let Some(metrics) = ctx.metrics.as_deref() {
                metrics
                    .histogram(
                        "rcc_batch_selectivity",
                        &[],
                        rcc_obs::DEFAULT_SELECTIVITY_BUCKETS,
                    )
                    .observe(sel.len() as f64 / len as f64);
            }
            if sel.is_empty() {
                continue;
            }
            if sel.len() == len {
                return Ok(Some(batch)); // everything survived: keep as-is
            }
            return Ok(Some(batch.with_sel(sel)));
        }
        Ok(None)
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.compiled = None;
        self.input.close(ctx)
    }
}

// ---------------------------------------------------------------- Project

/// Expression projection over whole batches. Bare-column outputs move or
/// gather the input buffer wholesale; computed outputs evaluate per row
/// through the compiled expression.
pub struct ProjectOp {
    input: BoxedOp,
    exprs: Vec<BoundExpr>,
    compiled: Vec<PhysExpr>,
    schema: Schema,
}

impl ProjectOp {
    /// Build; `exprs` paired with output names.
    pub fn new(input: BoxedOp, exprs: Vec<(BoundExpr, String)>) -> ProjectOp {
        use rcc_common::{Column, DataType};
        let schema = Schema::new(
            exprs
                .iter()
                .map(|(_, n)| Column::new(n.clone(), DataType::Int))
                .collect(),
        );
        ProjectOp {
            input,
            exprs: exprs.into_iter().map(|(e, _)| e).collect(),
            compiled: Vec::new(),
            schema,
        }
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)?;
        self.compiled = PhysExpr::compile_all(&self.exprs, self.input.schema())?;
        Ok(())
    }
    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        let now = now_millis(ctx);
        let mut batch = match self.input.next_batch(ctx)? {
            Some(b) => b,
            None => return Ok(None),
        };
        let n = batch.len();
        let mut outputs: Vec<Option<Vec<Value>>> = vec![None; self.compiled.len()];
        // computed outputs first — they may read columns that bare-column
        // outputs move out below
        for (k, e) in self.compiled.iter().enumerate() {
            if e.as_column().is_none() {
                let mut col = Vec::with_capacity(n);
                for i in 0..n {
                    let src = BatchSource {
                        columns: &batch.columns,
                        row: batch.phys(i),
                    };
                    col.push(e.eval(&src, now)?);
                }
                outputs[k] = Some(col);
            }
        }
        // bare columns: dense batches move the buffer on its last use and
        // clone earlier ones; selected batches gather through the selection
        match batch.sel.clone() {
            None => {
                let mut remaining: HashMap<usize, usize> = HashMap::new();
                for e in &self.compiled {
                    if let Some(i) = e.as_column() {
                        *remaining.entry(i).or_insert(0) += 1;
                    }
                }
                for (k, e) in self.compiled.iter().enumerate() {
                    if let Some(i) = e.as_column() {
                        let uses = remaining.get_mut(&i).expect("counted above");
                        *uses -= 1;
                        outputs[k] = Some(if *uses == 0 {
                            std::mem::take(&mut batch.columns[i])
                        } else {
                            batch.columns[i].clone()
                        });
                    }
                }
            }
            Some(sel) => {
                for (k, e) in self.compiled.iter().enumerate() {
                    if let Some(i) = e.as_column() {
                        let col = &batch.columns[i];
                        outputs[k] = Some(sel.iter().map(|&p| col[p as usize].clone()).collect());
                    }
                }
            }
        }
        let columns = outputs
            .into_iter()
            .map(|c| c.expect("every output produced"))
            .collect();
        Ok(Some(Batch::new(columns, n)))
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.compiled.clear();
        self.input.close(ctx)
    }
}

// --------------------------------------------------------------- HashJoin

/// Hash join: builds on the right input, probes with whole left batches.
/// Semi/anti joins narrow the left batch with a selection vector; inner
/// joins materialize concatenated rows.
pub struct HashJoinOp {
    left: BoxedOp,
    right: BoxedOp,
    left_keys: Vec<BoundExpr>,
    right_keys: Vec<BoundExpr>,
    compiled_left: Vec<PhysExpr>,
    kind: JoinKind,
    schema: Schema,
    table: HashMap<Vec<Value>, Vec<Row>>,
}

impl HashJoinOp {
    /// Build.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        kind: JoinKind,
    ) -> HashJoinOp {
        let schema = match kind {
            JoinKind::Inner => left.schema().join(right.schema()),
            JoinKind::Semi | JoinKind::Anti => left.schema().clone(),
        };
        HashJoinOp {
            left,
            right,
            left_keys,
            right_keys,
            compiled_left: Vec::new(),
            kind,
            schema,
            table: HashMap::new(),
        }
    }
}

/// Evaluate join keys for one batch row; `None` when any key is NULL
/// (NULL keys never match).
fn eval_batch_keys(
    keys: &[PhysExpr],
    src: &BatchSource<'_>,
    now: i64,
) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = k.eval(src, now)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

impl Operator for HashJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        let now = now_millis(ctx);
        self.right.open(ctx)?;
        let right_keys = PhysExpr::compile_all(&self.right_keys, self.right.schema())?;
        while let Some(batch) = self.right.next_batch(ctx)? {
            for i in 0..batch.len() {
                let src = BatchSource {
                    columns: &batch.columns,
                    row: batch.phys(i),
                };
                if let Some(key) = eval_batch_keys(&right_keys, &src, now)? {
                    self.table.entry(key).or_default().push(batch.row(i));
                }
            }
        }
        self.right.close(ctx)?;
        self.left.open(ctx)?;
        self.compiled_left = PhysExpr::compile_all(&self.left_keys, self.left.schema())?;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        let now = now_millis(ctx);
        while let Some(batch) = self.left.next_batch(ctx)? {
            match self.kind {
                JoinKind::Inner => {
                    let mut out: Vec<Row> = Vec::new();
                    for i in 0..batch.len() {
                        let src = BatchSource {
                            columns: &batch.columns,
                            row: batch.phys(i),
                        };
                        let key = eval_batch_keys(&self.compiled_left, &src, now)?;
                        if let Some(ms) = key.as_ref().and_then(|k| self.table.get(k)) {
                            let left_row = batch.row(i);
                            for m in ms {
                                out.push(left_row.concat(m));
                            }
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(Batch::from_rows(self.schema.len(), out)));
                    }
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let want_match = self.kind == JoinKind::Semi;
                    let mut sel: Vec<u32> = Vec::new();
                    for i in 0..batch.len() {
                        let p = batch.phys(i);
                        let src = BatchSource {
                            columns: &batch.columns,
                            row: p,
                        };
                        let key = eval_batch_keys(&self.compiled_left, &src, now)?;
                        let matched = key
                            .as_ref()
                            .and_then(|k| self.table.get(k))
                            .map(|m| !m.is_empty())
                            .unwrap_or(false);
                        if matched == want_match {
                            sel.push(p as u32);
                        }
                    }
                    if sel.len() == batch.len() {
                        return Ok(Some(batch));
                    }
                    if !sel.is_empty() {
                        return Ok(Some(batch.with_sel(sel)));
                    }
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.table.clear();
        self.compiled_left.clear();
        self.left.close(ctx)
    }
}

// -------------------------------------------------------------- MergeJoin

/// Pulls rows one at a time off a batched input — the streaming shim merge
/// join needs for its lookahead discipline.
struct RowStream {
    op: BoxedOp,
    batch: Option<Batch>,
    idx: usize,
}

impl RowStream {
    fn new(op: BoxedOp) -> RowStream {
        RowStream {
            op,
            batch: None,
            idx: 0,
        }
    }

    fn next_row(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        loop {
            if let Some(batch) = &self.batch {
                if self.idx < batch.len() {
                    let row = batch.row(self.idx);
                    self.idx += 1;
                    return Ok(Some(row));
                }
            }
            match self.op.next_batch(ctx)? {
                Some(batch) => {
                    self.batch = Some(batch);
                    self.idx = 0;
                }
                None => {
                    self.batch = None;
                    return Ok(None);
                }
            }
        }
    }
}

/// Merge join over inputs already sorted (non-decreasing) on the join
/// keys. Handles duplicate keys on both sides by buffering the right-hand
/// group. Inner joins only — the optimizer routes semi/anti joins through
/// the hash path. Output rows are re-batched at `ctx.batch_rows`.
pub struct MergeJoinOp {
    left: RowStream,
    right: RowStream,
    left_key: BoundExpr,
    right_key: BoundExpr,
    compiled_left: Option<PhysExpr>,
    compiled_right: Option<PhysExpr>,
    schema: Schema,
    /// current right-hand duplicate group and its key
    right_group: Vec<Row>,
    right_group_key: Option<Value>,
    /// lookahead row already pulled from the right input
    right_pending: Option<Row>,
    /// current left row and the index into the right group
    left_current: Option<(Row, usize)>,
    right_done: bool,
}

impl MergeJoinOp {
    /// Build.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_key: BoundExpr,
        right_key: BoundExpr,
    ) -> MergeJoinOp {
        let schema = left.schema().join(right.schema());
        MergeJoinOp {
            left: RowStream::new(left),
            right: RowStream::new(right),
            left_key,
            right_key,
            compiled_left: None,
            compiled_right: None,
            schema,
            right_group: Vec::new(),
            right_group_key: None,
            right_pending: None,
            left_current: None,
            right_done: false,
        }
    }

    fn next_right(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if let Some(r) = self.right_pending.take() {
            return Ok(Some(r));
        }
        if self.right_done {
            return Ok(None);
        }
        match self.right.next_row(ctx)? {
            Some(r) => Ok(Some(r)),
            None => {
                self.right_done = true;
                Ok(None)
            }
        }
    }

    /// Advance the right-hand group until its key is ≥ `key`; returns true
    /// when the group's key equals `key`.
    fn align_right_group(&mut self, ctx: &ExecContext, key: &Value) -> Result<bool> {
        let now = now_millis(ctx);
        let right_key = self
            .compiled_right
            .clone()
            .ok_or_else(|| Error::internal("MergeJoin next before open"))?;
        loop {
            if let Some(gk) = &self.right_group_key {
                match gk.total_cmp(key) {
                    std::cmp::Ordering::Equal => return Ok(true),
                    std::cmp::Ordering::Greater => return Ok(false),
                    std::cmp::Ordering::Less => {}
                }
            }
            // build the next group
            let first = match self.next_right(ctx)? {
                Some(r) => r,
                None => {
                    // exhausted: only match if the last group equals key
                    return Ok(self
                        .right_group_key
                        .as_ref()
                        .map(|gk| gk == key)
                        .unwrap_or(false));
                }
            };
            let gk = right_key.eval(&RowSource(first.values()), now)?;
            let mut group = vec![first];
            while let Some(r) = self.next_right(ctx)? {
                let k = right_key.eval(&RowSource(r.values()), now)?;
                if k == gk {
                    group.push(r);
                } else {
                    self.right_pending = Some(r);
                    break;
                }
            }
            self.right_group = group;
            self.right_group_key = Some(gk);
        }
    }

    /// One output row of the merge, or `None` when the join is drained.
    fn next_joined_row(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        let now = now_millis(ctx);
        let left_key = self
            .compiled_left
            .clone()
            .ok_or_else(|| Error::internal("MergeJoin next before open"))?;
        loop {
            // emit the remainder of the current (left row × right group)
            if let Some((row, idx)) = &mut self.left_current {
                if *idx < self.right_group.len() {
                    let out = row.concat(&self.right_group[*idx]);
                    *idx += 1;
                    return Ok(Some(out));
                }
                self.left_current = None;
            }
            let left_row = match self.left.next_row(ctx)? {
                Some(r) => r,
                None => return Ok(None),
            };
            let key = left_key.eval(&RowSource(left_row.values()), now)?;
            if key.is_null() {
                continue; // NULL keys never match
            }
            if self.align_right_group(ctx, &key)? {
                self.left_current = Some((left_row, 0));
            }
        }
    }
}

impl Operator for MergeJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.right_group.clear();
        self.right_group_key = None;
        self.right_pending = None;
        self.left_current = None;
        self.right_done = false;
        self.left.op.open(ctx)?;
        self.right.op.open(ctx)?;
        self.compiled_left = Some(PhysExpr::compile(&self.left_key, self.left.op.schema())?);
        self.compiled_right = Some(PhysExpr::compile(&self.right_key, self.right.op.schema())?);
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        let target = ctx.batch_rows.max(1);
        let mut out: Vec<Row> = Vec::new();
        while out.len() < target {
            match self.next_joined_row(ctx)? {
                Some(row) => out.push(row),
                None => break,
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::from_rows(self.schema.len(), out)))
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.right_group.clear();
        self.left.op.close(ctx)?;
        self.right.op.close(ctx)
    }
}

// ------------------------------------------------------------ IndexNLJoin

enum InnerMode {
    /// Seek the local object per outer row, against one immutable snapshot
    /// pinned at open — every seek of the join sees the same table state,
    /// and no lock is held across the join.
    Local(TableSnapshot),
    /// The guard failed: inner rows were fetched remotely and hashed.
    Hashed(HashMap<Value, Vec<Row>>),
    /// Not opened yet (or closed).
    Idle,
}

/// Index nested-loop join with an optionally guarded inner side, probing
/// one whole outer batch per `next_batch` call. Semi/anti joins narrow the
/// outer batch with a selection vector.
pub struct IndexNLJoinOp {
    outer: BoxedOp,
    outer_key: BoundExpr,
    compiled_key: Option<PhysExpr>,
    inner: InnerAccess,
    kind: JoinKind,
    schema: Schema,
    mode: InnerMode,
    /// precomputed mapping from inner schema to the stored table (local mode)
    mapping: Vec<usize>,
    /// inner residual in stored ordinals (local mode)
    inner_residual: Option<PhysExpr>,
}

impl IndexNLJoinOp {
    /// Build.
    pub fn new(
        outer: BoxedOp,
        outer_key: BoundExpr,
        inner: InnerAccess,
        kind: JoinKind,
    ) -> IndexNLJoinOp {
        let schema = match kind {
            JoinKind::Inner => outer.schema().join(&inner.schema),
            JoinKind::Semi | JoinKind::Anti => outer.schema().clone(),
        };
        IndexNLJoinOp {
            outer,
            outer_key,
            compiled_key: None,
            inner,
            kind,
            schema,
            mode: InnerMode::Idle,
            mapping: Vec::new(),
            inner_residual: None,
        }
    }

    fn seek_local(&self, ctx: &ExecContext, table: &Table, key: &Value) -> Result<Vec<Row>> {
        let range = KeyRange::eq(key.clone());
        let raw: Vec<Row> = match &self.inner.use_index {
            Some(ix) => table.index_scan(ix, &range)?,
            None => table.collect_range(&range, |_| true),
        };
        let now = now_millis(ctx);
        let mut out = Vec::with_capacity(raw.len());
        for row in raw {
            let keep = match &self.inner_residual {
                Some(p) => p.eval_predicate(&RowSource(row.values()), now)?,
                None => true,
            };
            if keep {
                out.push(Row::new(
                    self.mapping.iter().map(|&i| row.get(i).clone()).collect(),
                ));
            }
        }
        Ok(out)
    }

    fn matches_for(&self, ctx: &ExecContext, key: &Value) -> Result<Vec<Row>> {
        if key.is_null() {
            return Ok(Vec::new()); // NULL keys never match
        }
        match &self.mode {
            InnerMode::Local(snap) => self.seek_local(ctx, snap, key),
            InnerMode::Hashed(map) => Ok(map.get(key).cloned().unwrap_or_default()),
            InnerMode::Idle => Err(Error::internal("IndexNLJoin next before open")),
        }
    }
}

impl Operator for IndexNLJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        let use_local = if self.inner.force_remote {
            false
        } else {
            match &self.inner.guard {
                Some(g) => evaluate_guard(ctx, g)?,
                None => true,
            }
        };
        if use_local {
            let table = ctx.storage.table(&self.inner.object)?.snapshot();
            self.mapping = self
                .inner
                .schema
                .columns()
                .iter()
                .map(|c| table.schema().resolve(None, &c.name))
                .collect::<Result<_>>()?;
            self.inner_residual = match &self.inner.residual {
                Some(p) => Some(PhysExpr::compile(p, &self.inner.schema)?.remap(&self.mapping)),
                None => None,
            };
            self.mode = InnerMode::Local(table);
        } else {
            let sql = self
                .inner
                .remote_sql
                .as_ref()
                .ok_or_else(|| Error::internal("guarded NL inner without a remote fallback"))?;
            let (_, rows) = ship_remote(ctx, sql)?;
            let seek_ord = self.inner.schema.resolve(None, &self.inner.seek_col)?;
            let mut map: HashMap<Value, Vec<Row>> = HashMap::new();
            for row in rows {
                let k = row.get(seek_ord).clone();
                if !k.is_null() {
                    map.entry(k).or_default().push(row);
                }
            }
            self.mode = InnerMode::Hashed(map);
        }
        self.outer.open(ctx)?;
        self.compiled_key = Some(PhysExpr::compile(&self.outer_key, self.outer.schema())?);
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        let now = now_millis(ctx);
        let outer_key = self
            .compiled_key
            .clone()
            .ok_or_else(|| Error::internal("IndexNLJoin next before open"))?;
        while let Some(batch) = self.outer.next_batch(ctx)? {
            match self.kind {
                JoinKind::Inner => {
                    let mut out: Vec<Row> = Vec::new();
                    for i in 0..batch.len() {
                        let src = BatchSource {
                            columns: &batch.columns,
                            row: batch.phys(i),
                        };
                        let key = outer_key.eval(&src, now)?;
                        let matches = self.matches_for(ctx, &key)?;
                        if !matches.is_empty() {
                            let outer_row = batch.row(i);
                            for m in &matches {
                                out.push(outer_row.concat(m));
                            }
                        }
                    }
                    if !out.is_empty() {
                        return Ok(Some(Batch::from_rows(self.schema.len(), out)));
                    }
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let want_match = self.kind == JoinKind::Semi;
                    let mut sel: Vec<u32> = Vec::new();
                    for i in 0..batch.len() {
                        let p = batch.phys(i);
                        let src = BatchSource {
                            columns: &batch.columns,
                            row: p,
                        };
                        let key = outer_key.eval(&src, now)?;
                        let matched = !self.matches_for(ctx, &key)?.is_empty();
                        if matched == want_match {
                            sel.push(p as u32);
                        }
                    }
                    if sel.len() == batch.len() {
                        return Ok(Some(batch));
                    }
                    if !sel.is_empty() {
                        return Ok(Some(batch.with_sel(sel)));
                    }
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.mode = InnerMode::Idle;
        self.compiled_key = None;
        self.inner_residual = None;
        self.outer.close(ctx)
    }
}

// ---------------------------------------------------------- HashAggregate

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum { total: f64, seen: bool, int: bool },
    Avg { total: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(call: &AggCall) -> AggState {
        match call.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                seen: false,
                int: true,
            },
            AggFunc::Avg => AggState::Avg {
                total: 0.0,
                count: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None-argument calls counted unconditionally;
                // COUNT(e) skips NULLs — the builder passes Some(NULL) there.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum { total, seen, int } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if matches!(val, Value::Float(_)) {
                            *int = false;
                        }
                        *total += val.as_float()?;
                        *seen = true;
                    }
                }
            }
            AggState::Avg { total, count } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *total += val.as_float()?;
                        *count += 1;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().map(|c| &val < c).unwrap_or(true) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().map(|c| &val > c).unwrap_or(true) {
                        *cur = Some(val);
                    }
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum { total, seen, int } => {
                if !seen {
                    Value::Null
                } else if int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Hash aggregation with HAVING, consuming whole input batches.
pub struct HashAggregateOp {
    input: BoxedOp,
    group_by: Vec<BoundExpr>,
    aggs: Vec<AggCall>,
    having: Option<BoundExpr>,
    schema: Schema,
    results: VecDeque<Batch>,
}

impl HashAggregateOp {
    /// Build.
    pub fn new(
        input: BoxedOp,
        group_by: Vec<(BoundExpr, String)>,
        aggs: Vec<AggCall>,
        having: Option<BoundExpr>,
    ) -> HashAggregateOp {
        use rcc_common::{Column, DataType};
        let mut cols = Vec::new();
        for (_, name) in &group_by {
            cols.push(Column::new(name.clone(), DataType::Int).with_qualifier("#agg"));
        }
        for a in &aggs {
            cols.push(Column::new(a.output_name.clone(), DataType::Float).with_qualifier("#agg"));
        }
        HashAggregateOp {
            input,
            group_by: group_by.into_iter().map(|(e, _)| e).collect(),
            aggs,
            having,
            schema: Schema::new(cols),
            results: VecDeque::new(),
        }
    }
}

impl Operator for HashAggregateOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)?;
        let now = now_millis(ctx);
        let in_schema = self.input.schema();
        let group_by = PhysExpr::compile_all(&self.group_by, in_schema)?;
        let args: Vec<Option<PhysExpr>> = self
            .aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| PhysExpr::compile(e, in_schema))
                    .transpose()
            })
            .collect::<Result<_>>()?;
        // insertion-ordered groups for deterministic output
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        let mut saw_row = false;
        while let Some(batch) = self.input.next_batch(ctx)? {
            for i in 0..batch.len() {
                saw_row = true;
                let src = BatchSource {
                    columns: &batch.columns,
                    row: batch.phys(i),
                };
                let key: Vec<Value> = group_by
                    .iter()
                    .map(|e| e.eval(&src, now))
                    .collect::<Result<_>>()?;
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert_with(|| self.aggs.iter().map(AggState::new).collect())
                    }
                };
                for (arg, state) in args.iter().zip(states.iter_mut()) {
                    let v = match arg {
                        Some(e) => Some(e.eval(&src, now)?),
                        None => None,
                    };
                    state.update(v)?;
                }
            }
        }
        self.input.close(ctx)?;

        // global aggregation over an empty input still yields one row
        if !saw_row && self.group_by.is_empty() {
            order.push(vec![]);
            groups.insert(vec![], self.aggs.iter().map(AggState::new).collect());
        }

        let having = self
            .having
            .as_ref()
            .map(|h| PhysExpr::compile(h, &self.schema))
            .transpose()?;
        let mut out_rows = Vec::with_capacity(order.len());
        for key in order {
            let states = groups.remove(&key).expect("group recorded");
            let mut values = key;
            for s in states {
                values.push(s.finalize());
            }
            let keep = match &having {
                Some(h) => h.eval_predicate(&RowSource(&values), now)?,
                None => true,
            };
            if keep {
                out_rows.push(Row::new(values));
            }
        }
        self.results = rows_to_batches(self.schema.len(), out_rows, ctx.batch_rows);
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &ExecContext) -> Result<Option<Batch>> {
        Ok(self.results.pop_front())
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.results.clear();
        Ok(())
    }
}

// --------------------------------------------------- Sort, Limit, Distinct

/// Full sort on output ordinals: drains the input, sorts row-major, then
/// re-batches.
pub struct SortOp {
    input: BoxedOp,
    keys: Vec<(usize, bool)>,
    buffer: VecDeque<Batch>,
}

impl SortOp {
    /// Build.
    pub fn new(input: BoxedOp, keys: Vec<(usize, bool)>) -> SortOp {
        SortOp {
            input,
            keys,
            buffer: VecDeque::new(),
        }
    }
}

impl Operator for SortOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)?;
        let width = self.input.schema().len();
        let mut rows = Vec::new();
        while let Some(batch) = self.input.next_batch(ctx)? {
            rows.extend(batch.into_rows());
        }
        self.input.close(ctx)?;
        let keys = self.keys.clone();
        rows.sort_by(|a, b| {
            for (ord, asc) in &keys {
                let cmp = a.get(*ord).total_cmp(b.get(*ord));
                let cmp = if *asc { cmp } else { cmp.reverse() };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.buffer = rows_to_batches(width, rows, ctx.batch_rows);
        Ok(())
    }
    fn next_batch(&mut self, _ctx: &ExecContext) -> Result<Option<Batch>> {
        Ok(self.buffer.pop_front())
    }
    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.buffer.clear();
        Ok(())
    }
}

/// LIMIT n: truncates the batch that crosses the limit.
pub struct LimitOp {
    input: BoxedOp,
    n: u64,
    produced: u64,
}

impl LimitOp {
    /// Build.
    pub fn new(input: BoxedOp, n: u64) -> LimitOp {
        LimitOp {
            input,
            n,
            produced: 0,
        }
    }
}

impl Operator for LimitOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.produced = 0;
        self.input.open(ctx)
    }
    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        if self.produced >= self.n {
            return Ok(None);
        }
        match self.input.next_batch(ctx)? {
            Some(mut batch) => {
                let remaining = (self.n - self.produced) as usize;
                if batch.len() > remaining {
                    batch.truncate(remaining);
                }
                self.produced += batch.len() as u64;
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}

/// DISTINCT over whole rows, narrowing each batch to its first-seen rows
/// with a selection vector.
pub struct DistinctOp {
    input: BoxedOp,
    seen: HashSet<Row>,
}

impl DistinctOp {
    /// Build.
    pub fn new(input: BoxedOp) -> DistinctOp {
        DistinctOp {
            input,
            seen: HashSet::new(),
        }
    }
}

impl Operator for DistinctOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.seen.clear();
        self.input.open(ctx)
    }
    fn next_batch(&mut self, ctx: &ExecContext) -> Result<Option<Batch>> {
        while let Some(batch) = self.input.next_batch(ctx)? {
            let mut sel: Vec<u32> = Vec::new();
            for i in 0..batch.len() {
                let p = batch.phys(i);
                if self.seen.insert(batch.row(i)) {
                    sel.push(p as u32);
                }
            }
            if sel.len() == batch.len() {
                return Ok(Some(batch));
            }
            if !sel.is_empty() {
                return Ok(Some(batch.with_sel(sel)));
            }
        }
        Ok(None)
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.seen.clear();
        self.input.close(ctx)
    }
}
