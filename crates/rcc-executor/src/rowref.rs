//! The row-at-a-time reference engine.
//!
//! This is the original volcano executor, preserved verbatim after the
//! batched engine in [`crate::ops`] replaced it on the hot path. It serves
//! two jobs: the differential oracle for the batched engine (the identity
//! sweep asserts batched wire bytes equal these wire bytes on every corpus
//! query) and the row-engine baseline in `BENCH_scan.json`'s
//! batched-vs-row comparison. Operators follow the volcano discipline:
//! `open` acquires resources, `next` yields one row at a time, `close`
//! releases.

use crate::build::{ExecutionResult, PhaseTimings};
use crate::context::ExecContext;
use crate::guard::evaluate_guard;
use crate::ops::ship_remote;
use rcc_common::{Error, Result, Row, Schema, Value};
use rcc_optimizer::graph::JoinKind;
use rcc_optimizer::physical::{AccessPath, InnerAccess};
use rcc_optimizer::{AggCall, AggFunc, BoundExpr, CurrencyGuard, PhysicalPlan};
use rcc_storage::{KeyRange, Table, TableSnapshot};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// The row-at-a-time operator interface.
pub trait RowOperator: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Prepare for producing rows.
    fn open(&mut self, ctx: &ExecContext) -> Result<()>;
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>>;
    /// Release resources.
    fn close(&mut self, ctx: &ExecContext) -> Result<()>;
}

/// Boxed row-operator tree node.
pub type BoxedRowOp = Box<dyn RowOperator>;

fn now_millis(ctx: &ExecContext) -> i64 {
    ctx.clock.now().millis()
}

// ----------------------------------------------------------------- OneRow

/// Emits a single empty row.
struct OneRowOp {
    schema: Schema,
    done: bool,
}

impl OneRowOp {
    fn new() -> OneRowOp {
        OneRowOp {
            schema: Schema::empty(),
            done: false,
        }
    }
}

impl RowOperator for OneRowOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn open(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.done = false;
        Ok(())
    }
    fn next(&mut self, _ctx: &ExecContext) -> Result<Option<Row>> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(Row::new(vec![])))
        }
    }
    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        Ok(())
    }
}

// -------------------------------------------------------------- LocalScan

/// Scan of a local storage object with access-path pushdown.
struct LocalScanOp {
    object: String,
    schema: Schema,
    access: AccessPath,
    residual: Option<BoundExpr>,
    buffer: VecDeque<Row>,
}

impl LocalScanOp {
    fn new(
        object: String,
        schema: Schema,
        access: AccessPath,
        residual: Option<BoundExpr>,
    ) -> LocalScanOp {
        LocalScanOp {
            object,
            schema,
            access,
            residual,
            buffer: VecDeque::new(),
        }
    }
}

/// The per-row scan kernel: project a stored row through `mapping`, apply
/// the residual predicate, and append survivors to `out`. One kernel is
/// built per scan and cloned into every parallel morsel, so the serial
/// path and all workers run the identical per-row code — which is what
/// keeps the two paths bit-identical.
#[derive(Clone)]
struct ScanKernel {
    mapping: Arc<Vec<usize>>,
    schema: Schema,
    residual: Option<BoundExpr>,
    now: i64,
}

impl ScanKernel {
    fn apply(&self, row: &Row, out: &mut Vec<Row>) -> Result<()> {
        let projected = Row::new(self.mapping.iter().map(|&i| row.get(i).clone()).collect());
        let keep = match &self.residual {
            Some(p) => p.eval_predicate(&projected, &self.schema, self.now)?,
            None => true,
        };
        if keep {
            out.push(projected);
        }
        Ok(())
    }
}

/// Run one clustered-range scan over an immutable snapshot, splitting it
/// into key-ordered morsels on the context's pool when that is worthwhile.
/// Morsel outputs are concatenated in morsel order, so the returned rows
/// are exactly what the serial scan would produce, in the same order.
fn scan_clustered(
    ctx: &ExecContext,
    table: &TableSnapshot,
    range: &KeyRange,
    kernel: &ScanKernel,
) -> Result<Vec<Row>> {
    use std::sync::atomic::Ordering;
    if let Some(pool) = ctx.scan_pool.as_ref().filter(|p| p.size() > 1) {
        let plan = table.plan_morsels(range, ctx.morsel_rows.max(1));
        let morsels = plan.morsel_count();
        if morsels >= 2 {
            ctx.counters.parallel_scans.fetch_add(1, Ordering::Relaxed);
            ctx.counters
                .scan_morsels
                .fetch_add(morsels as u64, Ordering::Relaxed);
            if let Some(metrics) = ctx.metrics.as_deref() {
                metrics
                    .histogram(
                        "rcc_scan_morsels_per_scan",
                        &[],
                        rcc_obs::DEFAULT_MORSEL_BUCKETS,
                    )
                    .observe(morsels as f64);
            }
            let jobs: Vec<_> = (0..morsels)
                .map(|i| {
                    let (start, end) = plan.bounds(i);
                    let start = start.map(|k| k.to_vec());
                    let end = end.map(|k| k.to_vec());
                    let table = Arc::clone(table);
                    let range = range.clone();
                    let kernel = kernel.clone();
                    move || -> Result<Vec<Row>> {
                        let mut out = Vec::new();
                        let mut err = None;
                        table.scan_morsel(
                            &range,
                            start.as_deref(),
                            end.as_deref(),
                            |_| true,
                            |row| {
                                if err.is_none() {
                                    if let Err(e) = kernel.apply(row, &mut out) {
                                        err = Some(e);
                                    }
                                }
                            },
                        );
                        match err {
                            Some(e) => Err(e),
                            None => Ok(out),
                        }
                    }
                })
                .collect();
            let mut merged = Vec::new();
            for morsel in pool.scatter(jobs) {
                merged.extend(morsel?);
            }
            return Ok(merged);
        }
    }
    ctx.counters.serial_scans.fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::new();
    let mut err = None;
    table.scan_range(
        range,
        |_| true,
        |row| {
            if err.is_none() {
                if let Err(e) = kernel.apply(row, &mut out) {
                    err = Some(e);
                }
            }
        },
    );
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Run one secondary-index scan over an immutable snapshot. The ordered
/// clustered-key list (the result's spine) is resolved serially from the
/// index; when a pool is available the point lookups are chunked across
/// workers and re-concatenated in chunk order — same rows, same order as
/// the serial path.
fn scan_index(
    ctx: &ExecContext,
    table: &TableSnapshot,
    index: &str,
    range: &KeyRange,
    kernel: &ScanKernel,
) -> Result<Vec<Row>> {
    use std::sync::atomic::Ordering;
    let morsel_rows = ctx.morsel_rows.max(1);
    if let Some(pool) = ctx.scan_pool.as_ref().filter(|p| p.size() > 1) {
        let pks = table.index_pks(index, range)?;
        if pks.len() >= 2 * morsel_rows {
            let chunks: Vec<Vec<Vec<Value>>> =
                pks.chunks(morsel_rows).map(|c| c.to_vec()).collect();
            ctx.counters.parallel_scans.fetch_add(1, Ordering::Relaxed);
            ctx.counters
                .scan_morsels
                .fetch_add(chunks.len() as u64, Ordering::Relaxed);
            if let Some(metrics) = ctx.metrics.as_deref() {
                metrics
                    .histogram(
                        "rcc_scan_morsels_per_scan",
                        &[],
                        rcc_obs::DEFAULT_MORSEL_BUCKETS,
                    )
                    .observe(chunks.len() as f64);
            }
            let jobs: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let table = Arc::clone(table);
                    let kernel = kernel.clone();
                    move || -> Result<Vec<Row>> {
                        let mut out = Vec::new();
                        for pk in &chunk {
                            if let Some(row) = table.get(pk) {
                                kernel.apply(row, &mut out)?;
                            }
                        }
                        Ok(out)
                    }
                })
                .collect();
            let mut merged = Vec::new();
            for morsel in pool.scatter(jobs) {
                merged.extend(morsel?);
            }
            return Ok(merged);
        }
    }
    ctx.counters.serial_scans.fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::new();
    for row in table.index_scan(index, range)? {
        kernel.apply(&row, &mut out)?;
    }
    Ok(out)
}

impl RowOperator for LocalScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        // One immutable snapshot for the whole scan: no lock is held while
        // scanning, and a concurrent refresh publish cannot tear the view.
        let table: TableSnapshot = ctx.storage.table(&self.object)?.snapshot();
        // map output columns to stored ordinals by name
        let mapping: Arc<Vec<usize>> = Arc::new(
            self.schema
                .columns()
                .iter()
                .map(|c| table.schema().resolve(None, &c.name))
                .collect::<Result<_>>()?,
        );
        let kernel = ScanKernel {
            mapping,
            schema: self.schema.clone(),
            residual: self.residual.clone(),
            now: now_millis(ctx),
        };
        let rows = match &self.access {
            AccessPath::FullScan => scan_clustered(ctx, &table, &KeyRange::all(), &kernel)?,
            AccessPath::ClusteredRange { range, .. } => {
                scan_clustered(ctx, &table, range, &kernel)?
            }
            AccessPath::IndexRange { index, range, .. } => {
                scan_index(ctx, &table, index, range, &kernel)?
            }
        };
        self.buffer = rows.into();
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext) -> Result<Option<Row>> {
        Ok(self.buffer.pop_front())
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.buffer.clear();
        Ok(())
    }
}

// ------------------------------------------------------------ RemoteQuery

/// Ships SQL to the back-end and streams the returned rows.
struct RemoteQueryOp {
    sql: String,
    schema: Schema,
    buffer: VecDeque<Row>,
}

impl RemoteQueryOp {
    fn new(sql: String, schema: Schema) -> RemoteQueryOp {
        RemoteQueryOp {
            sql,
            schema,
            buffer: VecDeque::new(),
        }
    }
}

impl RowOperator for RemoteQueryOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        let (_, rows) = ship_remote(ctx, &self.sql)?;
        for row in &rows {
            if row.len() != self.schema.len() {
                return Err(Error::Remote(format!(
                    "remote result arity {} does not match expected schema arity {}",
                    row.len(),
                    self.schema.len()
                )));
            }
        }
        self.buffer = rows.into();
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext) -> Result<Option<Row>> {
        Ok(self.buffer.pop_front())
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.buffer.clear();
        Ok(())
    }
}

// ------------------------------------------------------------ SwitchUnion

/// The dynamic-plan operator: its selector (the currency guard) is
/// evaluated once at open; all rows then come from the chosen branch.
struct SwitchUnionOp {
    guard: CurrencyGuard,
    local: BoxedRowOp,
    remote: BoxedRowOp,
    use_local: bool,
    opened: bool,
}

impl SwitchUnionOp {
    fn new(guard: CurrencyGuard, local: BoxedRowOp, remote: BoxedRowOp) -> SwitchUnionOp {
        SwitchUnionOp {
            guard,
            local,
            remote,
            use_local: false,
            opened: false,
        }
    }
}

impl RowOperator for SwitchUnionOp {
    fn schema(&self) -> &Schema {
        self.local.schema()
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.use_local = evaluate_guard(ctx, &self.guard)?;
        self.opened = true;
        if self.use_local {
            self.local.open(ctx)
        } else {
            self.remote.open(ctx)
        }
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if self.use_local {
            self.local.next(ctx)
        } else {
            self.remote.next(ctx)
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        if !self.opened {
            return Ok(());
        }
        self.opened = false;
        if self.use_local {
            self.local.close(ctx)
        } else {
            self.remote.close(ctx)
        }
    }
}

// ----------------------------------------------------------------- Filter

/// Predicate filter.
struct FilterOp {
    input: BoxedRowOp,
    predicate: BoundExpr,
}

impl RowOperator for FilterOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)
    }
    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        let now = now_millis(ctx);
        let schema = self.input.schema().clone();
        while let Some(row) = self.input.next(ctx)? {
            if self.predicate.eval_predicate(&row, &schema, now)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}

// ---------------------------------------------------------------- Project

/// Expression projection.
struct ProjectOp {
    input: BoxedRowOp,
    exprs: Vec<BoundExpr>,
    schema: Schema,
}

impl ProjectOp {
    fn new(input: BoxedRowOp, exprs: Vec<(BoundExpr, String)>) -> ProjectOp {
        use rcc_common::{Column, DataType};
        let schema = Schema::new(
            exprs
                .iter()
                .map(|(_, n)| Column::new(n.clone(), DataType::Int))
                .collect(),
        );
        ProjectOp {
            input,
            exprs: exprs.into_iter().map(|(e, _)| e).collect(),
            schema,
        }
    }
}

impl RowOperator for ProjectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)
    }
    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        let now = now_millis(ctx);
        let in_schema = self.input.schema().clone();
        match self.input.next(ctx)? {
            Some(row) => {
                let values: Vec<Value> = self
                    .exprs
                    .iter()
                    .map(|e| e.eval(&row, &in_schema, now))
                    .collect::<Result<_>>()?;
                Ok(Some(Row::new(values)))
            }
            None => Ok(None),
        }
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}

// --------------------------------------------------------------- HashJoin

/// Hash join: builds on the right input, probes with the left.
struct HashJoinOp {
    left: BoxedRowOp,
    right: BoxedRowOp,
    left_keys: Vec<BoundExpr>,
    right_keys: Vec<BoundExpr>,
    kind: JoinKind,
    schema: Schema,
    table: HashMap<Vec<Value>, Vec<Row>>,
    pending: VecDeque<Row>,
}

impl HashJoinOp {
    fn new(
        left: BoxedRowOp,
        right: BoxedRowOp,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        kind: JoinKind,
    ) -> HashJoinOp {
        let schema = match kind {
            JoinKind::Inner => left.schema().join(right.schema()),
            JoinKind::Semi | JoinKind::Anti => left.schema().clone(),
        };
        HashJoinOp {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            schema,
            table: HashMap::new(),
            pending: VecDeque::new(),
        }
    }
}

fn eval_keys(
    keys: &[BoundExpr],
    row: &Row,
    schema: &Schema,
    now: i64,
) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = k.eval(row, schema, now)?;
        if v.is_null() {
            return Ok(None); // NULL keys never match
        }
        out.push(v);
    }
    Ok(Some(out))
}

impl RowOperator for HashJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        let now = now_millis(ctx);
        self.right.open(ctx)?;
        let right_schema = self.right.schema().clone();
        while let Some(row) = self.right.next(ctx)? {
            if let Some(key) = eval_keys(&self.right_keys, &row, &right_schema, now)? {
                self.table.entry(key).or_default().push(row);
            }
        }
        self.right.close(ctx)?;
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if let Some(row) = self.pending.pop_front() {
            return Ok(Some(row));
        }
        let now = now_millis(ctx);
        let left_schema = self.left.schema().clone();
        while let Some(left_row) = self.left.next(ctx)? {
            let key = eval_keys(&self.left_keys, &left_row, &left_schema, now)?;
            let matches = key.as_ref().and_then(|k| self.table.get(k));
            match self.kind {
                JoinKind::Inner => {
                    if let Some(ms) = matches {
                        for m in ms {
                            self.pending.push_back(left_row.concat(m));
                        }
                        if let Some(row) = self.pending.pop_front() {
                            return Ok(Some(row));
                        }
                    }
                }
                JoinKind::Semi => {
                    if matches.map(|m| !m.is_empty()).unwrap_or(false) {
                        return Ok(Some(left_row));
                    }
                }
                JoinKind::Anti => {
                    if matches.map(|m| m.is_empty()).unwrap_or(true) {
                        return Ok(Some(left_row));
                    }
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.table.clear();
        self.pending.clear();
        self.left.close(ctx)
    }
}

// -------------------------------------------------------------- MergeJoin

/// Merge join over inputs already sorted (non-decreasing) on the join
/// keys. Handles duplicate keys on both sides by buffering the right-hand
/// group. Inner joins only — the optimizer routes semi/anti joins through
/// the hash path.
struct MergeJoinOp {
    left: BoxedRowOp,
    right: BoxedRowOp,
    left_key: BoundExpr,
    right_key: BoundExpr,
    schema: Schema,
    /// current right-hand duplicate group and its key
    right_group: Vec<Row>,
    right_group_key: Option<Value>,
    /// lookahead row already pulled from the right input
    right_pending: Option<Row>,
    /// current left row and the index into the right group
    left_current: Option<(Row, usize)>,
    right_done: bool,
}

impl MergeJoinOp {
    fn new(
        left: BoxedRowOp,
        right: BoxedRowOp,
        left_key: BoundExpr,
        right_key: BoundExpr,
    ) -> MergeJoinOp {
        let schema = left.schema().join(right.schema());
        MergeJoinOp {
            left,
            right,
            left_key,
            right_key,
            schema,
            right_group: Vec::new(),
            right_group_key: None,
            right_pending: None,
            left_current: None,
            right_done: false,
        }
    }

    fn next_right(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if let Some(r) = self.right_pending.take() {
            return Ok(Some(r));
        }
        if self.right_done {
            return Ok(None);
        }
        match self.right.next(ctx)? {
            Some(r) => Ok(Some(r)),
            None => {
                self.right_done = true;
                Ok(None)
            }
        }
    }

    /// Advance the right-hand group until its key is ≥ `key`; returns true
    /// when the group's key equals `key`.
    fn align_right_group(&mut self, ctx: &ExecContext, key: &Value) -> Result<bool> {
        let now = now_millis(ctx);
        let right_schema = self.right.schema().clone();
        loop {
            if let Some(gk) = &self.right_group_key {
                match gk.total_cmp(key) {
                    std::cmp::Ordering::Equal => return Ok(true),
                    std::cmp::Ordering::Greater => return Ok(false),
                    std::cmp::Ordering::Less => {}
                }
            }
            // build the next group
            let first = match self.next_right(ctx)? {
                Some(r) => r,
                None => {
                    // exhausted: only match if the last group equals key
                    return Ok(self
                        .right_group_key
                        .as_ref()
                        .map(|gk| gk == key)
                        .unwrap_or(false));
                }
            };
            let gk = self.right_key.eval(&first, &right_schema, now)?;
            let mut group = vec![first];
            while let Some(r) = self.next_right(ctx)? {
                let k = self.right_key.eval(&r, &right_schema, now)?;
                if k == gk {
                    group.push(r);
                } else {
                    self.right_pending = Some(r);
                    break;
                }
            }
            self.right_group = group;
            self.right_group_key = Some(gk);
        }
    }
}

impl RowOperator for MergeJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.right_group.clear();
        self.right_group_key = None;
        self.right_pending = None;
        self.left_current = None;
        self.right_done = false;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        let now = now_millis(ctx);
        let left_schema = self.left.schema().clone();
        loop {
            // emit the remainder of the current (left row × right group)
            if let Some((row, idx)) = &mut self.left_current {
                if *idx < self.right_group.len() {
                    let out = row.concat(&self.right_group[*idx]);
                    *idx += 1;
                    return Ok(Some(out));
                }
                self.left_current = None;
            }
            let left_row = match self.left.next(ctx)? {
                Some(r) => r,
                None => return Ok(None),
            };
            let key = self.left_key.eval(&left_row, &left_schema, now)?;
            if key.is_null() {
                continue; // NULL keys never match
            }
            if self.align_right_group(ctx, &key)? {
                self.left_current = Some((left_row, 0));
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.right_group.clear();
        self.left.close(ctx)?;
        self.right.close(ctx)
    }
}

// ------------------------------------------------------------ IndexNLJoin

enum InnerMode {
    /// Seek the local object per outer row, against one immutable snapshot
    /// pinned at open — every seek of the join sees the same table state,
    /// and no lock is held across the join.
    Local(TableSnapshot),
    /// The guard failed: inner rows were fetched remotely and hashed.
    Hashed(HashMap<Value, Vec<Row>>),
    /// Not opened yet (or closed).
    Idle,
}

/// Index nested-loop join with an optionally guarded inner side.
struct IndexNLJoinOp {
    outer: BoxedRowOp,
    outer_key: BoundExpr,
    inner: InnerAccess,
    kind: JoinKind,
    schema: Schema,
    mode: InnerMode,
    pending: VecDeque<Row>,
    /// precomputed mapping from inner schema to the stored table (local mode)
    mapping: Vec<usize>,
}

impl IndexNLJoinOp {
    fn new(
        outer: BoxedRowOp,
        outer_key: BoundExpr,
        inner: InnerAccess,
        kind: JoinKind,
    ) -> IndexNLJoinOp {
        let schema = match kind {
            JoinKind::Inner => outer.schema().join(&inner.schema),
            JoinKind::Semi | JoinKind::Anti => outer.schema().clone(),
        };
        IndexNLJoinOp {
            outer,
            outer_key,
            inner,
            kind,
            schema,
            mode: InnerMode::Idle,
            pending: VecDeque::new(),
            mapping: Vec::new(),
        }
    }

    fn seek_local(&self, ctx: &ExecContext, table: &Table, key: &Value) -> Result<Vec<Row>> {
        let range = KeyRange::eq(key.clone());
        let raw: Vec<Row> = match &self.inner.use_index {
            Some(ix) => table.index_scan(ix, &range)?,
            None => table.collect_range(&range, |_| true),
        };
        let now = now_millis(ctx);
        let mut out = Vec::with_capacity(raw.len());
        for row in raw {
            let projected = Row::new(self.mapping.iter().map(|&i| row.get(i).clone()).collect());
            let keep = match &self.inner.residual {
                Some(p) => p.eval_predicate(&projected, &self.inner.schema, now)?,
                None => true,
            };
            if keep {
                out.push(projected);
            }
        }
        Ok(out)
    }
}

impl RowOperator for IndexNLJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        let use_local = if self.inner.force_remote {
            false
        } else {
            match &self.inner.guard {
                Some(g) => evaluate_guard(ctx, g)?,
                None => true,
            }
        };
        if use_local {
            let table = ctx.storage.table(&self.inner.object)?.snapshot();
            self.mapping = self
                .inner
                .schema
                .columns()
                .iter()
                .map(|c| table.schema().resolve(None, &c.name))
                .collect::<Result<_>>()?;
            self.mode = InnerMode::Local(table);
        } else {
            let sql = self
                .inner
                .remote_sql
                .as_ref()
                .ok_or_else(|| Error::internal("guarded NL inner without a remote fallback"))?;
            let (_, rows) = ship_remote(ctx, sql)?;
            let seek_ord = self.inner.schema.resolve(None, &self.inner.seek_col)?;
            let mut map: HashMap<Value, Vec<Row>> = HashMap::new();
            for row in rows {
                let k = row.get(seek_ord).clone();
                if !k.is_null() {
                    map.entry(k).or_default().push(row);
                }
            }
            self.mode = InnerMode::Hashed(map);
        }
        self.outer.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if let Some(row) = self.pending.pop_front() {
            return Ok(Some(row));
        }
        let now = now_millis(ctx);
        let outer_schema = self.outer.schema().clone();
        while let Some(outer_row) = self.outer.next(ctx)? {
            let key = self.outer_key.eval(&outer_row, &outer_schema, now)?;
            let matches: Vec<Row> = if key.is_null() {
                Vec::new()
            } else {
                match &self.mode {
                    InnerMode::Local(snap) => self.seek_local(ctx, snap, &key)?,
                    InnerMode::Hashed(map) => map.get(&key).cloned().unwrap_or_default(),
                    InnerMode::Idle => return Err(Error::internal("IndexNLJoin next before open")),
                }
            };
            match self.kind {
                JoinKind::Inner => {
                    for m in &matches {
                        self.pending.push_back(outer_row.concat(m));
                    }
                    if let Some(row) = self.pending.pop_front() {
                        return Ok(Some(row));
                    }
                }
                JoinKind::Semi => {
                    if !matches.is_empty() {
                        return Ok(Some(outer_row));
                    }
                }
                JoinKind::Anti => {
                    if matches.is_empty() {
                        return Ok(Some(outer_row));
                    }
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.pending.clear();
        self.mode = InnerMode::Idle;
        self.outer.close(ctx)
    }
}

// ---------------------------------------------------------- HashAggregate

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum { total: f64, seen: bool, int: bool },
    Avg { total: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(call: &AggCall) -> AggState {
        match call.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                seen: false,
                int: true,
            },
            AggFunc::Avg => AggState::Avg {
                total: 0.0,
                count: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) gets None-argument calls counted unconditionally;
                // COUNT(e) skips NULLs — the builder passes Some(NULL) there.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum { total, seen, int } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if matches!(val, Value::Float(_)) {
                            *int = false;
                        }
                        *total += val.as_float()?;
                        *seen = true;
                    }
                }
            }
            AggState::Avg { total, count } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *total += val.as_float()?;
                        *count += 1;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().map(|c| &val < c).unwrap_or(true) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() && cur.as_ref().map(|c| &val > c).unwrap_or(true) {
                        *cur = Some(val);
                    }
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum { total, seen, int } => {
                if !seen {
                    Value::Null
                } else if int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Hash aggregation with HAVING.
struct HashAggregateOp {
    input: BoxedRowOp,
    group_by: Vec<BoundExpr>,
    aggs: Vec<AggCall>,
    having: Option<BoundExpr>,
    schema: Schema,
    results: VecDeque<Row>,
}

impl HashAggregateOp {
    fn new(
        input: BoxedRowOp,
        group_by: Vec<(BoundExpr, String)>,
        aggs: Vec<AggCall>,
        having: Option<BoundExpr>,
    ) -> HashAggregateOp {
        use rcc_common::{Column, DataType};
        let mut cols = Vec::new();
        for (_, name) in &group_by {
            cols.push(Column::new(name.clone(), DataType::Int).with_qualifier("#agg"));
        }
        for a in &aggs {
            cols.push(Column::new(a.output_name.clone(), DataType::Float).with_qualifier("#agg"));
        }
        HashAggregateOp {
            input,
            group_by: group_by.into_iter().map(|(e, _)| e).collect(),
            aggs,
            having,
            schema: Schema::new(cols),
            results: VecDeque::new(),
        }
    }
}

impl RowOperator for HashAggregateOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)?;
        let now = now_millis(ctx);
        let in_schema = self.input.schema().clone();
        // insertion-ordered groups for deterministic output
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        let mut saw_row = false;
        while let Some(row) = self.input.next(ctx)? {
            saw_row = true;
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|e| e.eval(&row, &in_schema, now))
                .collect::<Result<_>>()?;
            let states = match groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    order.push(key.clone());
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| self.aggs.iter().map(AggState::new).collect())
                }
            };
            for (call, state) in self.aggs.iter().zip(states.iter_mut()) {
                let v = match &call.arg {
                    Some(e) => Some(e.eval(&row, &in_schema, now)?),
                    None => None,
                };
                state.update(v)?;
            }
        }
        self.input.close(ctx)?;

        // global aggregation over an empty input still yields one row
        if !saw_row && self.group_by.is_empty() {
            order.push(vec![]);
            groups.insert(vec![], self.aggs.iter().map(AggState::new).collect());
        }

        for key in order {
            let states = groups.remove(&key).expect("group recorded");
            let mut values = key;
            for s in states {
                values.push(s.finalize());
            }
            let row = Row::new(values);
            let keep = match &self.having {
                Some(h) => h.eval_predicate(&row, &self.schema, now)?,
                None => true,
            };
            if keep {
                self.results.push_back(row);
            }
        }
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext) -> Result<Option<Row>> {
        Ok(self.results.pop_front())
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.results.clear();
        Ok(())
    }
}

// --------------------------------------------------- Sort, Limit, Distinct

/// Full sort on output ordinals.
struct SortOp {
    input: BoxedRowOp,
    keys: Vec<(usize, bool)>,
    buffer: VecDeque<Row>,
}

impl RowOperator for SortOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)?;
        let mut rows = Vec::new();
        while let Some(row) = self.input.next(ctx)? {
            rows.push(row);
        }
        self.input.close(ctx)?;
        let keys = self.keys.clone();
        rows.sort_by(|a, b| {
            for (ord, asc) in &keys {
                let cmp = a.get(*ord).total_cmp(b.get(*ord));
                let cmp = if *asc { cmp } else { cmp.reverse() };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.buffer = rows.into();
        Ok(())
    }
    fn next(&mut self, _ctx: &ExecContext) -> Result<Option<Row>> {
        Ok(self.buffer.pop_front())
    }
    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.buffer.clear();
        Ok(())
    }
}

/// LIMIT n.
struct LimitOp {
    input: BoxedRowOp,
    n: u64,
    produced: u64,
}

impl RowOperator for LimitOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.produced = 0;
        self.input.open(ctx)
    }
    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if self.produced >= self.n {
            return Ok(None);
        }
        match self.input.next(ctx)? {
            Some(row) => {
                self.produced += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}

/// DISTINCT over whole rows.
struct DistinctOp {
    input: BoxedRowOp,
    seen: HashSet<Row>,
}

impl RowOperator for DistinctOp {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.seen.clear();
        self.input.open(ctx)
    }
    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(ctx)? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.seen.clear();
        self.input.close(ctx)
    }
}

// ----------------------------------------------------------------- driver

/// Translate a physical plan into a row-operator tree.
pub fn build_row_operator(plan: &PhysicalPlan) -> BoxedRowOp {
    match plan {
        PhysicalPlan::OneRow => Box::new(OneRowOp::new()),
        PhysicalPlan::LocalScan(n) => Box::new(LocalScanOp::new(
            n.object.clone(),
            n.schema.clone(),
            n.access.clone(),
            n.residual.clone(),
        )),
        PhysicalPlan::RemoteQuery(n) => {
            Box::new(RemoteQueryOp::new(n.sql.clone(), n.schema.clone()))
        }
        PhysicalPlan::SwitchUnion {
            guard,
            local,
            remote,
        } => Box::new(SwitchUnionOp::new(
            guard.clone(),
            build_row_operator(local),
            build_row_operator(remote),
        )),
        PhysicalPlan::Filter { input, predicate } => Box::new(FilterOp {
            input: build_row_operator(input),
            predicate: predicate.clone(),
        }),
        PhysicalPlan::Project { input, exprs } => {
            Box::new(ProjectOp::new(build_row_operator(input), exprs.clone()))
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
        } => Box::new(HashJoinOp::new(
            build_row_operator(left),
            build_row_operator(right),
            left_keys.clone(),
            right_keys.clone(),
            *kind,
        )),
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => {
            debug_assert_eq!(*kind, JoinKind::Inner);
            Box::new(MergeJoinOp::new(
                build_row_operator(left),
                build_row_operator(right),
                left_key.clone(),
                right_key.clone(),
            ))
        }
        PhysicalPlan::IndexNLJoin {
            outer,
            outer_key,
            inner,
            kind,
        } => Box::new(IndexNLJoinOp::new(
            build_row_operator(outer),
            outer_key.clone(),
            inner.clone(),
            *kind,
        )),
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => Box::new(HashAggregateOp::new(
            build_row_operator(input),
            group_by.clone(),
            aggs.clone(),
            having.clone(),
        )),
        PhysicalPlan::Sort { input, keys } => Box::new(SortOp {
            input: build_row_operator(input),
            keys: keys.clone(),
            buffer: VecDeque::new(),
        }),
        PhysicalPlan::Limit { input, n } => Box::new(LimitOp {
            input: build_row_operator(input),
            n: *n,
            produced: 0,
        }),
        PhysicalPlan::Distinct { input } => Box::new(DistinctOp {
            input: build_row_operator(input),
            seen: HashSet::new(),
        }),
    }
}

/// Execute a plan to completion on the row-at-a-time reference engine,
/// with the same per-phase timing as [`crate::execute_plan`]. Semantics
/// are identical to the batched engine — the identity sweep in
/// `rcc-bench` holds the two to byte-equal wire output.
pub fn execute_plan_rows(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<ExecutionResult> {
    let t0 = Instant::now();
    let mut op = build_row_operator(plan);
    op.open(ctx)?;
    let t1 = Instant::now();

    let schema = op.schema().clone();
    let mut rows = Vec::new();
    while let Some(row) = op.next(ctx)? {
        rows.push(row);
    }
    let t2 = Instant::now();

    op.close(ctx)?;
    let t3 = Instant::now();

    Ok(ExecutionResult {
        schema,
        rows,
        timings: PhaseTimings {
            setup: t1 - t0,
            run: t2 - t1,
            shutdown: t3 - t2,
        },
    })
}
