//! Currency-guard evaluation.

use crate::context::{ExecContext, GuardObservation};
use rcc_common::{Result, Timestamp, Value};
use rcc_optimizer::CurrencyGuard;

/// Evaluate a currency guard: semantically the paper's selector predicate
///
/// ```sql
/// EXISTS (SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() - B)
/// ```
///
/// plus the timeline-consistency floor (our extension of Sec. 2.3): the
/// heartbeat must also be at least the session's floor for the region so a
/// later query never observes an older snapshot than an earlier one.
///
/// A missing heartbeat table or row fails the guard — conservative in the
/// safe direction (the query goes remote and sees current data).
pub fn evaluate_guard(ctx: &ExecContext, guard: &CurrencyGuard) -> Result<bool> {
    let heartbeat = read_heartbeat(ctx, guard);
    if ctx.force_local {
        // ServeStale policy: take the local branch regardless, but record
        // the (possibly violated) observation so callers can warn.
        ctx.record_guard(GuardObservation { region: guard.region, heartbeat, chose_local: true });
        return Ok(true);
    }
    let now = ctx.clock.now();
    let fresh_enough = match heartbeat {
        Some(ts) => {
            let cutoff = now.minus(guard.bound);
            let floor =
                ctx.timeline_floor.get(&guard.region).copied().unwrap_or(Timestamp::ZERO);
            ts > cutoff && ts >= floor
        }
        None => false,
    };
    ctx.record_guard(GuardObservation {
        region: guard.region,
        heartbeat,
        chose_local: fresh_enough,
    });
    Ok(fresh_enough)
}

/// Read the region's local heartbeat timestamp, if present.
pub fn read_heartbeat(ctx: &ExecContext, guard: &CurrencyGuard) -> Option<Timestamp> {
    let handle = ctx.storage.table(&guard.heartbeat_table).ok()?;
    let table = handle.read();
    let row = table.get(&[Value::Int(guard.region.raw() as i64)])?;
    row.get(1).as_int().ok().map(Timestamp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Duration, RegionId, Row, Schema, SimClock};
    use rcc_storage::{StorageEngine, Table};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn setup(hb_ts: Option<i64>) -> (ExecContext, CurrencyGuard, SimClock) {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("region_id", DataType::Int),
            Column::new("ts", DataType::Timestamp),
        ]);
        let mut t = Table::new("heartbeat_cr1", schema, vec![0]);
        if let Some(ts) = hb_ts {
            t.insert(Row::new(vec![Value::Int(1), Value::Timestamp(ts)])).unwrap();
        }
        storage.create_table(t).unwrap();
        let clock = SimClock::starting_at(Timestamp(100_000));
        let ctx = ExecContext::new(storage, None, Arc::new(clock.clone()));
        let guard = CurrencyGuard {
            region: RegionId(1),
            heartbeat_table: "heartbeat_cr1".into(),
            bound: Duration::from_secs(10),
        };
        (ctx, guard, clock)
    }

    #[test]
    fn fresh_heartbeat_passes() {
        // now=100s, bound=10s, hb=95s → 95s > 90s → pass
        let (ctx, guard, _) = setup(Some(95_000));
        assert!(evaluate_guard(&ctx, &guard).unwrap());
        assert_eq!(ctx.counters.local_branches.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn stale_heartbeat_fails() {
        // hb=89s ≤ cutoff 90s → fail (boundary exclusive like the paper's >)
        let (ctx, guard, _) = setup(Some(89_000));
        assert!(!evaluate_guard(&ctx, &guard).unwrap());
        let (ctx, guard, _) = setup(Some(90_000));
        assert!(!evaluate_guard(&ctx, &guard).unwrap(), "ts must be strictly newer");
    }

    #[test]
    fn missing_heartbeat_fails_conservatively() {
        let (ctx, guard, _) = setup(None);
        assert!(!evaluate_guard(&ctx, &guard).unwrap());
        // missing table entirely
        let ctx2 = ExecContext::new(
            Arc::new(StorageEngine::new()),
            None,
            Arc::new(SimClock::new()),
        );
        assert!(!evaluate_guard(&ctx2, &guard).unwrap());
    }

    #[test]
    fn timeline_floor_blocks_old_snapshots() {
        let (ctx, guard, _) = setup(Some(95_000));
        // a floor above the heartbeat forces remote even though fresh
        let mut floor = HashMap::new();
        floor.insert(RegionId(1), Timestamp(96_000));
        let ctx2 = ctx.with_timeline_floor(floor);
        assert!(!evaluate_guard(&ctx2, &guard).unwrap());
        // equal floor is fine
        let mut floor = HashMap::new();
        floor.insert(RegionId(1), Timestamp(95_000));
        let ctx3 = ctx.with_timeline_floor(floor);
        assert!(evaluate_guard(&ctx3, &guard).unwrap());
    }

    #[test]
    fn guard_tracks_clock_movement() {
        let (ctx, guard, clock) = setup(Some(95_000));
        assert!(evaluate_guard(&ctx, &guard).unwrap());
        clock.advance(Duration::from_secs(10)); // now=110s, cutoff=100s > 95s
        assert!(!evaluate_guard(&ctx, &guard).unwrap());
    }
}
