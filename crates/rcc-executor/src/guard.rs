//! Currency-guard evaluation.

use crate::context::{ExecContext, GuardObservation};
use rcc_common::{Result, Timestamp, Value};
use rcc_obs::DEFAULT_STALENESS_BUCKETS;
use rcc_optimizer::CurrencyGuard;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// The region label for staleness metrics: the heartbeat table name with
/// its `heartbeat_` prefix stripped (`heartbeat_cr1` → `cr1`).
fn region_label(guard: &CurrencyGuard) -> &str {
    guard
        .heartbeat_table
        .strip_prefix("heartbeat_")
        .unwrap_or(&guard.heartbeat_table)
}

/// Evaluate a currency guard: semantically the paper's selector predicate
///
/// ```sql
/// EXISTS (SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() - B)
/// ```
///
/// plus the timeline-consistency floor (our extension of Sec. 2.3): the
/// heartbeat must also be at least the session's floor for the region so a
/// later query never observes an older snapshot than an earlier one.
///
/// A missing heartbeat table or row fails the guard — conservative in the
/// safe direction (the query goes remote and sees current data).
pub fn evaluate_guard(ctx: &ExecContext, guard: &CurrencyGuard) -> Result<bool> {
    let started = Instant::now();
    let heartbeat = read_heartbeat(ctx, guard);
    let now = ctx.clock.now();
    if let (Some(ts), Some(metrics)) = (heartbeat, ctx.metrics.as_deref()) {
        metrics
            .histogram(
                "rcc_guard_staleness_seconds",
                &[("region", region_label(guard))],
                DEFAULT_STALENESS_BUCKETS,
            )
            .observe(now.since(ts).as_secs_f64());
    }
    let chose_local = if ctx.force_local {
        // ServeStale policy: take the local branch regardless; the recorded
        // observation below is how callers learn the bound may be violated.
        true
    } else {
        match heartbeat {
            Some(ts) => {
                let cutoff = now.minus(guard.bound);
                let floor = ctx
                    .timeline_floor
                    .get(&guard.region)
                    .copied()
                    .unwrap_or(Timestamp::ZERO);
                ts > cutoff && ts >= floor
            }
            None => false,
        }
    };
    ctx.record_guard(GuardObservation {
        region: guard.region,
        heartbeat,
        chose_local,
        bound: guard.bound,
    });
    ctx.meter
        .guard_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    ctx.meter.guard_evals.fetch_add(1, Ordering::Relaxed);
    Ok(chose_local)
}

/// Read the region's local heartbeat timestamp, if present. Reads the
/// current published snapshot — lock-free, and atomic with respect to
/// replication publishes (a refresh can never expose a torn heartbeat).
pub fn read_heartbeat(ctx: &ExecContext, guard: &CurrencyGuard) -> Option<Timestamp> {
    let table = ctx.storage.table(&guard.heartbeat_table).ok()?.snapshot();
    let row = table.get(&[Value::Int(guard.region.raw() as i64)])?;
    row.get(1).as_int().ok().map(Timestamp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::{Column, DataType, Duration, RegionId, Row, Schema, SimClock};
    use rcc_storage::{StorageEngine, Table};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn setup(hb_ts: Option<i64>) -> (ExecContext, CurrencyGuard, SimClock) {
        let storage = Arc::new(StorageEngine::new());
        let schema = Schema::new(vec![
            Column::new("region_id", DataType::Int),
            Column::new("ts", DataType::Timestamp),
        ]);
        let mut t = Table::new("heartbeat_cr1", schema, vec![0]);
        if let Some(ts) = hb_ts {
            t.insert(Row::new(vec![Value::Int(1), Value::Timestamp(ts)]))
                .unwrap();
        }
        storage.create_table(t).unwrap();
        let clock = SimClock::starting_at(Timestamp(100_000));
        let ctx = ExecContext::new(storage, None, Arc::new(clock.clone()));
        let guard = CurrencyGuard {
            region: RegionId(1),
            heartbeat_table: "heartbeat_cr1".into(),
            bound: Duration::from_secs(10),
        };
        (ctx, guard, clock)
    }

    #[test]
    fn fresh_heartbeat_passes() {
        // now=100s, bound=10s, hb=95s → 95s > 90s → pass
        let (ctx, guard, _) = setup(Some(95_000));
        assert!(evaluate_guard(&ctx, &guard).unwrap());
        assert_eq!(
            ctx.counters
                .local_branches
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn stale_heartbeat_fails() {
        // hb=89s ≤ cutoff 90s → fail (boundary exclusive like the paper's >)
        let (ctx, guard, _) = setup(Some(89_000));
        assert!(!evaluate_guard(&ctx, &guard).unwrap());
        let (ctx, guard, _) = setup(Some(90_000));
        assert!(
            !evaluate_guard(&ctx, &guard).unwrap(),
            "ts must be strictly newer"
        );
    }

    #[test]
    fn missing_heartbeat_fails_conservatively() {
        let (ctx, guard, _) = setup(None);
        assert!(!evaluate_guard(&ctx, &guard).unwrap());
        // missing table entirely
        let ctx2 = ExecContext::new(
            Arc::new(StorageEngine::new()),
            None,
            Arc::new(SimClock::new()),
        );
        assert!(!evaluate_guard(&ctx2, &guard).unwrap());
    }

    #[test]
    fn timeline_floor_blocks_old_snapshots() {
        let (ctx, guard, _) = setup(Some(95_000));
        // a floor above the heartbeat forces remote even though fresh
        let mut floor = HashMap::new();
        floor.insert(RegionId(1), Timestamp(96_000));
        let ctx2 = ctx.with_timeline_floor(floor);
        assert!(!evaluate_guard(&ctx2, &guard).unwrap());
        // equal floor is fine
        let mut floor = HashMap::new();
        floor.insert(RegionId(1), Timestamp(95_000));
        let ctx3 = ctx.with_timeline_floor(floor);
        assert!(evaluate_guard(&ctx3, &guard).unwrap());
    }

    #[test]
    fn staleness_histogram_and_timer_record() {
        let (ctx, guard, _) = setup(Some(95_000));
        let registry = Arc::new(rcc_obs::MetricsRegistry::new());
        let ctx = ctx.with_metrics(registry.clone());
        evaluate_guard(&ctx, &guard).unwrap();
        let snap = registry.snapshot();
        let h = snap
            .histogram("rcc_guard_staleness_seconds{region=\"cr1\"}")
            .unwrap();
        assert_eq!(h.count, 1);
        // now=100s, hb=95s → observed staleness is 5s
        assert!((h.sum - 5.0).abs() < 1e-9, "sum={}", h.sum);
        assert!(
            ctx.meter
                .guard_nanos
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
        assert_eq!(ctx.meter.guard_eval_count(), 1);
        // a missing heartbeat records no staleness sample
        let (ctx2, guard2, _) = setup(None);
        let registry2 = Arc::new(rcc_obs::MetricsRegistry::new());
        evaluate_guard(&ctx2.with_metrics(registry2.clone()), &guard2).unwrap();
        assert!(registry2
            .snapshot()
            .histogram("rcc_guard_staleness_seconds{region=\"cr1\"}")
            .is_none());
    }

    #[test]
    fn guard_tracks_clock_movement() {
        let (ctx, guard, clock) = setup(Some(95_000));
        assert!(evaluate_guard(&ctx, &guard).unwrap());
        clock.advance(Duration::from_secs(10)); // now=110s, cutoff=100s > 95s
        assert!(!evaluate_guard(&ctx, &guard).unwrap());
    }
}
